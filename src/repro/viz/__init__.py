"""Visualisation: ASCII maps for terminals, SVG maps for reports.

The paper communicates results with map figures (Figs. 1, 5, 11); this
package renders the same content from library objects — road networks,
trajectories, matched paths — without any plotting dependency.
"""

from repro.viz.ascii_map import AsciiCanvas, render_match_ascii
from repro.viz.svg import SvgCanvas, render_match_svg

__all__ = [
    "AsciiCanvas",
    "render_match_ascii",
    "SvgCanvas",
    "render_match_svg",
]
