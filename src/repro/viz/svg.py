"""SVG rendering of networks, paths, trajectories, and towers."""

from __future__ import annotations

from pathlib import Path as FilePath
from xml.sax.saxutils import escape

from repro.cellular.tower import TowerField
from repro.cellular.trajectory import Trajectory
from repro.geometry import Point
from repro.network.road_network import RoadNetwork

_NETWORK_STYLE = "stroke:#d0d0d0;stroke-width:1;fill:none"
_DEFAULT_PALETTE = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e")


class SvgCanvas:
    """Accumulates SVG shapes in metric coordinates, scaled at render time."""

    def __init__(
        self,
        bounds: tuple[float, float, float, float],
        width_px: int = 900,
    ) -> None:
        min_x, min_y, max_x, max_y = bounds
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("degenerate bounding box")
        self.bounds = bounds
        self.width_px = width_px
        self.height_px = max(
            1, int(width_px * (max_y - min_y) / (max_x - min_x))
        )
        self._elements: list[str] = []

    def _px(self, p: Point) -> tuple[float, float]:
        min_x, min_y, max_x, max_y = self.bounds
        x = (p.x - min_x) / (max_x - min_x) * self.width_px
        y = (max_y - p.y) / (max_y - min_y) * self.height_px
        return round(x, 2), round(y, 2)

    def polyline(self, points: list[Point], style: str) -> None:
        """Add an open polyline."""
        coords = " ".join(f"{x},{y}" for x, y in (self._px(p) for p in points))
        self._elements.append(f'<polyline points="{coords}" style="{escape(style)}"/>')

    def circle(self, centre: Point, radius_px: float, style: str) -> None:
        """Add a circle with a pixel radius."""
        x, y = self._px(centre)
        self._elements.append(
            f'<circle cx="{x}" cy="{y}" r="{radius_px}" style="{escape(style)}"/>'
        )

    def text(self, anchor: Point, content: str, size_px: int = 12) -> None:
        """Add a text label."""
        x, y = self._px(anchor)
        self._elements.append(
            f'<text x="{x}" y="{y}" font-size="{size_px}">{escape(content)}</text>'
        )

    # ----------------------------------------------------------- high level
    def draw_network(self, network: RoadNetwork, style: str = _NETWORK_STYLE) -> None:
        """Draw every road segment as a faint background."""
        for seg in network.segments.values():
            self.polyline(seg.polyline.points, style)

    def draw_path(
        self, network: RoadNetwork, path: list[int], color: str, width: float = 2.5
    ) -> None:
        """Draw a path of segment ids in ``color``."""
        style = f"stroke:{color};stroke-width:{width};fill:none;stroke-opacity:0.85"
        for seg_id in path:
            self.polyline(network.segments[seg_id].polyline.points, style)

    def draw_trajectory(
        self, trajectory: Trajectory, color: str = "#333333", radius_px: float = 3.0
    ) -> None:
        """Draw trajectory samples as dots."""
        for point in trajectory.points:
            self.circle(point.position, radius_px, f"fill:{color};fill-opacity:0.8")

    def draw_towers(self, towers: TowerField, color: str = "#888888") -> None:
        """Draw cell towers as hollow markers."""
        for tower in towers:
            self.circle(
                tower.location, 4.0, f"fill:none;stroke:{color};stroke-width:1.5"
            )

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width_px}" height="{self.height_px}" '
            f'viewBox="0 0 {self.width_px} {self.height_px}">\n'
            f'  <rect width="100%" height="100%" fill="white"/>\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str | FilePath) -> None:
        """Write the SVG document to ``path``."""
        FilePath(path).write_text(self.render())


def render_match_svg(
    network: RoadNetwork,
    truth_path: list[int],
    matched_paths: dict[str, list[int]],
    trajectory: Trajectory | None = None,
    towers: TowerField | None = None,
    width_px: int = 900,
) -> str:
    """A full comparison figure: network, truth (blue), matches, samples.

    ``matched_paths`` maps legend names to paths; colours are assigned from
    a fixed palette (truth always takes the first colour).
    """
    canvas = SvgCanvas(network.bounding_box(), width_px=width_px)
    canvas.draw_network(network)
    if towers is not None:
        canvas.draw_towers(towers)
    canvas.draw_path(network, truth_path, _DEFAULT_PALETTE[0], width=4.0)
    legend = [("truth", _DEFAULT_PALETTE[0])]
    for i, (name, path) in enumerate(matched_paths.items()):
        color = _DEFAULT_PALETTE[(i + 1) % len(_DEFAULT_PALETTE)]
        canvas.draw_path(network, path, color)
        legend.append((name, color))
    if trajectory is not None:
        canvas.draw_trajectory(trajectory)
    min_x, min_y, max_x, max_y = network.bounding_box()
    anchor_y = max_y - 0.02 * (max_y - min_y)
    for i, (name, color) in enumerate(legend):
        anchor = Point(min_x + 0.02 * (max_x - min_x), anchor_y - i * 0.035 * (max_y - min_y))
        canvas.circle(anchor, 5.0, f"fill:{color}")
        canvas.text(anchor.translated(0.015 * (max_x - min_x), -0.005 * (max_y - min_y)), name)
    return canvas.render()
