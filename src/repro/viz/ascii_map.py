"""Terminal rendering of networks, paths, and trajectories."""

from __future__ import annotations

from repro.cellular.trajectory import Trajectory
from repro.geometry import Point
from repro.network.road_network import RoadNetwork


class AsciiCanvas:
    """A character grid over a metric bounding box.

    Later draws overwrite earlier ones unless the earlier mark is listed in
    ``protected`` — so backgrounds stay in the background.
    """

    def __init__(
        self,
        bounds: tuple[float, float, float, float],
        width: int = 78,
        height: int = 30,
        protected: str = "",
    ) -> None:
        min_x, min_y, max_x, max_y = bounds
        if max_x <= min_x or max_y <= min_y:
            raise ValueError("degenerate bounding box")
        if width < 2 or height < 2:
            raise ValueError("canvas too small")
        self.bounds = bounds
        self.width = width
        self.height = height
        self.protected = set(protected)
        self._grid = [[" "] * width for _ in range(height)]

    def _cell(self, p: Point) -> tuple[int, int] | None:
        min_x, min_y, max_x, max_y = self.bounds
        if not (min_x <= p.x <= max_x and min_y <= p.y <= max_y):
            return None
        col = int((p.x - min_x) / (max_x - min_x) * (self.width - 1))
        row = int((max_y - p.y) / (max_y - min_y) * (self.height - 1))
        return row, col

    def mark(self, p: Point, symbol: str) -> None:
        """Place ``symbol`` at point ``p`` (no-op outside the bounds)."""
        cell = self._cell(p)
        if cell is None:
            return
        row, col = cell
        if self._grid[row][col] in self.protected:
            return
        self._grid[row][col] = symbol

    def draw_segments(
        self, network: RoadNetwork, segment_ids, symbol: str, step_m: float = 40.0
    ) -> None:
        """Trace road segments by sampling their geometry every ``step_m``."""
        for seg_id in segment_ids:
            seg = network.segments[seg_id]
            offset = 0.0
            while offset <= seg.length:
                self.mark(seg.polyline.interpolate(offset), symbol)
                offset += step_m
            self.mark(seg.polyline.end, symbol)

    def draw_network(self, network: RoadNetwork, symbol: str = "-") -> None:
        """Trace the whole network as a faint background."""
        self.draw_segments(network, network.segments, symbol, step_m=80.0)

    def draw_trajectory(self, trajectory: Trajectory, symbol: str = "x") -> None:
        """Mark every sample position."""
        for point in trajectory.points:
            self.mark(point.position, symbol)

    def render(self) -> str:
        """The canvas as a newline-joined string."""
        return "\n".join("".join(row) for row in self._grid)


def _bounds_of(network: RoadNetwork, paths, trajectory, margin: float = 200.0):
    xs, ys = [], []
    for path in paths:
        for seg_id in path:
            seg = network.segments[seg_id]
            for p in (seg.polyline.start, seg.polyline.end):
                xs.append(p.x)
                ys.append(p.y)
    if trajectory is not None:
        for point in trajectory.points:
            xs.append(point.position.x)
            ys.append(point.position.y)
    if not xs:
        return network.bounding_box()
    return (min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin)


def render_match_ascii(
    network: RoadNetwork,
    truth_path: list[int],
    matched_paths: dict[str, list[int]],
    trajectory: Trajectory | None = None,
    width: int = 78,
    height: int = 30,
) -> str:
    """A comparison map: ground truth, one mark per matched path, samples.

    ``matched_paths`` maps a single-character label to a path; the ground
    truth renders as ``.``, trajectory samples as ``x`` (drawn last, on
    top).  Returns the map plus a legend line.
    """
    for label in matched_paths:
        if len(label) != 1:
            raise ValueError("matched path labels must be single characters")
    bounds = _bounds_of(network, [truth_path, *matched_paths.values()], trajectory)
    canvas = AsciiCanvas(bounds, width=width, height=height)
    canvas.draw_segments(network, truth_path, ".")
    for label, path in matched_paths.items():
        canvas.draw_segments(network, path, label)
    if trajectory is not None:
        canvas.draw_trajectory(trajectory, "x")
    legend = "legend: . truth  " + "  ".join(
        f"{label} {label}-path" for label in matched_paths
    )
    if trajectory is not None:
        legend += "  x sample"
    return canvas.render() + "\n" + legend
