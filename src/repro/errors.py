"""Structured error taxonomy of the matching system.

Every failure the pipeline can produce descends from :class:`ReproError`,
split along the one distinction callers actually act on: *bad input*
(:class:`InvalidTrajectoryInput` — the request can never succeed, HTTP
422) versus *internal failure* (:class:`MatchFailure` and friends — the
request might succeed on retry or via a degraded path, HTTP 500).  The
classes double-inherit from the builtin exceptions they historically
were (``ValueError`` / ``RuntimeError``) so existing ``except`` clauses
keep working.

Failures that must cross a process boundary (a worker crash cannot ship
a live traceback) travel as :class:`MatchError` — a small picklable
record that slots into a batch result list where the
:class:`~repro.core.matcher.MatchResult` would have been.  See
``docs/robustness.md`` for the full table and the degradation cascade.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReproError(Exception):
    """Root of every structured error raised by this package.

    Attributes:
        code: A stable, machine-readable identifier (snake_case); wire
            payloads and logs carry it so handlers do not parse messages.
        http_status: The HTTP status the serving layer maps this class to.
        hint: A one-line remediation suggestion the CLI prints alongside
            the error (empty when no generic remediation exists).
    """

    code = "internal_error"
    http_status = 500
    hint = ""

    def to_payload(self) -> dict:
        """JSON-ready representation (used by the serving layer)."""
        return {"code": self.code, "message": str(self)}


class InvalidTrajectoryInput(ReproError, ValueError):
    """The trajectory itself is unusable: empty, non-finite or
    out-of-bounds coordinates, or no candidate roads anywhere near a
    point.  Retrying the same input can never succeed (HTTP 422)."""

    code = "invalid_trajectory"
    http_status = 422


class MatchFailure(ReproError, RuntimeError):
    """Matching failed for an internal reason (learner, trellis, or
    state error) on input that may be perfectly fine."""

    code = "match_failure"


class RoutingFailure(MatchFailure):
    """The routing backend failed (engine error, broken table) — distinct
    from a route simply not existing, which is a normal score outcome."""

    code = "routing_failure"


class WorkerCrash(MatchFailure):
    """A pool worker died (OOM kill, segfault, SIGKILL) while holding a
    chunk.  The pool self-heals; items that kept crashing carry this."""

    code = "worker_crash"


class PoolBroken(ReproError, RuntimeError):
    """The worker pool is unusable and the respawn budget is exhausted,
    or its workers cannot even initialise (bad model/dataset files)."""

    code = "pool_broken"


class ArtifactCorrupt(ReproError, RuntimeError):
    """A model/checkpoint file failed an integrity check: truncated
    archive, checksum mismatch, or an array that disagrees with its own
    manifest.  The bytes on disk cannot be trusted (HTTP 500)."""

    code = "artifact_corrupt"
    hint = (
        "the file is damaged or truncated — restore it from a backup, "
        "re-download it, or retrain with `python -m repro train`"
    )


class ArtifactIncompatible(ReproError, ValueError):
    """A model/checkpoint file is intact but cannot be used here: wrong
    artifact kind, unsupported format version, a configuration
    fingerprint that disagrees with the running one, or weights trained
    for a different map.  Retrying with the same file can never succeed
    (HTTP 422)."""

    code = "artifact_incompatible"
    http_status = 422
    hint = (
        "the artifact does not fit this configuration/dataset — check "
        "that the model was trained with the same config and map"
    )


class TrainingDiverged(ReproError, RuntimeError):
    """Training hit a non-finite loss or an exploding gradient norm and
    the rollback budget (``LHMMConfig.max_rollbacks``) is exhausted."""

    code = "training_diverged"
    hint = (
        "lower the learning rate, raise max_rollbacks, or train with "
        "--checkpoint-dir so divergence can roll back to a good epoch"
    )


class ModelReloadFailed(ReproError, RuntimeError):
    """A serve hot-reload was rejected: the server has no reloadable
    model configured, the artifact file is missing, or the candidate
    loaded but failed its canary run.  The previous model keeps
    serving."""

    code = "model_reload_failed"
    hint = (
        "the previous model is still serving; fix the artifact (or its "
        "path) and POST /v1/admin/reload-model again"
    )


class UnknownRegion(ReproError, KeyError):
    """The request names a region the shard registry does not serve.
    Retrying the same request can never succeed here (HTTP 404) — the
    caller either has the wrong deployment or a typo'd region."""

    code = "unknown_region"
    http_status = 404
    hint = (
        "list the served regions with GET /healthz, or start the cluster "
        "with --region NAME=DATASET:MODEL for this one"
    )


class ClusterUnavailable(ReproError, RuntimeError):
    """The serving cluster cannot take the request right now: it is
    draining, or every matcher worker is dead and the respawn budget is
    exhausted.  The condition is temporary from the caller's point of
    view (HTTP 503 + ``Retry-After``) — retry against this or another
    instance."""

    code = "cluster_unavailable"
    http_status = 503
    hint = "retry after a backoff; check /healthz for worker status"


class ServerOverloaded(ReproError, RuntimeError):
    """Arrival rate exceeds service rate and the admission queue is full;
    the request was shed *before* any matching work happened.  Both the
    threaded server and the cluster gateway answer this with HTTP 503 +
    ``Retry-After`` — overload is a property of the deployment, not of
    the request, so a retry elsewhere (or later) can succeed."""

    code = "server_overloaded"
    http_status = 503
    hint = "back off and retry; scale workers up or raise the queue limit"


class DeadlineExceeded(ReproError, RuntimeError):
    """The request's client-supplied deadline expired before (or while)
    the work could run; the work was shed, not half-done.  Mapped to
    HTTP 504 — retrying with the *same* deadline budget on an overloaded
    deployment will likely expire again."""

    code = "deadline_exceeded"
    http_status = 504
    hint = "raise deadline_ms, or retry when the deployment is less loaded"


class DegradedResult(ReproError):
    """Marker: a result was produced by a fallback stage, not the full
    learned matcher.  Never raised across an API boundary — the cascade
    catches it internally and tags ``MatchResult.provenance`` instead —
    but fault injection raises it to exercise exactly that path."""

    code = "degraded_result"


@dataclass(slots=True)
class MatchError:
    """A per-trajectory failure slot in a batch result list.

    Picklable and exception-free so it can cross process boundaries and
    sit in the same list as successful results: batch callers check
    ``isinstance(slot, MatchError)`` instead of losing the whole batch
    to one poison trajectory.
    """

    code: str
    message: str
    index: int = -1
    detail: dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, error: BaseException, index: int = -1) -> "MatchError":
        code = getattr(error, "code", None) or "match_failure"
        return cls(code=code, message=str(error) or type(error).__name__, index=index)

    @property
    def http_status(self) -> int:
        if self.code in (InvalidTrajectoryInput.code, ArtifactIncompatible.code):
            return 422
        return 500

    def to_payload(self) -> dict:
        """JSON-ready representation (the per-item wire form)."""
        payload = {"code": self.code, "message": self.message}
        if self.detail:
            payload["detail"] = dict(self.detail)
        return payload

    def raise_(self) -> None:
        """Re-raise as the taxonomy class matching :attr:`code`."""
        for klass in (
            InvalidTrajectoryInput,
            RoutingFailure,
            WorkerCrash,
            PoolBroken,
            ArtifactCorrupt,
            ArtifactIncompatible,
            TrainingDiverged,
        ):
            if klass.code == self.code:
                raise klass(self.message)
        raise MatchFailure(self.message)


__all__ = [
    "ReproError",
    "InvalidTrajectoryInput",
    "MatchFailure",
    "RoutingFailure",
    "WorkerCrash",
    "PoolBroken",
    "ArtifactCorrupt",
    "ArtifactIncompatible",
    "TrainingDiverged",
    "ModelReloadFailed",
    "UnknownRegion",
    "ClusterUnavailable",
    "ServerOverloaded",
    "DeadlineExceeded",
    "DegradedResult",
    "MatchError",
]
