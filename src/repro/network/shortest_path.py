"""Shortest-path routing between road segments.

HMM map matching evaluates the shortest path between every pair of
neighbouring candidate roads, so routing dominates runtime.  Following the
precomputation idea the paper borrows from FMM [11], the engine memoises a
full single-source Dijkstra result per queried source node; repeated queries
from the same candidate segment (the common case across a trajectory) then
cost an array lookup.

Two backends share that contract:

* a vectorised backend on :func:`scipy.sparse.csgraph.dijkstra` over the
  network's CSR adjacency — one C-level multi-source call settles every
  source of a trellis step at once (:meth:`ShortestPathEngine.route_many`,
  :meth:`ShortestPathEngine.distances`);
* a pure-Python heap backend, used when scipy is unavailable and kept as
  the reference implementation the perf benchmarks compare against.

Segment-level routes are additionally memoised in an LRU-bounded cache with
hit/miss counters, sized for long-running matching workers.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.network.road_network import RoadNetwork

try:  # pragma: no cover - import guard exercised only without scipy
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover
    _csgraph_dijkstra = None
    HAVE_SCIPY = False

_MISS = object()  # route-cache sentinel (None is a valid cached value)


@dataclass(frozen=True, slots=True)
class Route:
    """A routed path between two segments.

    Attributes:
        segments: Consecutive segment ids, starting at the source segment
            and ending at the target segment (inclusive on both ends).
        length: Network distance in metres measured from the *end* of the
            source segment to the *end* of the target segment — i.e. the
            distance actually driven to complete the transition.
    """

    segments: tuple[int, ...]
    length: float

    @property
    def num_segments(self) -> int:
        """Number of road segments on the route."""
        return len(self.segments)


class _ScipyBackend:
    """Node-level Dijkstra on the CSR adjacency, batched across sources."""

    def __init__(
        self, network: RoadNetwork, max_route_length: float, cache_size: int
    ) -> None:
        self._network = network
        self._limit = max_route_length
        self._cache_size = cache_size
        # source node id -> (distance row, predecessor row) over node indices
        self._rows: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()

    def ensure(self, sources: Iterable[int]) -> None:
        """Settle all missing sources with one multi-source Dijkstra call."""
        csr = self._network.csr()
        missing = [
            s for s in dict.fromkeys(sources) if s not in self._rows and s in csr.index
        ]
        if not missing:
            return
        indices = np.array([csr.index[s] for s in missing], dtype=np.int64)
        dist, pred = _csgraph_dijkstra(
            csr.matrix,
            directed=True,
            indices=indices,
            return_predecessors=True,
            limit=self._limit,
        )
        for row, source in enumerate(missing):
            self._rows[source] = (dist[row], pred[row])
        while len(self._rows) > self._cache_size:
            self._rows.popitem(last=False)

    def _row(self, source: int) -> tuple[np.ndarray, np.ndarray] | None:
        cached = self._rows.get(source)
        if cached is None:
            self.ensure([source])
            cached = self._rows.get(source)
        else:
            self._rows.move_to_end(source)
        return cached

    def distance(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        j = self._network.csr().index.get(v)
        row = self._row(u)
        if j is None or row is None:
            return math.inf
        d = row[0][j]
        return float(d) if np.isfinite(d) else math.inf

    def path_segments(self, u: int, v: int) -> list[int] | None:
        if u == v:
            return []
        csr = self._network.csr()
        u_idx = csr.index.get(u)
        v_idx = csr.index.get(v)
        row = self._row(u) if u_idx is not None else None
        if row is None or v_idx is None or not np.isfinite(row[0][v_idx]):
            return None
        pred = row[1]
        path: list[int] = []
        node = v_idx
        while node != u_idx:
            p = int(pred[node])
            if p < 0:
                return None
            path.append(csr.segment_between(p, node))
            node = p
        path.reverse()
        return path

    def path_and_distance(self, u: int, v: int) -> tuple[list[int] | None, float]:
        """Path segments and distance with a single cached-row access."""
        if u == v:
            return [], 0.0
        csr = self._network.csr()
        u_idx = csr.index.get(u)
        v_idx = csr.index.get(v)
        row = self._row(u) if u_idx is not None else None
        if row is None or v_idx is None:
            return None, math.inf
        d = row[0][v_idx]
        if not np.isfinite(d):
            return None, math.inf
        pred = row[1]
        path: list[int] = []
        node = v_idx
        while node != u_idx:
            p = int(pred[node])
            if p < 0:
                return None, math.inf
            path.append(csr.segment_between(p, node))
            node = p
        path.reverse()
        return path, float(d)

    def distances(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        csr = self._network.csr()
        self.ensure(sources)
        t_idx = np.array([csr.index.get(t, -1) for t in targets], dtype=np.int64)
        known = t_idx >= 0
        out = np.full((len(sources), len(targets)), np.inf)
        for i, source in enumerate(sources):
            cached = self._rows.get(source)
            if cached is None and source in csr.index:  # evicted mid-call
                self.ensure([source])
                cached = self._rows.get(source)
            if cached is None:  # node absent from the network
                continue
            out[i, known] = cached[0][t_idx[known]]
        if len(sources) and len(targets):
            src = np.asarray(sources).reshape(-1, 1)
            out[src == np.asarray(targets).reshape(1, -1)] = 0.0
        return out

    @property
    def cached_sources(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()


class _HeapBackend:
    """The original pure-Python heap Dijkstra (scipy-less fallback)."""

    def __init__(
        self, network: RoadNetwork, max_route_length: float, cache_size: int
    ) -> None:
        self._network = network
        self._limit = max_route_length
        self._cache_size = cache_size
        self._dist: OrderedDict[int, dict[int, float]] = OrderedDict()
        self._pred: dict[int, dict[int, int]] = {}  # node -> incoming segment id

    def ensure(self, sources: Iterable[int]) -> None:
        for source in sources:
            if source not in self._dist:
                self._run(source)

    def _run(self, source: int) -> None:
        dist: dict[int, float] = {source: 0.0}
        pred: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        network = self._network
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for seg_id in network.out_segments(node):
                seg = network.segments[seg_id]
                nd = d + seg.length
                # Never record distances beyond the exploration bound, so
                # node_distance stays consistent with route().
                if nd > self._limit:
                    continue
                if nd < dist.get(seg.end_node, math.inf):
                    dist[seg.end_node] = nd
                    pred[seg.end_node] = seg_id
                    heapq.heappush(heap, (nd, seg.end_node))
        self._dist[source] = dist
        self._pred[source] = pred
        while len(self._dist) > self._cache_size:
            evicted, _ = self._dist.popitem(last=False)
            self._pred.pop(evicted, None)

    def distance(self, u: int, v: int) -> float:
        if u == v:
            return 0.0
        self.ensure([u])
        self._dist.move_to_end(u)
        return self._dist[u].get(v, math.inf)

    def path_segments(self, u: int, v: int) -> list[int] | None:
        if u == v:
            return []
        self.ensure([u])
        if v not in self._dist[u]:
            return None
        pred = self._pred[u]
        path: list[int] = []
        node = v
        while node != u:
            seg_id = pred.get(node)
            if seg_id is None:
                return None
            path.append(seg_id)
            node = self._network.segments[seg_id].start_node
        path.reverse()
        return path

    def path_and_distance(self, u: int, v: int) -> tuple[list[int] | None, float]:
        """Path segments and distance from one settled-source lookup."""
        if u == v:
            return [], 0.0
        d = self.distance(u, v)
        if d == math.inf:
            return None, math.inf
        path = self.path_segments(u, v)
        if path is None:
            return None, math.inf
        return path, d

    def distances(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        out = np.full((len(sources), len(targets)), np.inf)
        for i, source in enumerate(sources):
            for j, target in enumerate(targets):
                out[i, j] = self.distance(source, target)
        return out

    @property
    def cached_sources(self) -> int:
        return len(self._dist)

    def clear(self) -> None:
        self._dist.clear()
        self._pred.clear()


class ShortestPathEngine:
    """Dijkstra routing with per-source memoisation over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        max_route_length: float = 30000.0,
        *,
        use_scipy: bool | None = None,
        route_cache_size: int = 100_000,
        source_cache_size: int = 16384,
    ) -> None:
        """Create an engine over ``network``.

        Args:
            network: The road network to route on.
            max_route_length: Bound on the explored radius per source node;
                no reported distance or route ever exceeds it.
            use_scipy: Force the vectorised (True) or pure-Python (False)
                backend; ``None`` picks vectorised when scipy is importable.
            route_cache_size: LRU bound on memoised segment-pair routes.
            source_cache_size: LRU bound on memoised single-source results.
        """
        self.network = network
        self.max_route_length = float(max_route_length)
        self.use_scipy = HAVE_SCIPY if use_scipy is None else bool(use_scipy) and HAVE_SCIPY
        backend_cls = _ScipyBackend if self.use_scipy else _HeapBackend
        self._backend = backend_cls(network, self.max_route_length, source_cache_size)
        self.route_cache_size = int(route_cache_size)
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self._route_cache: OrderedDict[tuple[int, int], Route | None] = OrderedDict()
        # Node-pair -> (mid segments, node distance) memo: many distinct
        # segment pairs route over the same (end_node, start_node) pair, so
        # the predecessor walk is shared across them.
        self._node_path_cache: dict[tuple[int, int], tuple[tuple[int, ...] | None, float]] = {}

    # ------------------------------------------------------------- node level
    def node_distance(self, u: int, v: int) -> float:
        """Network distance from node ``u`` to node ``v`` (inf if unreachable).

        Consistent with :meth:`route`: distances beyond ``max_route_length``
        are reported as inf, never as over-bound values.
        """
        return self._backend.distance(u, v)

    def node_path_segments(self, u: int, v: int) -> list[int] | None:
        """Segment ids along the shortest ``u``→``v`` path (None if unreachable).

        Returns an empty list when ``u == v``.
        """
        return self._backend.path_segments(u, v)

    def prime_sources(self, sources: Iterable[int]) -> None:
        """Settle many source nodes ahead of time (one batched query)."""
        self._backend.ensure(sources)

    def distances(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """Node-distance matrix ``D[i, j] = d(sources[i] -> targets[j])``.

        All uncached sources are settled by a single multi-source Dijkstra
        call; unreachable or out-of-bound pairs are inf.
        """
        return self._backend.distances(sources, targets)

    # ---------------------------------------------------------- segment level
    def route(self, from_segment: int, to_segment: int) -> Route | None:
        """Shortest route between two segments (Definition: transition path).

        The route starts on ``from_segment``, continues along the shortest
        node path from its end node to ``to_segment``'s start node, and ends
        on ``to_segment``.  ``None`` when no path exists within the engine's
        exploration bound.  A self-transition yields a single-segment route
        of length 0.
        """
        key = (from_segment, to_segment)
        cached = self._route_cache.get(key, _MISS)
        if cached is not _MISS:
            self.route_cache_hits += 1
            self._route_cache.move_to_end(key)
            return cached
        self.route_cache_misses += 1
        routed = self._route_uncached(from_segment, to_segment)
        self._route_cache[key] = routed
        while len(self._route_cache) > self.route_cache_size:
            self._route_cache.popitem(last=False)
        return routed

    def _route_uncached(self, from_segment: int, to_segment: int) -> Route | None:
        if from_segment == to_segment:
            return Route(segments=(from_segment,), length=0.0)
        src = self.network.segments[from_segment]
        dst = self.network.segments[to_segment]
        # Direct continuation: dst leaves the node src enters.
        if src.end_node == dst.start_node:
            return Route(segments=(from_segment, to_segment), length=dst.length)
        node_key = (src.end_node, dst.start_node)
        cached_path = self._node_path_cache.get(node_key)
        if cached_path is None:
            mid_list, node_dist = self._backend.path_and_distance(*node_key)
            mid = tuple(mid_list) if mid_list is not None else None
            if len(self._node_path_cache) > self.route_cache_size:
                self._node_path_cache.clear()
            self._node_path_cache[node_key] = (mid, node_dist)
        else:
            mid, node_dist = cached_path
        if mid is None:
            return None
        length = node_dist + dst.length
        if length > self.max_route_length:
            return None
        return Route(segments=(from_segment, *mid, to_segment), length=length)

    def route_many(self, pairs: Sequence[tuple[int, int]]) -> list[Route | None]:
        """Route every ``(from, to)`` pair, e.g. one whole trellis step.

        All source nodes the batch needs are settled with a single
        multi-source Dijkstra call before per-pair reconstruction, replacing
        one heap search per pair.
        """
        need: list[int] = []
        segments = self.network.segments
        for from_segment, to_segment in pairs:
            if from_segment == to_segment:
                continue
            if (from_segment, to_segment) in self._route_cache:
                continue
            src = segments[from_segment]
            if src.end_node != segments[to_segment].start_node:
                need.append(src.end_node)
        if need:
            self._backend.ensure(need)
        cache = self._route_cache
        if len(cache) <= self.route_cache_size // 2:
            # Far from eviction pressure: serve bulk hits with a plain dict
            # probe, skipping the per-hit LRU reordering.  Values are
            # deterministic, so recency order only affects eviction choice.
            out: list[Route | None] = []
            for a, b in pairs:
                cached = cache.get((a, b), _MISS)
                if cached is not _MISS:
                    self.route_cache_hits += 1
                    out.append(cached)
                else:
                    out.append(self.route(a, b))
            return out
        return [self.route(a, b) for a, b in pairs]

    def route_length(self, from_segment: int, to_segment: int) -> float:
        """Length of :meth:`route` (inf when unreachable)."""
        routed = self.route(from_segment, to_segment)
        return routed.length if routed is not None else math.inf

    def route_length_matrix(
        self, from_segments: Sequence[int], to_segments: Sequence[int]
    ) -> np.ndarray:
        """Segment-transition lengths ``L[i, j] = route_length(from[i], to[j])``.

        Computed from one batched node-distance matrix plus vectorised
        arithmetic; agrees with per-pair :meth:`route_length` everywhere.
        """
        segments = self.network.segments
        ends = [segments[s].end_node for s in from_segments]
        starts = [segments[s].start_node for s in to_segments]
        node_d = self.distances(ends, starts)
        matrix = node_d + np.array([segments[s].length for s in to_segments])
        # route() only bounds the mid-path branch; direct continuations
        # (node distance 0) are never capped, so mirror that here.
        matrix[(matrix > self.max_route_length) & (node_d > 0)] = np.inf
        if len(from_segments) and len(to_segments):
            same = np.asarray(from_segments).reshape(-1, 1) == np.asarray(to_segments)
            matrix[same] = 0.0
        return matrix

    # -------------------------------------------------------------- lifecycle
    def clear_cache(self) -> None:
        """Drop all memoised Dijkstra results (e.g. after editing the network)."""
        self._backend.clear()
        self._route_cache.clear()
        self._node_path_cache.clear()
        self.route_cache_hits = 0
        self.route_cache_misses = 0

    @property
    def cached_sources(self) -> int:
        """Number of source nodes with a memoised Dijkstra result."""
        return self._backend.cached_sources

    def cache_stats(self) -> dict[str, int]:
        """Route-cache hit/miss counters plus cache occupancy."""
        return {
            "route_cache_hits": self.route_cache_hits,
            "route_cache_misses": self.route_cache_misses,
            "route_cache_entries": len(self._route_cache),
            "cached_sources": self.cached_sources,
        }


def stitch_segments(matched: list[int], engine) -> list[int]:
    """Connect per-point matched segments into one consecutive path.

    ``engine`` is any :class:`~repro.network.router.Router`.  Consecutive
    duplicates collapse; gaps are filled with the shortest route between the
    segments.  Unroutable gaps fall back to a hard break (the later segment
    simply follows), which keeps the function total.
    """
    path: list[int] = []
    for seg_id in matched:
        if path and path[-1] == seg_id:
            continue
        if not path:
            path.append(seg_id)
            continue
        route = engine.route(path[-1], seg_id)
        if route is None:
            path.append(seg_id)
            continue
        for hop in route.segments[1:]:
            if path[-1] != hop:
                path.append(hop)
    return path
