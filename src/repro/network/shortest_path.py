"""Shortest-path routing between road segments.

HMM map matching evaluates the shortest path between every pair of
neighbouring candidate roads, so routing dominates runtime.  Following the
precomputation idea the paper borrows from FMM [11], the engine memoises a
full single-source Dijkstra result per queried source node; repeated queries
from the same candidate segment (the common case across a trajectory) then
cost a dictionary lookup.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from repro.network.road_network import RoadNetwork


@dataclass(frozen=True, slots=True)
class Route:
    """A routed path between two segments.

    Attributes:
        segments: Consecutive segment ids, starting at the source segment
            and ending at the target segment (inclusive on both ends).
        length: Network distance in metres measured from the *end* of the
            source segment to the *end* of the target segment — i.e. the
            distance actually driven to complete the transition.
    """

    segments: tuple[int, ...]
    length: float

    @property
    def num_segments(self) -> int:
        """Number of road segments on the route."""
        return len(self.segments)


class ShortestPathEngine:
    """Dijkstra routing with per-source memoisation over a road network."""

    def __init__(self, network: RoadNetwork, max_route_length: float = 30000.0) -> None:
        """``max_route_length`` bounds the explored radius per source node."""
        self.network = network
        self.max_route_length = float(max_route_length)
        self._dist_cache: dict[int, dict[int, float]] = {}
        self._pred_cache: dict[int, dict[int, int]] = {}

    # ------------------------------------------------------------- node level
    def _run_dijkstra(self, source: int) -> None:
        """Settle all nodes within ``max_route_length`` of ``source``.

        Edge cost between nodes is the length of the connecting segment;
        parallel segments are resolved to the shortest one.
        """
        dist: dict[int, float] = {source: 0.0}
        pred: dict[int, int] = {}  # node -> incoming segment id on best path
        heap: list[tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        network = self.network
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if d > self.max_route_length:
                break
            for seg_id in network.out_segments(node):
                seg = network.segments[seg_id]
                nd = d + seg.length
                if nd < dist.get(seg.end_node, math.inf):
                    dist[seg.end_node] = nd
                    pred[seg.end_node] = seg_id
                    heapq.heappush(heap, (nd, seg.end_node))
        self._dist_cache[source] = dist
        self._pred_cache[source] = pred

    def node_distance(self, u: int, v: int) -> float:
        """Network distance from node ``u`` to node ``v`` (inf if unreachable)."""
        if u not in self._dist_cache:
            self._run_dijkstra(u)
        return self._dist_cache[u].get(v, math.inf)

    def node_path_segments(self, u: int, v: int) -> list[int] | None:
        """Segment ids along the shortest ``u``→``v`` path (None if unreachable).

        Returns an empty list when ``u == v``.
        """
        if u == v:
            return []
        if u not in self._dist_cache:
            self._run_dijkstra(u)
        pred = self._pred_cache[u]
        if v not in self._dist_cache[u]:
            return None
        path: list[int] = []
        node = v
        while node != u:
            seg_id = pred.get(node)
            if seg_id is None:
                return None
            path.append(seg_id)
            node = self.network.segments[seg_id].start_node
        path.reverse()
        return path

    # ---------------------------------------------------------- segment level
    def route(self, from_segment: int, to_segment: int) -> Route | None:
        """Shortest route between two segments (Definition: transition path).

        The route starts on ``from_segment``, continues along the shortest
        node path from its end node to ``to_segment``'s start node, and ends
        on ``to_segment``.  ``None`` when no path exists within the engine's
        exploration bound.  A self-transition yields a single-segment route
        of length 0.
        """
        if from_segment == to_segment:
            return Route(segments=(from_segment,), length=0.0)
        src = self.network.segments[from_segment]
        dst = self.network.segments[to_segment]
        # Direct continuation: dst leaves the node src enters.
        if src.end_node == dst.start_node:
            return Route(segments=(from_segment, to_segment), length=dst.length)
        mid = self.node_path_segments(src.end_node, dst.start_node)
        if mid is None:
            return None
        length = self.node_distance(src.end_node, dst.start_node) + dst.length
        if length > self.max_route_length:
            return None
        return Route(segments=(from_segment, *mid, to_segment), length=length)

    def route_length(self, from_segment: int, to_segment: int) -> float:
        """Length of :meth:`route` (inf when unreachable)."""
        routed = self.route(from_segment, to_segment)
        return routed.length if routed is not None else math.inf

    def clear_cache(self) -> None:
        """Drop all memoised Dijkstra results (e.g. after editing the network)."""
        self._dist_cache.clear()
        self._pred_cache.clear()

    @property
    def cached_sources(self) -> int:
        """Number of source nodes with a memoised Dijkstra result."""
        return len(self._dist_cache)


def stitch_segments(matched: list[int], engine: ShortestPathEngine) -> list[int]:
    """Connect per-point matched segments into one consecutive path.

    Consecutive duplicates collapse; gaps are filled with the shortest route
    between the segments.  Unroutable gaps fall back to a hard break (the
    later segment simply follows), which keeps the function total.
    """
    path: list[int] = []
    for seg_id in matched:
        if path and path[-1] == seg_id:
            continue
        if not path:
            path.append(seg_id)
            continue
        route = engine.route(path[-1], seg_id)
        if route is None:
            path.append(seg_id)
            continue
        for hop in route.segments[1:]:
            if path[-1] != hop:
                path.append(hop)
    return path
