"""Road-network (de)serialisation to plain dictionaries and JSON files."""

from __future__ import annotations

import json
from pathlib import Path

from repro.geometry import Point, Polyline
from repro.network.road_network import RoadNetwork, RoadSegment


def network_to_dict(network: RoadNetwork) -> dict:
    """A JSON-serialisable representation of ``network``."""
    return {
        "nodes": {str(nid): [p.x, p.y] for nid, p in network.nodes.items()},
        "segments": [
            {
                "id": seg.segment_id,
                "start": seg.start_node,
                "end": seg.end_node,
                "points": [[p.x, p.y] for p in seg.polyline.points],
                "speed": seg.speed_limit_mps,
                "class": seg.road_class,
            }
            for seg in network.segments.values()
        ],
    }


def network_from_dict(data: dict) -> RoadNetwork:
    """Rebuild a frozen :class:`RoadNetwork` from :func:`network_to_dict` output."""
    network = RoadNetwork()
    for nid, (x, y) in data["nodes"].items():
        network.add_node(int(nid), Point(float(x), float(y)))
    for entry in data["segments"]:
        network.add_segment(
            RoadSegment(
                segment_id=int(entry["id"]),
                start_node=int(entry["start"]),
                end_node=int(entry["end"]),
                polyline=Polyline([Point(float(x), float(y)) for x, y in entry["points"]]),
                speed_limit_mps=float(entry.get("speed", 13.9)),
                road_class=str(entry.get("class", "local")),
            )
        )
    return network.freeze()


def save_network(network: RoadNetwork, path: str | Path) -> None:
    """Write ``network`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(network_to_dict(network)))


def load_network(path: str | Path) -> RoadNetwork:
    """Load a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
