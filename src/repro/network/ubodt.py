"""UBODT: an upper-bounded origin–destination precomputation table.

The paper notes (§V-A2, citing FMM [11]) that HMM matching can use a
precomputation table to avoid repeated shortest-path searches.  A UBODT
stores, for every node pair within a distance bound Δ, the network distance
and the first segment of the shortest path — enough to answer both route
lengths and full route reconstructions in O(path) time.

The table lives in sorted structured numpy arrays keyed by a composite
``source * K + target`` integer, so :meth:`Ubodt.lookup_many` answers whole
batches of pairs with one ``searchsorted`` call, and :meth:`Ubodt.build`
runs scipy's multi-source Dijkstra over the network's CSR adjacency instead
of one Python heap search per node (a pure-Python build remains as the
scipy-less fallback).

:class:`UbodtRouter` exposes the same ``route``/``route_length`` interface
as :class:`~repro.network.shortest_path.ShortestPathEngine`, answering
within-Δ queries from the table and delegating the (rare) longer ones to a
fallback engine.  The table serialises to ``.npz`` so city-scale
deployments build it once.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import (
    HAVE_SCIPY,
    Route,
    ShortestPathEngine,
    _csgraph_dijkstra,
)


class Ubodt:
    """The precomputed table: ``(source, target) -> (distance, first_segment)``."""

    def __init__(self, delta_m: float) -> None:
        if delta_m <= 0:
            raise ValueError("delta_m must be positive")
        self.delta_m = float(delta_m)
        self._set_arrays(
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
        )

    def _set_arrays(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        distances: np.ndarray,
        firsts: np.ndarray,
    ) -> None:
        """Adopt row arrays, sorting them by the composite key."""
        if sources.size:
            self._key_base = int(max(sources.max(), targets.max())) + 1
        else:
            self._key_base = 1
        keys = sources * self._key_base + targets
        order = np.argsort(keys, kind="stable")
        self._sources = sources[order]
        self._targets = targets[order]
        self._distances = distances[order]
        self._firsts = firsts[order]
        self._keys = keys[order]

    @classmethod
    def from_arrays(
        cls,
        delta_m: float,
        sources: np.ndarray,
        targets: np.ndarray,
        distances: np.ndarray,
        firsts: np.ndarray,
    ) -> "Ubodt":
        """A table over explicit row arrays (sorted internally)."""
        table = cls(delta_m)
        table._set_arrays(
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(distances, dtype=np.float64),
            np.asarray(firsts, dtype=np.int64),
        )
        return table

    def sorted_arrays(self) -> dict[str, np.ndarray]:
        """The table's row arrays in composite-key order (for publishing).

        The composite ``keys`` array rides along so
        :meth:`attach_sorted` can adopt everything without allocating —
        recomputing ``source * key_base + target`` would materialise a
        private copy the size of the table.
        """
        return {
            "sources": self._sources,
            "targets": self._targets,
            "distances": self._distances,
            "firsts": self._firsts,
            "keys": self._keys,
        }

    @classmethod
    def attach_sorted(cls, delta_m: float, arrays: dict[str, np.ndarray]) -> "Ubodt":
        """Adopt pre-sorted row arrays without copying or re-sorting.

        ``arrays`` must come from :meth:`sorted_arrays` (typically via a
        read-only shared-memory attach): rows already sorted by composite
        key, with the key column included.  Unlike :meth:`from_arrays`,
        nothing is cast or reordered — lookups run directly against the
        caller's buffers.
        """
        table = cls.__new__(cls)
        if delta_m <= 0:
            raise ValueError("delta_m must be positive")
        table.delta_m = float(delta_m)
        sources, targets = arrays["sources"], arrays["targets"]
        if sources.size:
            table._key_base = int(max(sources.max(), targets.max())) + 1
        else:
            table._key_base = 1
        table._sources = sources
        table._targets = targets
        table._distances = arrays["distances"]
        table._firsts = arrays["firsts"]
        table._keys = arrays["keys"]
        return table

    def __len__(self) -> int:
        return int(self._keys.size)

    def rows(self) -> Iterator[tuple[tuple[int, int], tuple[float, int]]]:
        """Iterate ``((source, target), (distance, first_segment))`` rows."""
        for s, t, d, f in zip(self._sources, self._targets, self._distances, self._firsts):
            yield (int(s), int(t)), (float(d), int(f))

    # ----------------------------------------------------------------- lookup
    def lookup(self, source: int, target: int) -> tuple[float, int] | None:
        """``(distance, first_segment)`` or ``None`` when out of range."""
        if source == target:
            return (0.0, -1)
        if not (0 <= source < self._key_base and 0 <= target < self._key_base):
            return None
        key = source * self._key_base + target
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and self._keys[pos] == key:
            return (float(self._distances[pos]), int(self._firsts[pos]))
        return None

    def lookup_many(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`lookup` over aligned id arrays.

        Returns ``(distances, first_segments)``; missing pairs are
        ``(inf, -2)`` and self-pairs are ``(0.0, -1)``, mirroring the scalar
        contract.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        distances = np.full(sources.shape, np.inf)
        firsts = np.full(sources.shape, -2, dtype=np.int64)
        same = sources == targets
        distances[same] = 0.0
        firsts[same] = -1
        valid = (
            ~same
            & (sources >= 0)
            & (targets >= 0)
            & (sources < self._key_base)
            & (targets < self._key_base)
        )
        if self._keys.size and valid.any():
            keys = sources[valid] * self._key_base + targets[valid]
            pos = np.minimum(
                np.searchsorted(self._keys, keys), self._keys.size - 1
            )
            found = self._keys[pos] == keys
            rows = np.flatnonzero(valid)[found]
            distances[rows] = self._distances[pos[found]]
            firsts[rows] = self._firsts[pos[found]]
        return distances, firsts

    # ------------------------------------------------------------------ build
    @classmethod
    def build(
        cls, network: RoadNetwork, delta_m: float, chunk_size: int = 256
    ) -> "Ubodt":
        """Record every node pair within Δ, with the path's first segment.

        Runs one multi-source Dijkstra per ``chunk_size`` sources on the CSR
        adjacency when scipy is available (first segments are recovered from
        the predecessor matrix with memoised chain resolution), otherwise a
        bounded Python heap search per node.
        """
        if delta_m <= 0:
            raise ValueError("delta_m must be positive")
        if HAVE_SCIPY:
            return cls._build_vectorised(network, delta_m, chunk_size)
        return cls._build_python(network, delta_m)

    @classmethod
    def _build_vectorised(
        cls, network: RoadNetwork, delta_m: float, chunk_size: int
    ) -> "Ubodt":
        csr = network.csr()
        n = csr.num_nodes
        node_ids = csr.node_ids
        src_parts: list[np.ndarray] = []
        tgt_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        first_parts: list[np.ndarray] = []
        for start in range(0, n, chunk_size):
            indices = np.arange(start, min(start + chunk_size, n))
            dist, pred = _csgraph_dijkstra(
                csr.matrix,
                directed=True,
                indices=indices,
                return_predecessors=True,
                limit=delta_m,
            )
            for row, s_idx in enumerate(indices):
                s_idx = int(s_idx)
                drow, prow = dist[row], pred[row]
                reach = np.flatnonzero(np.isfinite(drow))
                reach = reach[reach != s_idx]
                if reach.size == 0:
                    continue
                # First segment of each shortest path: resolve predecessor
                # chains once, memoising along the way (amortised O(n)).
                first = np.full(n, -1, dtype=np.int64)
                for v in reach:
                    v = int(v)
                    if first[v] >= 0:
                        continue
                    stack = [v]
                    node = int(prow[v])
                    while node != s_idx and first[node] < 0:
                        stack.append(node)
                        node = int(prow[node])
                    if node == s_idx:
                        leaf = stack.pop()
                        f = csr.segment_between(s_idx, leaf)
                        first[leaf] = f
                    else:
                        f = first[node]
                    while stack:
                        first[stack.pop()] = f
                src_parts.append(np.full(reach.size, node_ids[s_idx], dtype=np.int64))
                tgt_parts.append(node_ids[reach])
                dist_parts.append(drow[reach])
                first_parts.append(first[reach])
        if not src_parts:
            return cls(delta_m)
        return cls.from_arrays(
            delta_m,
            np.concatenate(src_parts),
            np.concatenate(tgt_parts),
            np.concatenate(dist_parts),
            np.concatenate(first_parts),
        )

    @classmethod
    def _build_python(cls, network: RoadNetwork, delta_m: float) -> "Ubodt":
        sources: list[int] = []
        targets: list[int] = []
        distances: list[float] = []
        firsts: list[int] = []
        for source in network.nodes:
            dist: dict[int, float] = {source: 0.0}
            first: dict[int, int] = {}
            heap: list[tuple[float, int]] = [(0.0, source)]
            settled: set[int] = set()
            while heap:
                d, node = heapq.heappop(heap)
                if node in settled:
                    continue
                settled.add(node)
                if d > delta_m:
                    break
                for seg_id in network.out_segments(node):
                    seg = network.segments[seg_id]
                    nd = d + seg.length
                    if nd <= delta_m and nd < dist.get(seg.end_node, np.inf):
                        dist[seg.end_node] = nd
                        first[seg.end_node] = seg_id if node == source else first[node]
                        heapq.heappush(heap, (nd, seg.end_node))
            for target, d in dist.items():
                if target != source and d <= delta_m:
                    sources.append(source)
                    targets.append(target)
                    distances.append(d)
                    firsts.append(first[target])
        return cls.from_arrays(
            delta_m,
            np.asarray(sources, dtype=np.int64),
            np.asarray(targets, dtype=np.int64),
            np.asarray(distances, dtype=np.float64),
            np.asarray(firsts, dtype=np.int64),
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Write the table to ``path`` (npz)."""
        keys = np.column_stack([self._sources, self._targets]).astype(np.int64)
        values = np.column_stack(
            [self._distances, self._firsts.astype(np.float64)]
        )
        if not keys.size:
            keys = np.empty((0, 2), dtype=np.int64)
            values = np.empty((0, 2), dtype=np.float64)
        np.savez(
            Path(path), delta=np.array([self.delta_m]), keys=keys, values=values
        )

    @classmethod
    def load(cls, path: str | Path) -> "Ubodt":
        """Load a table written by :meth:`save`."""
        with np.load(Path(path)) as archive:
            keys = archive["keys"]
            values = archive["values"]
            return cls.from_arrays(
                float(archive["delta"][0]),
                keys[:, 0],
                keys[:, 1],
                values[:, 0],
                values[:, 1].astype(np.int64),
            )


class UbodtRouter:
    """Drop-in segment router backed by a UBODT with Dijkstra fallback."""

    def __init__(
        self,
        network: RoadNetwork,
        table: Ubodt,
        fallback: ShortestPathEngine | None = None,
    ) -> None:
        self.network = network
        self.table = table
        self.fallback = fallback or ShortestPathEngine(network)
        self.table_hits = 0
        self.fallback_hits = 0

    def _node_route(self, source: int, target: int) -> list[int] | None:
        """Segment ids along the tabled shortest node path (None if absent)."""
        if source == target:
            return []
        path: list[int] = []
        node = source
        while node != target:
            row = self.table.lookup(node, target)
            if row is None:
                return None
            _, first_segment = row
            path.append(first_segment)
            node = self.network.segments[first_segment].end_node
        return path

    def route(self, from_segment: int, to_segment: int) -> Route | None:
        """Same contract as :meth:`ShortestPathEngine.route`."""
        if from_segment == to_segment:
            return Route(segments=(from_segment,), length=0.0)
        src = self.network.segments[from_segment]
        dst = self.network.segments[to_segment]
        if src.end_node == dst.start_node:
            return Route(segments=(from_segment, to_segment), length=dst.length)
        row = self.table.lookup(src.end_node, dst.start_node)
        if row is None:
            self.fallback_hits += 1
            return self.fallback.route(from_segment, to_segment)
        self.table_hits += 1
        middle = self._node_route(src.end_node, dst.start_node)
        if middle is None:  # truncated table row chain: defer to fallback
            self.fallback_hits += 1
            return self.fallback.route(from_segment, to_segment)
        return Route(
            segments=(from_segment, *middle, to_segment),
            length=row[0] + dst.length,
        )

    def route_many(self, pairs: Sequence[tuple[int, int]]) -> list[Route | None]:
        """Batched :meth:`route`: one Dijkstra call warms all fallback pairs."""
        segments = self.network.segments
        need: list[int] = []
        for from_segment, to_segment in pairs:
            if from_segment == to_segment:
                continue
            src = segments[from_segment]
            dst = segments[to_segment]
            if src.end_node == dst.start_node:
                continue
            if self.table.lookup(src.end_node, dst.start_node) is None:
                need.append(src.end_node)
        if need:
            self.fallback.prime_sources(need)
        return [self.route(a, b) for a, b in pairs]

    def route_length(self, from_segment: int, to_segment: int) -> float:
        """Length of :meth:`route` (inf when unreachable).

        Answered straight from the table row — the distance is already
        stored, so no path reconstruction happens on this path.
        """
        if from_segment == to_segment:
            return 0.0
        src = self.network.segments[from_segment]
        dst = self.network.segments[to_segment]
        if src.end_node == dst.start_node:
            return dst.length
        row = self.table.lookup(src.end_node, dst.start_node)
        if row is None:
            self.fallback_hits += 1
            return self.fallback.route_length(from_segment, to_segment)
        self.table_hits += 1
        return row[0] + dst.length

    def route_length_matrix(
        self, from_segments: Sequence[int], to_segments: Sequence[int]
    ) -> np.ndarray:
        """Segment-transition lengths via one vectorised table probe.

        Misses (pairs beyond Δ) are filled from the fallback engine's
        batched node-distance matrix, so the result agrees with per-pair
        :meth:`route_length` everywhere.
        """
        segments = self.network.segments
        ends = np.array([segments[s].end_node for s in from_segments], dtype=np.int64)
        starts = np.array([segments[s].start_node for s in to_segments], dtype=np.int64)
        grid_s = np.repeat(ends, starts.size)
        grid_t = np.tile(starts, ends.size)
        distances, _ = self.table.lookup_many(grid_s, grid_t)
        matrix = distances.reshape(ends.size, starts.size)
        missing = ~np.isfinite(matrix)
        self.table_hits += int(matrix.size - missing.sum())
        if missing.any():
            self.fallback_hits += int(missing.sum())
            rows = np.flatnonzero(missing.any(axis=1))
            filled = self.fallback.distances([int(ends[i]) for i in rows], starts.tolist())
            for k, i in enumerate(rows):
                matrix[i, missing[i]] = filled[k, missing[i]]
        node_d = matrix
        matrix = matrix + np.array([segments[s].length for s in to_segments])
        # Mirror route(): direct continuations (node distance 0) are uncapped.
        matrix[(matrix > self.fallback.max_route_length) & (node_d > 0)] = np.inf
        if len(from_segments) and len(to_segments):
            same = np.asarray(from_segments).reshape(-1, 1) == np.asarray(to_segments)
            matrix[same] = 0.0
        return matrix

    def cache_stats(self) -> dict[str, int]:
        """Table/fallback hit counters plus the fallback engine's stats."""
        stats = {"table_hits": self.table_hits, "fallback_hits": self.fallback_hits}
        stats.update(self.fallback.cache_stats())
        return stats
