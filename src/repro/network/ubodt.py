"""UBODT: an upper-bounded origin–destination precomputation table.

The paper notes (§V-A2, citing FMM [11]) that HMM matching can use a
precomputation table to avoid repeated shortest-path searches.  A UBODT
stores, for every node pair within a distance bound Δ, the network distance
and the first segment of the shortest path — enough to answer both route
lengths and full route reconstructions in O(path) time.

:class:`UbodtRouter` exposes the same ``route``/``route_length`` interface
as :class:`~repro.network.shortest_path.ShortestPathEngine`, answering
within-Δ queries from the table and delegating the (rare) longer ones to a
fallback engine.  The table serialises to ``.npz`` so city-scale
deployments build it once.
"""

from __future__ import annotations

import heapq
from pathlib import Path

import numpy as np

from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import Route, ShortestPathEngine


class Ubodt:
    """The precomputed table: ``(source, target) -> (distance, first_segment)``."""

    def __init__(self, delta_m: float) -> None:
        if delta_m <= 0:
            raise ValueError("delta_m must be positive")
        self.delta_m = float(delta_m)
        self._rows: dict[tuple[int, int], tuple[float, int]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def lookup(self, source: int, target: int) -> tuple[float, int] | None:
        """``(distance, first_segment)`` or ``None`` when out of range."""
        if source == target:
            return (0.0, -1)
        return self._rows.get((source, target))

    # ------------------------------------------------------------------ build
    @classmethod
    def build(cls, network: RoadNetwork, delta_m: float) -> "Ubodt":
        """Run a bounded Dijkstra from every node and record the rows.

        The "first segment" of each row is propagated along the search, so
        path reconstruction never needs predecessor chains.
        """
        table = cls(delta_m)
        for source in network.nodes:
            dist: dict[int, float] = {source: 0.0}
            first: dict[int, int] = {}
            heap: list[tuple[float, int]] = [(0.0, source)]
            settled: set[int] = set()
            while heap:
                d, node = heapq.heappop(heap)
                if node in settled:
                    continue
                settled.add(node)
                if d > delta_m:
                    break
                for seg_id in network.out_segments(node):
                    seg = network.segments[seg_id]
                    nd = d + seg.length
                    if nd <= delta_m and nd < dist.get(seg.end_node, np.inf):
                        dist[seg.end_node] = nd
                        first[seg.end_node] = seg_id if node == source else first[node]
                        heapq.heappush(heap, (nd, seg.end_node))
            for target, d in dist.items():
                if target != source and d <= delta_m:
                    table._rows[(source, target)] = (d, first[target])
        return table

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Write the table to ``path`` (npz)."""
        if self._rows:
            keys = np.array(list(self._rows), dtype=np.int64)
            values = np.array(
                [(d, f) for d, f in self._rows.values()], dtype=np.float64
            )
        else:
            keys = np.empty((0, 2), dtype=np.int64)
            values = np.empty((0, 2), dtype=np.float64)
        np.savez(
            Path(path), delta=np.array([self.delta_m]), keys=keys, values=values
        )

    @classmethod
    def load(cls, path: str | Path) -> "Ubodt":
        """Load a table written by :meth:`save`."""
        with np.load(Path(path)) as archive:
            table = cls(float(archive["delta"][0]))
            for (source, target), (distance, first) in zip(
                archive["keys"], archive["values"]
            ):
                table._rows[(int(source), int(target))] = (float(distance), int(first))
        return table


class UbodtRouter:
    """Drop-in segment router backed by a UBODT with Dijkstra fallback."""

    def __init__(
        self,
        network: RoadNetwork,
        table: Ubodt,
        fallback: ShortestPathEngine | None = None,
    ) -> None:
        self.network = network
        self.table = table
        self.fallback = fallback or ShortestPathEngine(network)
        self.table_hits = 0
        self.fallback_hits = 0

    def _node_route(self, source: int, target: int) -> list[int] | None:
        """Segment ids along the tabled shortest node path (None if absent)."""
        if source == target:
            return []
        path: list[int] = []
        node = source
        while node != target:
            row = self.table.lookup(node, target)
            if row is None:
                return None
            _, first_segment = row
            path.append(first_segment)
            node = self.network.segments[first_segment].end_node
        return path

    def route(self, from_segment: int, to_segment: int) -> Route | None:
        """Same contract as :meth:`ShortestPathEngine.route`."""
        if from_segment == to_segment:
            return Route(segments=(from_segment,), length=0.0)
        src = self.network.segments[from_segment]
        dst = self.network.segments[to_segment]
        if src.end_node == dst.start_node:
            return Route(segments=(from_segment, to_segment), length=dst.length)
        row = self.table.lookup(src.end_node, dst.start_node)
        if row is None:
            self.fallback_hits += 1
            return self.fallback.route(from_segment, to_segment)
        self.table_hits += 1
        middle = self._node_route(src.end_node, dst.start_node)
        if middle is None:  # truncated table row chain: defer to fallback
            self.fallback_hits += 1
            return self.fallback.route(from_segment, to_segment)
        return Route(
            segments=(from_segment, *middle, to_segment),
            length=row[0] + dst.length,
        )

    def route_length(self, from_segment: int, to_segment: int) -> float:
        """Length of :meth:`route` (inf when unreachable)."""
        routed = self.route(from_segment, to_segment)
        return routed.length if routed is not None else float("inf")
