"""Directed road-network model with spatial queries.

A :class:`RoadNetwork` is the substrate every matcher in this library runs
on: a set of intersection nodes plus directed road segments between them,
with a uniform-grid spatial index for "segments near this point" queries
(candidate retrieval) and adjacency structures for routing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry import GridIndex, Point, Polyline


def _ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start + count)`` per element, loop-free.

    Every count must be >= 1 (sub-segment spans always are: a polyline has
    at least one sub-segment).
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    if counts.shape[0] > 1:
        boundaries = np.cumsum(counts)[:-1]
        out[boundaries] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


@dataclass(frozen=True)
class CsrAdjacency:
    """Compressed-sparse-row view of a network's node graph.

    Parallel segments between the same node pair are resolved to the
    shortest one, matching the per-pair Dijkstra semantics.  ``matrix`` is
    suitable for :func:`scipy.sparse.csgraph.dijkstra`; ``edge_segments``
    is aligned with ``matrix.data`` so the segment realising any (u, v)
    edge can be recovered after predecessor-matrix route reconstruction.

    Attributes:
        node_ids: Node id of each matrix row/column index.
        index: Inverse mapping, node id -> matrix index.
        matrix: ``scipy.sparse.csr_matrix`` of edge lengths in metres.
        edge_segments: Segment id for each stored matrix entry.
    """

    node_ids: np.ndarray
    index: dict[int, int]
    matrix: object  # scipy.sparse.csr_matrix (typed loosely to keep scipy lazy)
    edge_segments: np.ndarray
    _edge_lookup_cache: dict[tuple[int, int], int] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes (matrix dimension)."""
        return int(self.node_ids.shape[0])

    def segment_between(self, u_index: int, v_index: int) -> int:
        """Segment id of the stored ``u -> v`` edge (-1 when absent).

        Answered from a one-time ``(u, v) -> segment`` dictionary: route
        reconstruction calls this once per edge of every decoded path, and
        a dict probe beats a per-call ``searchsorted`` by an order of
        magnitude at that volume.
        """
        lookup = self._edge_lookup()
        return lookup.get((u_index, v_index), -1)

    def _edge_lookup(self) -> dict[tuple[int, int], int]:
        if self._edge_lookup_cache is None:
            matrix = self.matrix
            lookup: dict[tuple[int, int], int] = {}
            indptr, indices = matrix.indptr, matrix.indices
            segments = self.edge_segments
            for u in range(self.num_nodes):
                for pos in range(int(indptr[u]), int(indptr[u + 1])):
                    lookup[(u, int(indices[pos]))] = int(segments[pos])
            object.__setattr__(self, "_edge_lookup_cache", lookup)
        return self._edge_lookup_cache


@dataclass(slots=True)
class RoadSegment:
    """One directed road segment.

    Attributes:
        segment_id: Unique integer id within the network.
        start_node: Id of the node the segment leaves.
        end_node: Id of the node the segment enters.
        polyline: Geometry from the start node to the end node.
        speed_limit_mps: Free-flow speed in metres per second.
        road_class: Coarse class label (``"arterial"``, ``"local"``, ...),
            used by the generators and by heuristic baselines.
    """

    segment_id: int
    start_node: int
    end_node: int
    polyline: Polyline
    speed_limit_mps: float = 13.9
    road_class: str = "local"

    @property
    def length(self) -> float:
        """Segment length in metres."""
        return self.polyline.length

    @property
    def midpoint(self) -> Point:
        """Point halfway along the segment geometry."""
        return self.polyline.interpolate(self.polyline.length / 2.0)

    def heading_deg(self) -> float:
        """Overall bearing of the segment in degrees."""
        return self.polyline.heading_deg()

    def distance_to(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the segment."""
        _, dist, _ = self.polyline.project(p)
        return dist


@dataclass
class RoadNetwork:
    """A directed road network ``G<V, E>`` (Definition 3 of the paper).

    Build with :meth:`add_node` / :meth:`add_segment` then call
    :meth:`freeze` (or use :func:`repro.network.generate_city_network`).
    Spatial queries require a frozen network.
    """

    nodes: dict[int, Point] = field(default_factory=dict)
    segments: dict[int, RoadSegment] = field(default_factory=dict)
    _out: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _in: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _index: GridIndex | None = field(default=None, repr=False)
    _index_sample_step: float = field(default=150.0, repr=False)
    # Flattened sub-segment geometry for vectorised distance queries:
    # _sub_geometry rows are (ax, ay, dx, dy, len_sq); _sub_rows maps each
    # segment id to its contiguous row range.  _sub_raw_len_sq keeps the
    # *unclamped* squared lengths so exact-projection distances can divide
    # by the same value the scalar Polyline.project does.
    _sub_geometry: "np.ndarray | None" = field(default=None, repr=False)
    _sub_rows: dict[int, tuple[int, int]] = field(default_factory=dict, repr=False)
    _sub_raw_len_sq: "np.ndarray | None" = field(default=None, repr=False)
    # Dense (start, count) tables indexed by segment id so span lookups are
    # two np.take gathers instead of a Python dict loop.
    _span_starts: "np.ndarray | None" = field(default=None, repr=False)
    _span_counts: "np.ndarray | None" = field(default=None, repr=False)
    _csr: CsrAdjacency | None = field(default=None, repr=False)
    # Per-segment turn-angle sums and headings (lazy; feeds the batched
    # transition-feature builder) plus a per-route turn-sum memo keyed by
    # the route's segment tuple.
    _turn_sums: dict[int, float] | None = field(default=None, repr=False)
    _headings: dict[int, float] | None = field(default=None, repr=False)
    _turn_dense: "tuple[np.ndarray, np.ndarray] | None" = field(default=None, repr=False)
    _route_turns: dict[tuple[int, ...], float] = field(default_factory=dict, repr=False)
    _near_memo: dict[tuple[float, float, float], tuple[int, ...]] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------ build
    def add_node(self, node_id: int, location: Point) -> None:
        """Register intersection ``node_id`` at ``location``."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self.nodes[node_id] = location
        self._out.setdefault(node_id, [])
        self._in.setdefault(node_id, [])
        self._csr = None  # invalidate adjacency

    def add_segment(self, segment: RoadSegment) -> None:
        """Register a directed segment; endpoints must already exist."""
        if segment.segment_id in self.segments:
            raise ValueError(f"duplicate segment id {segment.segment_id}")
        if segment.start_node not in self.nodes or segment.end_node not in self.nodes:
            raise ValueError("segment endpoints must be added before the segment")
        self.segments[segment.segment_id] = segment
        self._out[segment.start_node].append(segment.segment_id)
        self._in[segment.end_node].append(segment.segment_id)
        self._index = None  # invalidate spatial index
        self._csr = None  # invalidate adjacency
        self._span_starts = None  # invalidate dense span tables
        self._span_counts = None
        self._turn_sums = None  # invalidate per-segment turn geometry
        self._headings = None
        self._turn_dense = None
        self._route_turns.clear()
        self._near_memo.clear()

    def freeze(self) -> "RoadNetwork":
        """Build the spatial index and geometry tables; returns ``self``."""
        index: GridIndex[int] = GridIndex(cell_size=max(self._index_sample_step, 100.0))
        rows: list[tuple[float, float, float, float, float]] = []
        raw_len_sq: list[float] = []
        self._sub_rows = {}
        for seg in self.segments.values():
            index.insert_many(seg.segment_id, self._sample_points(seg))
            start = len(rows)
            points = seg.polyline.points
            for a, b in zip(points, points[1:]):
                dx, dy = b.x - a.x, b.y - a.y
                len_sq = dx * dx + dy * dy
                rows.append((a.x, a.y, dx, dy, max(len_sq, 1e-12)))
                raw_len_sq.append(len_sq)
            self._sub_rows[seg.segment_id] = (start, len(rows))
        self._sub_geometry = np.asarray(rows, dtype=np.float64)
        self._sub_raw_len_sq = np.asarray(raw_len_sq, dtype=np.float64)
        size = (max(self.segments) + 1) if self.segments else 0
        self._span_starts = np.zeros(size, dtype=np.int64)
        self._span_counts = np.zeros(size, dtype=np.int64)
        for sid, (lo, hi) in self._sub_rows.items():
            self._span_starts[sid] = lo
            self._span_counts[sid] = hi - lo
        self._index = index
        return self

    def _sample_points(self, seg: RoadSegment) -> list[Point]:
        """Representative points for the spatial index (ends + interior)."""
        points = [seg.polyline.start, seg.polyline.end]
        step = self._index_sample_step
        offset = step
        while offset < seg.length:
            points.append(seg.polyline.interpolate(offset))
            offset += step
        return points

    # ----------------------------------------------------------------- access
    @property
    def num_nodes(self) -> int:
        """Number of intersection nodes."""
        return len(self.nodes)

    @property
    def num_segments(self) -> int:
        """Number of directed road segments."""
        return len(self.segments)

    def segment(self, segment_id: int) -> RoadSegment:
        """The segment with id ``segment_id`` (KeyError if absent)."""
        return self.segments[segment_id]

    def out_segments(self, node_id: int) -> list[int]:
        """Ids of segments leaving ``node_id``."""
        return self._out.get(node_id, [])

    def in_segments(self, node_id: int) -> list[int]:
        """Ids of segments entering ``node_id``."""
        return self._in.get(node_id, [])

    def successors(self, segment_id: int) -> list[int]:
        """Segments reachable immediately after ``segment_id``."""
        return self.out_segments(self.segments[segment_id].end_node)

    def predecessors(self, segment_id: int) -> list[int]:
        """Segments from which ``segment_id`` is immediately reachable."""
        return self.in_segments(self.segments[segment_id].start_node)

    def csr(self) -> CsrAdjacency:
        """The (cached) CSR adjacency over nodes; built on first use.

        Requires scipy.  Vectorised routing (:class:`ShortestPathEngine`,
        :meth:`Ubodt.build`) runs on this representation instead of the
        per-node Python dictionaries.
        """
        if self._csr is None:
            from scipy.sparse import csr_matrix

            node_ids = np.fromiter(self.nodes.keys(), dtype=np.int64, count=len(self.nodes))
            index = {int(node): i for i, node in enumerate(node_ids)}
            n = node_ids.shape[0]
            m = len(self.segments)
            rows = np.empty(m, dtype=np.int64)
            cols = np.empty(m, dtype=np.int64)
            weights = np.empty(m, dtype=np.float64)
            seg_ids = np.empty(m, dtype=np.int64)
            for k, seg in enumerate(self.segments.values()):
                rows[k] = index[seg.start_node]
                cols[k] = index[seg.end_node]
                # Clamp to a tiny positive weight: csgraph drops explicit
                # zeros, which would erase degenerate zero-length segments.
                weights[k] = max(seg.length, 1e-9)
                seg_ids[k] = seg.segment_id
            # Resolve parallel edges to the shortest segment before building
            # the matrix (csr_matrix would otherwise *sum* duplicates).
            order = np.lexsort((weights, cols, rows))
            rows, cols, weights, seg_ids = (
                rows[order], cols[order], weights[order], seg_ids[order]
            )
            if m:
                keep = np.ones(m, dtype=bool)
                keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
                rows, cols, weights, seg_ids = (
                    rows[keep], cols[keep], weights[keep], seg_ids[keep]
                )
            matrix = csr_matrix((weights, (rows, cols)), shape=(n, n))
            matrix.sort_indices()
            if np.array_equal(matrix.indices, cols):
                # Deduped lexsorted COO input is already in canonical CSR
                # order, so the segment ids carry over one-to-one.
                aligned = seg_ids
            else:  # pragma: no cover - defensive against scipy reordering
                aligned = np.empty(matrix.nnz, dtype=np.int64)
                lookup = {(int(r), int(c)): int(s) for r, c, s in zip(rows, cols, seg_ids)}
                for u in range(n):
                    for pos in range(matrix.indptr[u], matrix.indptr[u + 1]):
                        aligned[pos] = lookup[(u, int(matrix.indices[pos]))]
            self._csr = CsrAdjacency(
                node_ids=node_ids, index=index, matrix=matrix, edge_segments=aligned
            )
        return self._csr

    # ------------------------------------------------- shared-memory attach
    #: Array names produced by :meth:`shared_state_arrays` / consumed by
    #: :meth:`adopt_shared_state`.
    SHARED_STATE_KEYS = (
        "sub_geometry",
        "sub_raw_len_sq",
        "span_starts",
        "span_counts",
        "csr_node_ids",
        "csr_indptr",
        "csr_indices",
        "csr_data",
        "csr_edge_segments",
    )

    def shared_state_arrays(self) -> dict[str, np.ndarray]:
        """The frozen geometry + CSR tables as a flat array dict.

        This is the network's *heavy* numeric state — everything worth
        publishing to shared memory.  Dtypes are preserved exactly (the
        CSR index arrays keep whatever width scipy chose) so an attached
        copy reconstructs an identical adjacency without per-call dtype
        conversions in ``csgraph``.
        """
        if self._sub_geometry is None:
            self.freeze()
        adjacency = self.csr()
        matrix = adjacency.matrix
        return {
            "sub_geometry": self._sub_geometry,
            "sub_raw_len_sq": self._sub_raw_len_sq,
            "span_starts": self._span_starts,
            "span_counts": self._span_counts,
            "csr_node_ids": adjacency.node_ids,
            "csr_indptr": matrix.indptr,
            "csr_indices": matrix.indices,
            "csr_data": matrix.data,
            "csr_edge_segments": adjacency.edge_segments,
        }

    def adopt_shared_state(self, arrays: dict[str, np.ndarray]) -> "RoadNetwork":
        """Point the geometry/adjacency tables at externally owned buffers.

        ``arrays`` is the dict produced by :meth:`shared_state_arrays` on
        an identical network — typically attached read-only from a
        shared-memory segment (:class:`~repro.serve.shm.SharedArrayPack`).
        No numeric data is copied: the network's vectorised kernels and
        the CSR adjacency operate directly on the caller's buffers, so N
        worker processes adopting the same segment share one copy of the
        map.  The small Python-side lookups (grid index, ``_sub_rows``,
        node-id dict) are rebuilt or kept as-is; query results are
        bit-identical to the donor network's.
        """
        missing = [k for k in self.SHARED_STATE_KEYS if k not in arrays]
        if missing:
            raise ValueError(f"adopt_shared_state: missing arrays {missing}")
        if self._index is None:
            # The grid index and _sub_rows spans are cheap Python-side
            # structures freeze() builds; the freshly built numeric tables
            # are immediately replaced by the shared buffers below.
            self.freeze()
        from scipy.sparse import csr_matrix

        self._sub_geometry = arrays["sub_geometry"]
        self._sub_raw_len_sq = arrays["sub_raw_len_sq"]
        self._span_starts = arrays["span_starts"]
        self._span_counts = arrays["span_counts"]
        node_ids = arrays["csr_node_ids"]
        n = int(node_ids.shape[0])
        matrix = csr_matrix(
            (arrays["csr_data"], arrays["csr_indices"], arrays["csr_indptr"]),
            shape=(n, n),
            copy=False,
        )
        self._csr = CsrAdjacency(
            node_ids=node_ids,
            index={int(node): i for i, node in enumerate(node_ids)},
            matrix=matrix,
            edge_segments=arrays["csr_edge_segments"],
        )
        self._near_memo.clear()
        self._route_turns.clear()
        return self

    def total_length(self) -> float:
        """Sum of all segment lengths in metres."""
        return sum(seg.length for seg in self.segments.values())

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all nodes."""
        if not self.nodes:
            raise ValueError("empty network")
        xs = [p.x for p in self.nodes.values()]
        ys = [p.y for p in self.nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    # ---------------------------------------------------------------- spatial
    def _require_index(self) -> GridIndex:
        if self._index is None:
            self.freeze()
        assert self._index is not None
        return self._index

    def distances_to_segments(self, p: Point, segment_ids: list[int]) -> np.ndarray:
        """Exact distance from ``p`` to each listed segment, vectorised."""
        self._require_index()
        assert self._sub_geometry is not None
        if not segment_ids:
            return np.empty(0)
        spans = [self._sub_rows[s] for s in segment_ids]
        row_idx = np.concatenate([np.arange(lo, hi) for lo, hi in spans])
        counts = np.array([hi - lo for lo, hi in spans])
        sub = self._sub_geometry[row_idx]
        rel_x = p.x - sub[:, 0]
        rel_y = p.y - sub[:, 1]
        t = np.clip((rel_x * sub[:, 2] + rel_y * sub[:, 3]) / sub[:, 4], 0.0, 1.0)
        dist_sq = (rel_x - t * sub[:, 2]) ** 2 + (rel_y - t * sub[:, 3]) ** 2
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        return np.sqrt(np.minimum.reduceat(dist_sq, offsets))

    def segments_near(self, p: Point, radius: float) -> list[int]:
        """Segment ids whose geometry lies within ``radius`` metres of ``p``.

        The grid-index pre-filter is refined with exact, vectorised polyline
        distances; the result is sorted by true distance, nearest first.
        """
        rough = list(
            self._require_index().items_in_box(p, radius + self._index_sample_step)
        )
        if not rough:
            return []
        distances = self.distances_to_segments(p, rough)
        keep = distances <= radius
        order = np.argsort(distances[keep], kind="stable")
        kept_ids = np.asarray(rough)[keep]
        return [int(s) for s in kept_ids[order]]

    def nearest_segments(self, p: Point, count: int = 1, max_radius: float = 8000.0) -> list[int]:
        """The ``count`` nearest segments to ``p`` by exact distance.

        Expands the search radius geometrically until enough segments are
        found or ``max_radius`` is reached.
        """
        radius = max(self._index_sample_step * 2, 200.0)
        while True:
            found = self.segments_near(p, radius)
            if len(found) >= count or radius >= max_radius:
                return found[:count]
            radius = min(radius * 2.0, max_radius)

    # --------------------------------------------------------- batched spatial
    def _segment_spans(self, segment_ids: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
        """Sub-geometry row (start, count) arrays for the given segments."""
        if self._span_starts is not None:
            ids = np.asarray(segment_ids, dtype=np.int64)
            return self._span_starts.take(ids), self._span_counts.take(ids)
        spans = self._sub_rows
        n = len(segment_ids)
        starts = np.empty(n, dtype=np.int64)
        counts = np.empty(n, dtype=np.int64)
        for i, s in enumerate(segment_ids):
            lo, hi = spans[s]
            starts[i] = lo
            counts[i] = hi - lo
        return starts, counts

    def segments_near_many(
        self, points: Sequence[Point], radius: float
    ) -> list[list[int]]:
        """:meth:`segments_near` for every point in one stacked distance pass.

        Returns exactly ``[self.segments_near(p, radius) for p in points]``
        — same rough-candidate enumeration order, same clamped-projection
        distances, same stable nearest-first sort — while deduplicating
        repeated query positions (consecutive cellular samples often share
        a tower location) and refining every rough set in a single
        vectorised computation instead of one numpy round-trip per point.
        Refined answers are memoised per ``(x, y, radius)`` across calls
        (cellular workloads re-ask the same tower positions trajectory
        after trajectory); the memo is invalidated when the network gains
        segments and capped at :data:`NEAR_MEMO_MAX` entries.
        """
        index = self._require_index()
        assert self._sub_geometry is not None
        memo = self._near_memo
        if len(memo) > self.NEAR_MEMO_MAX:
            memo.clear()
        unique: dict[tuple[float, float], int] = {}
        point_to_unique: list[int] = []
        uniq_points: list[Point] = []
        for p in points:
            key = (p.x, p.y)
            slot = unique.setdefault(key, len(unique))
            if slot == len(uniq_points):
                uniq_points.append(p)
            point_to_unique.append(slot)
        results: list[tuple[int, ...] | None] = [
            memo.get((p.x, p.y, radius)) for p in uniq_points
        ]
        pending = [u for u, r in enumerate(results) if r is None]
        if pending:
            boxes = index.items_in_boxes(
                [uniq_points[u] for u in pending], radius + self._index_sample_step
            )
            rough_lists = [list(box) for box in boxes]
            for slot, u in enumerate(pending):
                if not rough_lists[slot]:
                    results[u] = ()
                    memo[(uniq_points[u].x, uniq_points[u].y, radius)] = ()
            active = [
                (slot, u)
                for slot, u in enumerate(pending)
                if rough_lists[slot]
            ]
            if active:
                pair_ids = [s for slot, _ in active for s in rough_lists[slot]]
                pair_counts = np.array(
                    [len(rough_lists[slot]) for slot, _ in active], dtype=np.int64
                )
                starts, counts = self._segment_spans(pair_ids)
                rows = _ragged_ranges(starts, counts)
                sub = self._sub_geometry[rows]
                px = np.repeat(
                    np.repeat(
                        [uniq_points[u].x for _, u in active], pair_counts
                    ),
                    counts,
                )
                py = np.repeat(
                    np.repeat(
                        [uniq_points[u].y for _, u in active], pair_counts
                    ),
                    counts,
                )
                rel_x = px - sub[:, 0]
                rel_y = py - sub[:, 1]
                t = np.clip(
                    (rel_x * sub[:, 2] + rel_y * sub[:, 3]) / sub[:, 4], 0.0, 1.0
                )
                dist_sq = (rel_x - t * sub[:, 2]) ** 2 + (rel_y - t * sub[:, 3]) ** 2
                offsets = np.zeros(len(pair_ids), dtype=np.int64)
                np.cumsum(counts[:-1], out=offsets[1:])
                distances = np.sqrt(np.minimum.reduceat(dist_sq, offsets))
                cursor = 0
                for (slot, u), m in zip(active, pair_counts):
                    d = distances[cursor : cursor + m]
                    cursor += m
                    keep = d <= radius
                    order = np.argsort(d[keep], kind="stable")
                    kept_ids = np.asarray(rough_lists[slot])[keep]
                    refined = tuple(kept_ids[order].tolist())
                    results[u] = refined
                    memo[(uniq_points[u].x, uniq_points[u].y, radius)] = refined
        return [list(results[u]) for u in point_to_unique]  # type: ignore[arg-type]

    def nearest_segments_many(
        self, points: Sequence[Point], count: int = 1, max_radius: float = 8000.0
    ) -> list[list[int]]:
        """:meth:`nearest_segments` per point, deduplicating repeated positions.

        The doubling radius differs per point, so each unique position runs
        the scalar expansion; repeated positions reuse the answer.
        """
        cache: dict[tuple[float, float], list[int]] = {}
        out: list[list[int]] = []
        for p in points:
            key = (p.x, p.y)
            found = cache.get(key)
            if found is None:
                found = self.nearest_segments(p, count=count, max_radius=max_radius)
                cache[key] = found
            out.append(list(found))
        return out

    def point_segment_distances(
        self, px: np.ndarray, py: np.ndarray, segment_ids: Sequence[int]
    ) -> np.ndarray:
        """Exact :meth:`RoadSegment.distance_to` for aligned (point, segment) pairs.

        Replicates :meth:`~repro.geometry.segment.Polyline.project` bit for
        bit — the *raw* (unclamped) squared sub-segment lengths, the
        zero-length special case, and per-element ``math.hypot`` — so
        feature code can mix values from here with scalar ``distance_to``
        calls without a single ulp of drift.  ``px``/``py`` are aligned
        with ``segment_ids``; one distance per pair comes back.
        """
        self._require_index()
        assert self._sub_geometry is not None and self._sub_raw_len_sq is not None
        n = len(segment_ids)
        if n == 0:
            return np.empty(0)
        starts, counts = self._segment_spans(segment_ids)
        rows = _ragged_ranges(starts, counts)
        sub = self._sub_geometry[rows]
        raw = self._sub_raw_len_sq[rows]
        ppx = np.repeat(np.asarray(px, dtype=np.float64), counts)
        ppy = np.repeat(np.asarray(py, dtype=np.float64), counts)
        rel_x = ppx - sub[:, 0]
        rel_y = ppy - sub[:, 1]
        t = np.divide(
            rel_x * sub[:, 2] + rel_y * sub[:, 3],
            raw,
            out=np.zeros(rows.shape[0]),
            where=raw != 0.0,
        )
        t = np.clip(t, 0.0, 1.0)
        comp_x = (ppx - (sub[:, 0] + t * sub[:, 2])).tolist()
        comp_y = (ppy - (sub[:, 1] + t * sub[:, 3])).tolist()
        hypot = math.hypot
        dist = np.fromiter(
            (hypot(a, b) for a, b in zip(comp_x, comp_y)),
            dtype=np.float64,
            count=rows.shape[0],
        )
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        return np.minimum.reduceat(dist, offsets)

    # ---------------------------------------------------------- turn geometry
    def turn_geometry(self) -> tuple[dict[int, float], dict[int, float]]:
        """Per-segment ``(turn_angle_sum_deg, heading_deg)`` caches (lazy).

        The values are exactly what ``seg.polyline.turn_angle_sum_deg()``
        and ``seg.heading_deg()`` return; caching them lets the transition
        feature builder sum a route's turning without re-deriving bearings
        for every (pair, segment) visit.
        """
        if self._turn_sums is None or self._headings is None:
            self._turn_sums = {
                sid: seg.polyline.turn_angle_sum_deg()
                for sid, seg in self.segments.items()
            }
            self._headings = {
                sid: seg.heading_deg() for sid, seg in self.segments.items()
            }
        return self._turn_sums, self._headings

    def turn_geometry_dense(self) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`turn_geometry` as dense segment-id-indexed arrays.

        Same floats as the dict caches; lets the batched route-turn filler
        gather a whole group of routes with one fancy-index.
        """
        if self._turn_dense is None:
            turn_sums, headings = self.turn_geometry()
            size = (max(self.segments) + 1) if self.segments else 0
            ts = np.zeros(size, dtype=np.float64)
            hd = np.zeros(size, dtype=np.float64)
            for sid, value in turn_sums.items():
                ts[sid] = value
            for sid, value in headings.items():
                hd[sid] = value
            self._turn_dense = (ts, hd)
        return self._turn_dense

    #: Bound on memoised per-route turn sums (cleared wholesale when hit).
    ROUTE_TURN_CACHE_MAX = 200_000

    #: Entry cap of the per-position near-segments memo.
    NEAR_MEMO_MAX = 200_000

    def route_turns(self) -> dict[tuple[int, ...], float]:
        """The per-route turn-sum memo (segment tuple -> degrees)."""
        if len(self._route_turns) > self.ROUTE_TURN_CACHE_MAX:
            self._route_turns.clear()
        return self._route_turns
