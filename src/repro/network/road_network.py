"""Directed road-network model with spatial queries.

A :class:`RoadNetwork` is the substrate every matcher in this library runs
on: a set of intersection nodes plus directed road segments between them,
with a uniform-grid spatial index for "segments near this point" queries
(candidate retrieval) and adjacency structures for routing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import GridIndex, Point, Polyline


@dataclass(frozen=True)
class CsrAdjacency:
    """Compressed-sparse-row view of a network's node graph.

    Parallel segments between the same node pair are resolved to the
    shortest one, matching the per-pair Dijkstra semantics.  ``matrix`` is
    suitable for :func:`scipy.sparse.csgraph.dijkstra`; ``edge_segments``
    is aligned with ``matrix.data`` so the segment realising any (u, v)
    edge can be recovered after predecessor-matrix route reconstruction.

    Attributes:
        node_ids: Node id of each matrix row/column index.
        index: Inverse mapping, node id -> matrix index.
        matrix: ``scipy.sparse.csr_matrix`` of edge lengths in metres.
        edge_segments: Segment id for each stored matrix entry.
    """

    node_ids: np.ndarray
    index: dict[int, int]
    matrix: object  # scipy.sparse.csr_matrix (typed loosely to keep scipy lazy)
    edge_segments: np.ndarray

    @property
    def num_nodes(self) -> int:
        """Number of graph nodes (matrix dimension)."""
        return int(self.node_ids.shape[0])

    def segment_between(self, u_index: int, v_index: int) -> int:
        """Segment id of the stored ``u -> v`` edge (-1 when absent)."""
        matrix = self.matrix
        lo, hi = matrix.indptr[u_index], matrix.indptr[u_index + 1]
        pos = lo + np.searchsorted(matrix.indices[lo:hi], v_index)
        if pos < hi and matrix.indices[pos] == v_index:
            return int(self.edge_segments[pos])
        return -1


@dataclass(slots=True)
class RoadSegment:
    """One directed road segment.

    Attributes:
        segment_id: Unique integer id within the network.
        start_node: Id of the node the segment leaves.
        end_node: Id of the node the segment enters.
        polyline: Geometry from the start node to the end node.
        speed_limit_mps: Free-flow speed in metres per second.
        road_class: Coarse class label (``"arterial"``, ``"local"``, ...),
            used by the generators and by heuristic baselines.
    """

    segment_id: int
    start_node: int
    end_node: int
    polyline: Polyline
    speed_limit_mps: float = 13.9
    road_class: str = "local"

    @property
    def length(self) -> float:
        """Segment length in metres."""
        return self.polyline.length

    @property
    def midpoint(self) -> Point:
        """Point halfway along the segment geometry."""
        return self.polyline.interpolate(self.polyline.length / 2.0)

    def heading_deg(self) -> float:
        """Overall bearing of the segment in degrees."""
        return self.polyline.heading_deg()

    def distance_to(self, p: Point) -> float:
        """Distance from ``p`` to the closest point of the segment."""
        _, dist, _ = self.polyline.project(p)
        return dist


@dataclass
class RoadNetwork:
    """A directed road network ``G<V, E>`` (Definition 3 of the paper).

    Build with :meth:`add_node` / :meth:`add_segment` then call
    :meth:`freeze` (or use :func:`repro.network.generate_city_network`).
    Spatial queries require a frozen network.
    """

    nodes: dict[int, Point] = field(default_factory=dict)
    segments: dict[int, RoadSegment] = field(default_factory=dict)
    _out: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _in: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _index: GridIndex | None = field(default=None, repr=False)
    _index_sample_step: float = field(default=150.0, repr=False)
    # Flattened sub-segment geometry for vectorised distance queries:
    # _sub_geometry rows are (ax, ay, dx, dy, len_sq); _sub_rows maps each
    # segment id to its contiguous row range.
    _sub_geometry: "np.ndarray | None" = field(default=None, repr=False)
    _sub_rows: dict[int, tuple[int, int]] = field(default_factory=dict, repr=False)
    _csr: CsrAdjacency | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ build
    def add_node(self, node_id: int, location: Point) -> None:
        """Register intersection ``node_id`` at ``location``."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id}")
        self.nodes[node_id] = location
        self._out.setdefault(node_id, [])
        self._in.setdefault(node_id, [])
        self._csr = None  # invalidate adjacency

    def add_segment(self, segment: RoadSegment) -> None:
        """Register a directed segment; endpoints must already exist."""
        if segment.segment_id in self.segments:
            raise ValueError(f"duplicate segment id {segment.segment_id}")
        if segment.start_node not in self.nodes or segment.end_node not in self.nodes:
            raise ValueError("segment endpoints must be added before the segment")
        self.segments[segment.segment_id] = segment
        self._out[segment.start_node].append(segment.segment_id)
        self._in[segment.end_node].append(segment.segment_id)
        self._index = None  # invalidate spatial index
        self._csr = None  # invalidate adjacency

    def freeze(self) -> "RoadNetwork":
        """Build the spatial index and geometry tables; returns ``self``."""
        index: GridIndex[int] = GridIndex(cell_size=max(self._index_sample_step, 100.0))
        rows: list[tuple[float, float, float, float, float]] = []
        self._sub_rows = {}
        for seg in self.segments.values():
            index.insert_many(seg.segment_id, self._sample_points(seg))
            start = len(rows)
            points = seg.polyline.points
            for a, b in zip(points, points[1:]):
                dx, dy = b.x - a.x, b.y - a.y
                rows.append((a.x, a.y, dx, dy, max(dx * dx + dy * dy, 1e-12)))
            self._sub_rows[seg.segment_id] = (start, len(rows))
        self._sub_geometry = np.asarray(rows, dtype=np.float64)
        self._index = index
        return self

    def _sample_points(self, seg: RoadSegment) -> list[Point]:
        """Representative points for the spatial index (ends + interior)."""
        points = [seg.polyline.start, seg.polyline.end]
        step = self._index_sample_step
        offset = step
        while offset < seg.length:
            points.append(seg.polyline.interpolate(offset))
            offset += step
        return points

    # ----------------------------------------------------------------- access
    @property
    def num_nodes(self) -> int:
        """Number of intersection nodes."""
        return len(self.nodes)

    @property
    def num_segments(self) -> int:
        """Number of directed road segments."""
        return len(self.segments)

    def segment(self, segment_id: int) -> RoadSegment:
        """The segment with id ``segment_id`` (KeyError if absent)."""
        return self.segments[segment_id]

    def out_segments(self, node_id: int) -> list[int]:
        """Ids of segments leaving ``node_id``."""
        return self._out.get(node_id, [])

    def in_segments(self, node_id: int) -> list[int]:
        """Ids of segments entering ``node_id``."""
        return self._in.get(node_id, [])

    def successors(self, segment_id: int) -> list[int]:
        """Segments reachable immediately after ``segment_id``."""
        return self.out_segments(self.segments[segment_id].end_node)

    def predecessors(self, segment_id: int) -> list[int]:
        """Segments from which ``segment_id`` is immediately reachable."""
        return self.in_segments(self.segments[segment_id].start_node)

    def csr(self) -> CsrAdjacency:
        """The (cached) CSR adjacency over nodes; built on first use.

        Requires scipy.  Vectorised routing (:class:`ShortestPathEngine`,
        :meth:`Ubodt.build`) runs on this representation instead of the
        per-node Python dictionaries.
        """
        if self._csr is None:
            from scipy.sparse import csr_matrix

            node_ids = np.fromiter(self.nodes.keys(), dtype=np.int64, count=len(self.nodes))
            index = {int(node): i for i, node in enumerate(node_ids)}
            n = node_ids.shape[0]
            m = len(self.segments)
            rows = np.empty(m, dtype=np.int64)
            cols = np.empty(m, dtype=np.int64)
            weights = np.empty(m, dtype=np.float64)
            seg_ids = np.empty(m, dtype=np.int64)
            for k, seg in enumerate(self.segments.values()):
                rows[k] = index[seg.start_node]
                cols[k] = index[seg.end_node]
                # Clamp to a tiny positive weight: csgraph drops explicit
                # zeros, which would erase degenerate zero-length segments.
                weights[k] = max(seg.length, 1e-9)
                seg_ids[k] = seg.segment_id
            # Resolve parallel edges to the shortest segment before building
            # the matrix (csr_matrix would otherwise *sum* duplicates).
            order = np.lexsort((weights, cols, rows))
            rows, cols, weights, seg_ids = (
                rows[order], cols[order], weights[order], seg_ids[order]
            )
            if m:
                keep = np.ones(m, dtype=bool)
                keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
                rows, cols, weights, seg_ids = (
                    rows[keep], cols[keep], weights[keep], seg_ids[keep]
                )
            matrix = csr_matrix((weights, (rows, cols)), shape=(n, n))
            matrix.sort_indices()
            if np.array_equal(matrix.indices, cols):
                # Deduped lexsorted COO input is already in canonical CSR
                # order, so the segment ids carry over one-to-one.
                aligned = seg_ids
            else:  # pragma: no cover - defensive against scipy reordering
                aligned = np.empty(matrix.nnz, dtype=np.int64)
                lookup = {(int(r), int(c)): int(s) for r, c, s in zip(rows, cols, seg_ids)}
                for u in range(n):
                    for pos in range(matrix.indptr[u], matrix.indptr[u + 1]):
                        aligned[pos] = lookup[(u, int(matrix.indices[pos]))]
            self._csr = CsrAdjacency(
                node_ids=node_ids, index=index, matrix=matrix, edge_segments=aligned
            )
        return self._csr

    def total_length(self) -> float:
        """Sum of all segment lengths in metres."""
        return sum(seg.length for seg in self.segments.values())

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` over all nodes."""
        if not self.nodes:
            raise ValueError("empty network")
        xs = [p.x for p in self.nodes.values()]
        ys = [p.y for p in self.nodes.values()]
        return (min(xs), min(ys), max(xs), max(ys))

    # ---------------------------------------------------------------- spatial
    def _require_index(self) -> GridIndex:
        if self._index is None:
            self.freeze()
        assert self._index is not None
        return self._index

    def distances_to_segments(self, p: Point, segment_ids: list[int]) -> np.ndarray:
        """Exact distance from ``p`` to each listed segment, vectorised."""
        self._require_index()
        assert self._sub_geometry is not None
        if not segment_ids:
            return np.empty(0)
        spans = [self._sub_rows[s] for s in segment_ids]
        row_idx = np.concatenate([np.arange(lo, hi) for lo, hi in spans])
        counts = np.array([hi - lo for lo, hi in spans])
        sub = self._sub_geometry[row_idx]
        rel_x = p.x - sub[:, 0]
        rel_y = p.y - sub[:, 1]
        t = np.clip((rel_x * sub[:, 2] + rel_y * sub[:, 3]) / sub[:, 4], 0.0, 1.0)
        dist_sq = (rel_x - t * sub[:, 2]) ** 2 + (rel_y - t * sub[:, 3]) ** 2
        offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
        return np.sqrt(np.minimum.reduceat(dist_sq, offsets))

    def segments_near(self, p: Point, radius: float) -> list[int]:
        """Segment ids whose geometry lies within ``radius`` metres of ``p``.

        The grid-index pre-filter is refined with exact, vectorised polyline
        distances; the result is sorted by true distance, nearest first.
        """
        rough = list(
            self._require_index().items_in_box(p, radius + self._index_sample_step)
        )
        if not rough:
            return []
        distances = self.distances_to_segments(p, rough)
        keep = distances <= radius
        order = np.argsort(distances[keep], kind="stable")
        kept_ids = np.asarray(rough)[keep]
        return [int(s) for s in kept_ids[order]]

    def nearest_segments(self, p: Point, count: int = 1, max_radius: float = 8000.0) -> list[int]:
        """The ``count`` nearest segments to ``p`` by exact distance.

        Expands the search radius geometrically until enough segments are
        found or ``max_radius`` is reached.
        """
        radius = max(self._index_sample_step * 2, 200.0)
        while True:
            found = self.segments_near(p, radius)
            if len(found) >= count or radius >= max_radius:
                return found[:count]
            radius = min(radius * 2.0, max_radius)
