"""The routing interface every matcher component programs against.

Both :class:`~repro.network.shortest_path.ShortestPathEngine` (online
Dijkstra over the CSR adjacency) and
:class:`~repro.network.ubodt.UbodtRouter` (precomputed table with Dijkstra
fallback) satisfy this protocol, so the trellis, the learned scorer, the
heuristic baselines, and path stitching can run on either — selected at the
CLI with ``--router {dijkstra,ubodt}``.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.network.shortest_path import Route


@runtime_checkable
class Router(Protocol):
    """Segment-to-segment shortest-path routing."""

    def route(self, from_segment: int, to_segment: int) -> Route | None:
        """Shortest route between two segments (None when unreachable)."""
        ...

    def route_length(self, from_segment: int, to_segment: int) -> float:
        """Length of :meth:`route` in metres (inf when unreachable)."""
        ...


def route_pairs(
    router: Router, pairs: Sequence[tuple[int, int]]
) -> list[Route | None]:
    """Route every ``(from, to)`` pair, batched when the router supports it.

    Routers exposing ``route_many`` (both built-in engines do) answer all
    pairs from one vectorised multi-source query; anything else degrades to
    a per-pair loop, keeping third-party routers valid protocol members.
    """
    many = getattr(router, "route_many", None)
    if many is not None:
        return many(pairs)
    return [router.route(a, b) for a, b in pairs]
