"""Road-network substrate: graph model, synthetic generators, routing."""

from repro.network.road_network import RoadNetwork, RoadSegment
from repro.network.generators import CityConfig, generate_city_network
from repro.network.shortest_path import Route, ShortestPathEngine
from repro.network.io import network_from_dict, network_to_dict, load_network, save_network
from repro.network.ubodt import Ubodt, UbodtRouter

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "CityConfig",
    "generate_city_network",
    "Route",
    "ShortestPathEngine",
    "network_from_dict",
    "network_to_dict",
    "load_network",
    "save_network",
    "Ubodt",
    "UbodtRouter",
]
