"""Road-network substrate: graph model, synthetic generators, routing."""

from repro.network.road_network import CsrAdjacency, RoadNetwork, RoadSegment
from repro.network.generators import CityConfig, generate_city_network
from repro.network.shortest_path import Route, ShortestPathEngine
from repro.network.router import Router, route_pairs
from repro.network.io import network_from_dict, network_to_dict, load_network, save_network
from repro.network.ubodt import Ubodt, UbodtRouter

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "CsrAdjacency",
    "CityConfig",
    "generate_city_network",
    "Route",
    "Router",
    "route_pairs",
    "ShortestPathEngine",
    "network_from_dict",
    "network_to_dict",
    "load_network",
    "save_network",
    "Ubodt",
    "UbodtRouter",
]
