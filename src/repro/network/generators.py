"""Synthetic city road-network generator.

The paper evaluates on the Hangzhou and Xiamen road networks, which we do
not have.  This generator produces a road network with the properties the
matching algorithms actually exercise:

* an irregular grid whose block size *grows with distance from the centre*
  (dense downtown, sparse outskirts — the urban/rural gradient behind the
  Fig. 7(a) robustness study);
* jittered intersections and curved segment geometry, so projection and
  heading features are non-trivial;
* randomly removed edges, so alternative routes differ in length and the
  shortest-path structure is not degenerate;
* a mix of fast arterial and slow local roads;
* two-way streets modelled as opposing directed segments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.geometry import Point, Polyline
from repro.network.road_network import RoadNetwork, RoadSegment
from repro.utils import ensure_rng

ARTERIAL_SPEED_MPS = 16.7  # ~60 km/h
LOCAL_SPEED_MPS = 11.1  # ~40 km/h


@dataclass(slots=True)
class CityConfig:
    """Parameters of the synthetic city.

    Attributes:
        grid_rows: Number of intersection rows.
        grid_cols: Number of intersection columns.
        block_size_m: Block edge length at the city centre, in metres.
        density_gradient: How strongly block size grows toward the edge;
            0 gives a uniform grid, 1 roughly doubles blocks at the rim.
        jitter_frac: Intersection position jitter as a fraction of the local
            block size.
        curve_frac: Midpoint bow of each segment as a fraction of its length
            (0 gives straight segments).
        removal_prob: Probability of deleting each interior street.
        arterial_every: Every ``n``-th row/column is a fast arterial.
        one_way_prob: Probability that a street is one-way instead of two-way.
    """

    grid_rows: int = 24
    grid_cols: int = 24
    block_size_m: float = 220.0
    density_gradient: float = 0.8
    jitter_frac: float = 0.25
    curve_frac: float = 0.06
    removal_prob: float = 0.12
    arterial_every: int = 5
    one_way_prob: float = 0.08

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.grid_rows < 2 or self.grid_cols < 2:
            raise ValueError("grid must be at least 2x2")
        if self.block_size_m <= 0:
            raise ValueError("block_size_m must be positive")
        if not 0.0 <= self.removal_prob < 0.5:
            raise ValueError("removal_prob must be in [0, 0.5)")
        if not 0.0 <= self.one_way_prob <= 1.0:
            raise ValueError("one_way_prob must be in [0, 1]")
        if self.arterial_every < 1:
            raise ValueError("arterial_every must be >= 1")


def _axis_positions(count: int, block: float, gradient: float) -> np.ndarray:
    """Axis coordinates with spacing growing away from the centre."""
    centre = (count - 1) / 2.0
    spacing = np.empty(max(count - 1, 0))
    for i in range(count - 1):
        # Distance of the gap's midpoint from the centre, normalised to [0,1].
        mid = (i + 0.5 - centre) / max(centre, 1e-9)
        spacing[i] = block * (1.0 + gradient * mid * mid)
    positions = np.concatenate([[0.0], np.cumsum(spacing)])
    return positions - positions.mean()


def generate_city_network(
    config: CityConfig | None = None,
    rng: int | np.random.Generator | None = 0,
) -> RoadNetwork:
    """Generate a synthetic city road network.

    The returned network is frozen (spatially indexed) and restricted to its
    largest weakly connected component, so every node participates in
    routing.
    """
    config = config or CityConfig()
    config.validate()
    rng = ensure_rng(rng)

    xs = _axis_positions(config.grid_cols, config.block_size_m, config.density_gradient)
    ys = _axis_positions(config.grid_rows, config.block_size_m, config.density_gradient)

    # Jittered intersection positions on the irregular grid.
    locations: dict[tuple[int, int], Point] = {}
    for r in range(config.grid_rows):
        for c in range(config.grid_cols):
            jitter = config.jitter_frac * config.block_size_m
            dx = float(rng.uniform(-jitter, jitter))
            dy = float(rng.uniform(-jitter, jitter))
            locations[(r, c)] = Point(float(xs[c]) + dx, float(ys[r]) + dy)

    # Candidate undirected streets along grid rows and columns.
    streets: list[tuple[tuple[int, int], tuple[int, int], str]] = []
    for r in range(config.grid_rows):
        road_class = "arterial" if r % config.arterial_every == 0 else "local"
        for c in range(config.grid_cols - 1):
            streets.append(((r, c), (r, c + 1), road_class))
    for c in range(config.grid_cols):
        road_class = "arterial" if c % config.arterial_every == 0 else "local"
        for r in range(config.grid_rows - 1):
            streets.append(((r, c), (r + 1, c), road_class))

    # Remove a fraction of local interior streets; arterials stay intact so
    # the backbone remains well connected.
    kept: list[tuple[tuple[int, int], tuple[int, int], str]] = []
    for street in streets:
        if street[2] == "local" and rng.random() < config.removal_prob:
            continue
        kept.append(street)

    # Keep only the largest weakly connected component.
    adjacency: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for a, b, _ in kept:
        adjacency.setdefault(a, []).append(b)
        adjacency.setdefault(b, []).append(a)
    component = _largest_component(adjacency)

    network = RoadNetwork()
    node_ids: dict[tuple[int, int], int] = {}
    for grid_pos in sorted(component):
        node_ids[grid_pos] = len(node_ids)
        network.add_node(node_ids[grid_pos], locations[grid_pos])

    seg_id = 0
    for a, b, road_class in kept:
        if a not in component or b not in component:
            continue
        speed = ARTERIAL_SPEED_MPS if road_class == "arterial" else LOCAL_SPEED_MPS
        one_way = rng.random() < config.one_way_prob
        directions = [(a, b)] if one_way else [(a, b), (b, a)]
        for src, dst in directions:
            polyline = _curved_polyline(locations[src], locations[dst], config.curve_frac, rng)
            network.add_segment(
                RoadSegment(
                    segment_id=seg_id,
                    start_node=node_ids[src],
                    end_node=node_ids[dst],
                    polyline=polyline,
                    speed_limit_mps=speed,
                    road_class=road_class,
                )
            )
            seg_id += 1
    return network.freeze()


def _curved_polyline(
    a: Point, b: Point, curve_frac: float, rng: np.random.Generator
) -> Polyline:
    """Polyline from ``a`` to ``b`` with a slight perpendicular bow."""
    if curve_frac <= 0.0:
        return Polyline([a, b])
    length = a.distance_to(b)
    if length == 0.0:
        return Polyline([a, b.translated(0.1, 0.1)])
    # Unit perpendicular to a->b.
    px = -(b.y - a.y) / length
    py = (b.x - a.x) / length
    bow = float(rng.uniform(-curve_frac, curve_frac)) * length
    mid = a.midpoint(b).translated(px * bow, py * bow)
    return Polyline([a, mid, b])


def _largest_component(
    adjacency: dict[tuple[int, int], list[tuple[int, int]]],
) -> set[tuple[int, int]]:
    """Largest connected component of an undirected adjacency map."""
    remaining = set(adjacency)
    best: set[tuple[int, int]] = set()
    while remaining:
        start = next(iter(remaining))
        seen = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        remaining -= seen
        if len(seen) > len(best):
            best = seen
    return best
