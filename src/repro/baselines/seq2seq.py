"""Seq2seq map matchers (DeepMM [37], TransformerMM [38], DMM [15]).

These baselines treat CTMM as translation: encode the observation token
sequence (tower ids, or discretised position cells for the GPS-designed
variants), then decode a road-segment sequence with attention.  Greedy
decoding feeds each predicted segment back in — the very mechanism behind
the error-propagation weakness the paper highlights: one wrong segment
conditions everything after it.

DMM additionally constrains decoding to the road network (each next segment
must be reachable from the previous one), which is why it is the strongest
seq2seq baseline in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineResult, TrainableMatcher
from repro.cellular.trajectory import Trajectory
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.geometry import Point
from repro.nn import GRU, Adam, Embedding, GRUCell, Linear, Module, Tensor, clip_grad_norm, no_grad
from repro.nn.functional import concat, softmax
from repro.nn.loss import cross_entropy_with_label_smoothing
from repro.nn.transformer import TransformerEncoderLayer, sinusoidal_positions
from repro.utils import derive_rng, ensure_rng


@dataclass(slots=True)
class Seq2SeqConfig:
    """Hyper-parameters of the seq2seq matchers.

    Attributes:
        embedding_dim: Token embedding width.
        hidden_dim: Encoder/decoder hidden width.
        epochs: Passes over the training set.
        learning_rate / weight_decay / label_smoothing: Adam settings.
        max_target_len: Truth paths are truncated to this length in training.
        max_decode_len: Greedy decoding stops after this many segments.
        input_mode: ``"tower"`` feeds tower-id tokens (DMM); ``"grid"``
            feeds discretised position cells (the GPS-designed variants).
        grid_cell_m: Cell size of the position grid for ``"grid"`` mode.
        constrained: Restrict each decoding step to segments reachable from
            the previous one (DMM's road-network constraint).
        encoder: ``"gru"`` or ``"transformer"``.
        beam_width: 1 decodes greedily; larger values run beam search (the
            production DMM uses beam search; it trades time for accuracy).
    """

    embedding_dim: int = 48
    hidden_dim: int = 64
    epochs: int = 3
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    label_smoothing: float = 0.1
    max_target_len: int = 48
    max_decode_len: int = 64
    input_mode: str = "tower"
    grid_cell_m: float = 600.0
    constrained: bool = False
    encoder: str = "gru"
    beam_width: int = 1


class _Seq2SeqModel(Module):
    """Encoder-decoder with dot-product attention over encoder states."""

    def __init__(
        self,
        input_vocab: int,
        output_vocab: int,
        config: Seq2SeqConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        d, h = config.embedding_dim, config.hidden_dim
        self.config = config
        self.input_embedding = Embedding(input_vocab, d, rng=rng)
        self.output_embedding = Embedding(output_vocab + 2, d, rng=rng)  # +BOS +EOS
        self.bos_token = output_vocab
        self.eos_token = output_vocab + 1
        if config.encoder == "transformer":
            self.encoder_proj = Linear(d, h, rng=rng)
            self.encoder_layer = TransformerEncoderLayer(h, rng=rng)
            self.encoder_rnn = None
        else:
            self.encoder_rnn = GRU(d, h, rng=rng)
            self.encoder_proj = None
            self.encoder_layer = None
        self.decoder_cell = GRUCell(d, h, rng=rng)
        self.output_proj = Linear(2 * h, output_vocab + 2, rng=rng)

    def encode(self, tokens: np.ndarray) -> tuple[Tensor, Tensor]:
        """Encoder states ``(T, h)`` and the initial decoder hidden ``(1, h)``."""
        embedded = self.input_embedding(tokens)
        if self.encoder_rnn is not None:
            states, final = self.encoder_rnn(embedded)
            return states, final
        projected = self.encoder_proj(embedded)
        positions = Tensor(sinusoidal_positions(len(tokens), projected.shape[-1]))
        states = self.encoder_layer(projected + positions)
        return states, states.mean(axis=0, keepdims=True)

    def _attend(self, hidden: Tensor, encoder_states: Tensor) -> Tensor:
        """Dot-product attention context for decoder state(s)."""
        scores = hidden @ encoder_states.transpose()  # (L, T)
        return softmax(scores, axis=-1) @ encoder_states

    def teacher_forced_logits(self, tokens: np.ndarray, target: np.ndarray) -> Tensor:
        """Logits for each target position under teacher forcing.

        The decoder consumes ``[BOS, target[:-1]]`` and the attention runs
        batched over all steps, so each training sample is one graph.
        """
        encoder_states, hidden = self.encode(tokens)
        inputs = np.concatenate([[self.bos_token], target[:-1]])
        embedded = self.output_embedding(inputs)
        hiddens = []
        h = hidden
        for t in range(len(inputs)):
            h = self.decoder_cell(embedded[t : t + 1], h)
            hiddens.append(h.reshape(h.shape[-1]))
        from repro.nn.functional import stack

        decoder_states = stack(hiddens, axis=0)  # (L, h)
        context = self._attend(decoder_states, encoder_states)
        return self.output_proj(concat([decoder_states, context], axis=-1))

    def _step_logits(self, previous: int, h: Tensor, encoder_states: Tensor):
        """One decoder step: returns ``(log_probs, new_hidden)``."""
        embedded = self.output_embedding(np.array([previous]))
        h = self.decoder_cell(embedded, h)
        context = self._attend(h, encoder_states)
        logits = self.output_proj(concat([h, context], axis=-1)).numpy()[0]
        shifted = logits - logits.max()
        log_probs = shifted - np.log(np.exp(shifted).sum())
        return log_probs, h

    def _masked(self, log_probs: np.ndarray, allowed) -> np.ndarray:
        if allowed is None:
            return log_probs
        blocked = np.full_like(log_probs, -1e9)
        blocked[list(allowed)] = log_probs[list(allowed)]
        return blocked

    def greedy_decode(
        self,
        tokens: np.ndarray,
        max_len: int,
        allowed_next=None,
    ) -> list[int]:
        """Greedy decoding; ``allowed_next(prev)`` masks the vocabulary."""
        with no_grad():
            encoder_states, h = self.encode(tokens)
            previous = self.bos_token
            output: list[int] = []
            for _ in range(max_len):
                log_probs, h = self._step_logits(previous, h, encoder_states)
                if allowed_next is not None:
                    log_probs = self._masked(
                        log_probs, allowed_next(output[-1] if output else None)
                    )
                token = int(np.argmax(log_probs))
                if token == self.eos_token:
                    break
                if token == self.bos_token:
                    continue
                output.append(token)
                previous = token
            return output

    def beam_decode(
        self,
        tokens: np.ndarray,
        max_len: int,
        beam_width: int,
        allowed_next=None,
    ) -> list[int]:
        """Length-normalised beam search over output sequences."""
        if beam_width <= 1:
            return self.greedy_decode(tokens, max_len, allowed_next)
        with no_grad():
            encoder_states, h0 = self.encode(tokens)
            # Each hypothesis: (sum_log_prob, output_list, hidden, finished)
            beams = [(0.0, [], h0, False)]
            for _ in range(max_len):
                expanded = []
                for score, output, h, finished in beams:
                    if finished:
                        expanded.append((score, output, h, True))
                        continue
                    previous = output[-1] if output else self.bos_token
                    log_probs, new_h = self._step_logits(previous, h, encoder_states)
                    if allowed_next is not None:
                        log_probs = self._masked(
                            log_probs, allowed_next(output[-1] if output else None)
                        )
                    top = np.argsort(-log_probs)[: beam_width + 1]
                    for token in top:
                        token = int(token)
                        if token == self.bos_token:
                            continue
                        if token == self.eos_token:
                            expanded.append((score + log_probs[token], output, new_h, True))
                        else:
                            expanded.append(
                                (score + log_probs[token], output + [token], new_h, False)
                            )
                # Length-normalised pruning keeps long/short hypotheses comparable.
                expanded.sort(
                    key=lambda b: b[0] / max(1, len(b[1]) + 1), reverse=True
                )
                beams = expanded[:beam_width]
                if all(b[3] for b in beams):
                    break
            best = max(beams, key=lambda b: b[0] / max(1, len(b[1]) + 1))
            return best[1]


class Seq2SeqMatcher(TrainableMatcher):
    """Base class wiring tokenisation, training, and decoding."""

    name = "Seq2Seq"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: Seq2SeqConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.network = dataset.network
        self.towers = dataset.towers
        self.engine = dataset.engine
        self.config = config or Seq2SeqConfig()
        self._rng = ensure_rng(rng)
        self._segment_ids = sorted(self.network.segments)
        self._segment_index = {s: i for i, s in enumerate(self._segment_ids)}
        self._tower_ids = sorted(self.towers.towers)
        self._tower_index = {t: i for i, t in enumerate(self._tower_ids)}
        min_x, min_y, max_x, max_y = self.network.bounding_box()
        self._origin = Point(min_x - 2000.0, min_y - 2000.0)
        self._grid_cols = int((max_x - min_x + 4000.0) / self.config.grid_cell_m) + 1
        self._grid_rows = int((max_y - min_y + 4000.0) / self.config.grid_cell_m) + 1
        input_vocab = (
            len(self._tower_ids)
            if self.config.input_mode == "tower"
            else self._grid_rows * self._grid_cols
        )
        self.model = _Seq2SeqModel(
            input_vocab,
            len(self._segment_ids),
            self.config,
            derive_rng(self._rng, "model"),
        )
        # successor table in model-vocabulary space, for constrained decoding
        self._successors: dict[int, list[int]] | None = None
        if self.config.constrained:
            self._successors = {}
            for seg_id in self._segment_ids:
                idx = self._segment_index[seg_id]
                nexts = {self._segment_index[s] for s in self.network.successors(seg_id)}
                nexts.add(idx)
                self._successors[idx] = sorted(nexts)

    # ------------------------------------------------------------ tokenisation
    def _tokens(self, trajectory: Trajectory) -> np.ndarray:
        if self.config.input_mode == "tower":
            tokens = []
            for p in trajectory.points:
                if p.tower_id is not None and p.tower_id in self._tower_index:
                    tokens.append(self._tower_index[p.tower_id])
                else:
                    nearest = self.towers.nearest(p.position, count=1)[0]
                    tokens.append(self._tower_index[nearest])
            return np.asarray(tokens)
        cells = []
        for p in trajectory.points:
            col = int((p.position.x - self._origin.x) / self.config.grid_cell_m)
            row = int((p.position.y - self._origin.y) / self.config.grid_cell_m)
            col = min(max(col, 0), self._grid_cols - 1)
            row = min(max(row, 0), self._grid_rows - 1)
            cells.append(row * self._grid_cols + col)
        return np.asarray(cells)

    # --------------------------------------------------------------- training
    def fit(self, samples: list[MatchingSample]) -> "Seq2SeqMatcher":
        """Teacher-forced training on labelled samples."""
        cfg = self.config
        usable = [
            s for s in samples if len(s.cellular) >= 2 and len(s.truth_path) >= 2
        ]
        if not usable:
            raise ValueError("no usable training samples")
        optimizer = Adam(
            self.model.parameters(), lr=cfg.learning_rate, weight_decay=cfg.weight_decay
        )
        order = np.arange(len(usable))
        self.losses: list[float] = []
        for _ in range(cfg.epochs):
            self._rng.shuffle(order)
            for i in order:
                sample = usable[int(i)]
                tokens = self._tokens(sample.cellular)
                target = [
                    self._segment_index[s]
                    for s in sample.truth_path[: cfg.max_target_len]
                ]
                target.append(self.model.eos_token)
                logits = self.model.teacher_forced_logits(tokens, np.asarray(target))
                loss = cross_entropy_with_label_smoothing(
                    logits, np.asarray(target), cfg.label_smoothing
                )
                optimizer.zero_grad()
                loss.backward()
                clip_grad_norm(self.model.parameters(), max_norm=5.0)
                optimizer.step()
                self.losses.append(loss.item())
        self.model.eval()
        return self

    # --------------------------------------------------------------- matching
    def _make_allowed_next(self, trajectory: Trajectory):
        if self._successors is None:
            return None
        # DMM restricts the opening emission to the first point's vicinity
        # and every later emission to road-network successors.
        first = trajectory.points[0]
        nearby = self.network.segments_near(first.position, 2500.0)
        if not nearby:
            nearby = self.network.nearest_segments(first.position, count=30)
        first_allowed = [self._segment_index[s] for s in nearby]
        successors = self._successors
        eos = self.model.eos_token

        def allowed_next(previous: int | None):
            if previous is None:
                return first_allowed
            return [*successors[previous], eos]

        return allowed_next

    def match(self, trajectory: Trajectory) -> BaselineResult:
        """Seq2seq decoding of the matched path (greedy or beam search)."""
        tokens = self._tokens(trajectory)
        decode_len = min(self.config.max_decode_len, 4 * max(len(tokens), 2))
        decoded = self.model.beam_decode(
            tokens,
            decode_len,
            self.config.beam_width,
            allowed_next=self._make_allowed_next(trajectory),
        )
        path = [self._segment_ids[i] for i in decoded]
        deduped: list[int] = []
        for seg in path:
            if not deduped or deduped[-1] != seg:
                deduped.append(seg)
        return BaselineResult(path=deduped, candidate_sets=None, matched_sequence=[])
