"""The shared heuristic-HMM machinery behind the classical baselines.

Every classical method in Table II is an HMM with Gaussian observation
probability on point–road distance (Eq. 2) and an exponential transition
probability on ``|straight-line - routed|`` (Eq. 3), differing in the extra
heuristics layered on top: speed fusion (IFM), direction (SnapNet), voting
(IVMM), topological constraints (THMM), candidate tracking (MCM), and
calibration (CLSTERS).  :class:`HeuristicHmmMatcher` implements the common
core with hooks the subclasses override; it reuses the same
:class:`~repro.core.trellis.Trellis` as LHMM, which is also how the STM+S
ablation (shortcuts bolted onto STM) is realised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineResult
from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.core.candidates import spatial_candidate_pool
from repro.core.trellis import TRELLIS_IMPLS, UNREACHABLE_SCORE, make_trellis
from repro.datasets.dataset import MatchingDataset
from repro.network.router import Router, route_pairs
from repro.network.shortest_path import stitch_segments


@dataclass(slots=True)
class HeuristicHmmConfig:
    """Knobs of the classical HMM core.

    ``observation_sigma_m`` encodes the method's positioning-error
    assumption: GPS-era methods (STM, IVMM, ...) were designed around tens
    of metres and keep a tight sigma even on cellular data, which is
    exactly why they underperform there; CTMM-era methods widen it.

    Attributes:
        candidate_k: Candidates per point (the paper gives baselines k=45
            on its networks; scaled here like LHMM's k).
        candidate_radius_m: Spatial search radius per point.
        observation_sigma_m: Gaussian sigma of Eq. 2.
        transition_beta_m: Exponential scale of Eq. 3.
        max_detour_factor: Prune transitions whose route exceeds this
            multiple of the straight-line distance plus slack.
        shortcut_k: Shortcut count (0 = plain Viterbi; STM+S sets 1).
        trellis_impl: Forward-pass backend (``"vectorized"`` or
            ``"reference"``); both decode identical sequences.
    """

    candidate_k: int = 30
    candidate_radius_m: float = 2500.0
    observation_sigma_m: float = 450.0
    transition_beta_m: float = 400.0
    max_detour_factor: float = 6.0
    shortcut_k: int = 0
    trellis_impl: str = "vectorized"

    def __post_init__(self) -> None:
        if self.trellis_impl not in TRELLIS_IMPLS:
            raise ValueError(
                f"trellis_impl must be one of {list(TRELLIS_IMPLS)}, "
                f"got {self.trellis_impl!r}"
            )


class _HeuristicScorer:
    """Trellis scorer delegating to a matcher's probability hooks.

    Also implements the batched :class:`~repro.core.trellis.BatchTrellisScorer`
    extension by delegating to the matcher's ``*_batch`` hooks, which keep
    per-pair arithmetic in the scalar hooks (so subclasses that override
    only the scalar probabilities stay bit-exact under either trellis).
    """

    def __init__(self, matcher: "HeuristicHmmMatcher", points: list[TrajectoryPoint]) -> None:
        self._matcher = matcher
        self._points = points

    def observation(self, index: int, segment_id: int) -> float:
        return self._matcher.observation_probability(self._points, index, segment_id)

    def transition(self, index: int, prev_segment_id: int, segment_id: int) -> float:
        return self._matcher.transition_probability(
            self._points, index, prev_segment_id, segment_id
        )

    def observation_batch(self, index: int, segment_ids: list[int]) -> np.ndarray:
        return self._matcher.observation_probability_batch(
            self._points, index, segment_ids
        )

    def transition_batch(
        self, index: int, prev_segment_ids: list[int], segment_ids: list[int]
    ) -> np.ndarray:
        return self._matcher.transition_probability_batch(
            self._points, index, prev_segment_ids, segment_ids
        )


class HeuristicHmmMatcher:
    """Classical HMM map matcher with overridable probability hooks."""

    name = "HeuristicHMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        router: Router | None = None,
    ) -> None:
        self.network = dataset.network
        self.engine: Router = router if router is not None else dataset.engine
        self.config = config or HeuristicHmmConfig()

    # ------------------------------------------------------------- candidates
    def candidate_sets(self, trajectory: Trajectory) -> list[list[int]]:
        """Distance-ordered top-k candidates per point."""
        cfg = self.config
        return [
            spatial_candidate_pool(self.network, p, cfg.candidate_radius_m, cfg.candidate_k)
            for p in trajectory.points
        ]

    # ------------------------------------------------------------ probability
    def observation_probability(
        self, points: list[TrajectoryPoint], index: int, segment_id: int
    ) -> float:
        """Gaussian on projection distance (Eq. 2)."""
        dist = self.network.segments[segment_id].distance_to(points[index].position)
        return math.exp(-0.5 * (dist / self.config.observation_sigma_m) ** 2)

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        """Exponential on the straight-vs-routed length gap (Eq. 3)."""
        route_length = self.engine.route_length(prev_segment, segment)
        if math.isinf(route_length):
            return UNREACHABLE_SCORE
        straight = points[index - 1].position.distance_to(points[index].position)
        if route_length > self.config.max_detour_factor * straight + 1500.0:
            return UNREACHABLE_SCORE
        return math.exp(-abs(straight - route_length) / self.config.transition_beta_m)

    def observation_probability_batch(
        self, points: list[TrajectoryPoint], index: int, segment_ids: list[int]
    ) -> np.ndarray:
        """Batched :meth:`observation_probability` (same floats, one array)."""
        return np.array(
            [self.observation_probability(points, index, seg) for seg in segment_ids],
            dtype=np.float64,
        )

    def transition_probability_batch(
        self,
        points: list[TrajectoryPoint],
        index: int,
        prev_segments: list[int],
        segments: list[int],
    ) -> np.ndarray:
        """Batched ``P_T`` matrix for one trellis step.

        The fast path fetches every pair's route length from one
        ``route_length_matrix`` call (a single multi-source Dijkstra /
        table probe, *without* materialising per-pair ``Route`` objects —
        Eq. 3 only needs lengths) and then replicates the scalar hook's
        arithmetic element by element, so the floats are bit-identical to
        :meth:`transition_probability`.

        Subclasses that override the scalar hook automatically fall back
        to one cache-warming :func:`~repro.network.router.route_pairs`
        call followed by their own per-pair scalar arithmetic — batched
        fetching, inherited exactness.  Routers without a
        ``route_length_matrix`` take the same fallback.
        """
        base_transition = HeuristicHmmMatcher.transition_probability
        length_matrix = getattr(self.engine, "route_length_matrix", None)
        if type(self).transition_probability is not base_transition or length_matrix is None:
            pairs = [(a, b) for a in prev_segments for b in segments]
            route_pairs(self.engine, pairs)
            out = np.empty((len(prev_segments), len(segments)), dtype=np.float64)
            for j, prev in enumerate(prev_segments):
                for k, seg in enumerate(segments):
                    out[j, k] = self.transition_probability(points, index, prev, seg)
            return out
        lengths = length_matrix(prev_segments, segments)
        straight = points[index - 1].position.distance_to(points[index].position)
        cutoff = self.config.max_detour_factor * straight + 1500.0
        beta = self.config.transition_beta_m
        out = np.empty((len(prev_segments), len(segments)), dtype=np.float64)
        for j in range(len(prev_segments)):
            row = lengths[j]
            for k in range(len(segments)):
                route_length = row[k]
                if math.isinf(route_length) or route_length > cutoff:
                    out[j, k] = UNREACHABLE_SCORE
                else:
                    out[j, k] = math.exp(-abs(straight - route_length) / beta)
        return out

    # ------------------------------------------------------------- interface
    def preprocess(self, trajectory: Trajectory) -> Trajectory:
        """Hook for method-specific trajectory pre-processing."""
        return trajectory

    def match(self, trajectory: Trajectory) -> BaselineResult:
        """Run the HMM end to end on one cellular trajectory."""
        trajectory = self.preprocess(trajectory)
        if len(trajectory) == 0:
            raise ValueError("cannot match an empty trajectory")
        candidate_sets = self.candidate_sets(trajectory)
        points = list(trajectory.points)
        if len(points) == 1:
            best = candidate_sets[0][0]
            return BaselineResult(path=[best], candidate_sets=candidate_sets,
                                  matched_sequence=[best])
        scorer = _HeuristicScorer(self, points)
        trellis = make_trellis(
            candidate_sets,
            scorer,
            self.network,
            self.engine,
            points,
            impl=self.config.trellis_impl,
        )
        sequence = trellis.run(shortcut_k=self.config.shortcut_k)
        path = stitch_segments(sequence, self.engine)
        return BaselineResult(
            path=path,
            # Shortcut-inserted candidates count toward the hitting ratio,
            # which is how the paper credits STM+S over plain STM.
            candidate_sets=[list(c) for c in trellis.candidate_sets],
            matched_sequence=sequence,
        )
