"""Common baseline interfaces."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellular.trajectory import Trajectory
from repro.datasets.dataset import MatchingSample


@dataclass(slots=True)
class BaselineResult:
    """Matching output shared by all baselines.

    ``candidate_sets`` is populated by HMM-style methods (it feeds the
    hitting-ratio metric) and left empty by seq2seq methods, mirroring the
    paper's "HR only suits HMM-based methods" remark.
    """

    path: list[int]
    candidate_sets: list[list[int]] | None = None
    matched_sequence: list[int] = field(default_factory=list)


class TrainableMatcher:
    """Marker base class for matchers that need a training pass.

    ``fit`` consumes labelled samples; :func:`repro.baselines.make_baseline`
    calls it automatically.
    """

    def fit(self, samples: list[MatchingSample]) -> "TrainableMatcher":
        """Train on historical samples; returns ``self``."""
        raise NotImplementedError

    def match(self, trajectory: Trajectory) -> BaselineResult:
        """Match one cellular trajectory."""
        raise NotImplementedError
