"""DeepMM (Feng et al. [37]) — LSTM-style seq2seq with attention.

Designed for sparse, noisy *GPS* trajectories: the input is a sequence of
discretised position cells (not tower identities), encoded by a recurrent
network and decoded into road segments with attention.  Applied to cellular
data, the position cells inherit the tower offset, which is where its
accuracy gap against CTMM-native methods comes from.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.seq2seq import Seq2SeqConfig, Seq2SeqMatcher
from repro.datasets.dataset import MatchingDataset


class DeepMM(Seq2SeqMatcher):
    """GRU seq2seq over position-grid tokens, unconstrained decoding."""

    name = "DeepMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: Seq2SeqConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        config = config or Seq2SeqConfig(
            input_mode="grid", constrained=False, encoder="gru"
        )
        super().__init__(dataset, config, rng)
