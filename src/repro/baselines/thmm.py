"""THMM (Chen et al. [42]) — tailored HMM for cellular map matching.

THMM constrains the HMM path-finding with geometric and topological
characteristics of the road network: a reachability window on transitions
(topology), a heading-agreement factor between the two candidate roads and
the trajectory's movement (geometry), and a probabilistic observation that
mixes distance with road class (arterials carry more cellular traffic).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.trajectory import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset
from repro.geometry import bearing_deg, heading_difference_deg


class THMM(HeuristicHmmMatcher):
    """Tailored HMM with geometric/topological constraints."""

    name = "THMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        heading_scale_deg: float = 100.0,
        arterial_bonus: float = 1.25,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=550.0,
            transition_beta_m=450.0,
            max_detour_factor=4.0,  # tighter topological window
        )
        super().__init__(dataset, config, rng)
        self.heading_scale_deg = heading_scale_deg
        self.arterial_bonus = arterial_bonus

    def observation_probability(
        self, points: list[TrajectoryPoint], index: int, segment_id: int
    ) -> float:
        base = super().observation_probability(points, index, segment_id)
        if self.network.segments[segment_id].road_class == "arterial":
            base *= self.arterial_bonus
        return min(base, 1.0)

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        base = super().transition_probability(points, index, prev_segment, segment)
        if base <= UNREACHABLE_SCORE:
            return base
        a = points[index - 1].position
        b = points[index].position
        if a.distance_to(b) <= 1.0:
            return base
        move_heading = bearing_deg(a, b)
        prev_dev = heading_difference_deg(
            move_heading, self.network.segments[prev_segment].heading_deg()
        )
        next_dev = heading_difference_deg(
            move_heading, self.network.segments[segment].heading_deg()
        )
        geometric = math.exp(-(prev_dev + next_dev) / (2.0 * self.heading_scale_deg))
        return base * geometric
