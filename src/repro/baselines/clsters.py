"""CLSTERS (Wu et al. [41]) — trajectory calibration before matching.

CLSTERS reduces positioning error through a series of calibration steps
that pull each sample toward the locally consistent motion of its
neighbours; the calibrated trajectory then goes through a classical HMM.
We realise the calibration as an iterated, wide-window alpha-trimmed mean
plus a speed-outlier pass — the strongest of the standard smoothers.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.filters import alpha_trimmed_mean_filter, speed_filter
from repro.cellular.trajectory import Trajectory
from repro.datasets.dataset import MatchingDataset


class CLSTERS(HeuristicHmmMatcher):
    """Calibration-first cellular map matcher."""

    name = "CLSTERS"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        calibration_rounds: int = 2,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=500.0, transition_beta_m=450.0
        )
        super().__init__(dataset, config, rng)
        self.calibration_rounds = calibration_rounds

    def preprocess(self, trajectory: Trajectory) -> Trajectory:
        calibrated = speed_filter(trajectory)
        for _ in range(self.calibration_rounds):
            if len(calibrated) < 5:
                break
            calibrated = alpha_trimmed_mean_filter(calibrated, window=5, alpha=1)
        return calibrated if len(calibrated) >= 2 else trajectory
