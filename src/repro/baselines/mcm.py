"""MCM (Li et al. [34]) — multiple-candidate tracking via common
sub-sequences.

MCM evaluates how well a potential route *as a whole* shadows the observed
trajectory, instead of scoring only endpoint gaps: the transition factor
rewards routes whose segments stay close to the straight-line corridor
between the two points (a continuous analogue of the common-sub-sequence
score between trajectory and route).
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.trajectory import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset
from repro.geometry import point_to_segment_distance


class MCM(HeuristicHmmMatcher):
    """Common-sub-sequence-flavoured candidate tracking."""

    name = "MCM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        corridor_scale_m: float = 600.0,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=350.0, transition_beta_m=400.0
        )
        super().__init__(dataset, config, rng)
        self.corridor_scale_m = corridor_scale_m

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        base = super().transition_probability(points, index, prev_segment, segment)
        if base <= UNREACHABLE_SCORE:
            return base
        route = self.engine.route(prev_segment, segment)
        assert route is not None
        a = points[index - 1].position
        b = points[index].position
        if a.distance_to(b) < 1.0 or not route.segments:
            return base
        # Mean distance of route segment midpoints to the corridor a-b.
        total = 0.0
        for seg_id in route.segments:
            mid = self.network.segments[seg_id].midpoint
            total += point_to_segment_distance(mid, a, b)
        corridor = total / len(route.segments)
        return base * math.exp(-corridor / self.corridor_scale_m)
