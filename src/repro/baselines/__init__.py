"""Baseline map matchers (§V-A4).

Methods designed for GPS trajectories: STM, IVMM, IFM, DeepMM, MCM,
TransformerMM.  Methods designed for CTMM: CLSTERS, SNet (SnapNet), THMM,
DMM.  All run on the same cellular datasets; :func:`make_baseline` builds
any of them by the name used in Table II.

Heuristic baselines differ in which explicit features they use and in their
error-scale assumptions — GPS-era methods trust small positioning errors
(tight observation sigma), CTMM-era methods assume kilometre-scale error.
Learning baselines (DeepMM, TransformerMM, DMM) are seq2seq models trained
on the same split LHMM trains on.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, TrainableMatcher
from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.baselines.stm import STMatching
from repro.baselines.ivmm import IVMM
from repro.baselines.ifm import IFMatching
from repro.baselines.mcm import MCM
from repro.baselines.snapnet import SnapNet
from repro.baselines.thmm import THMM
from repro.baselines.clsters import CLSTERS
from repro.baselines.seq2seq import Seq2SeqConfig
from repro.baselines.deepmm import DeepMM
from repro.baselines.dmm import DMM
from repro.baselines.transformer_mm import TransformerMM
from repro.datasets.dataset import MatchingDataset

GPS_BASELINES = ("STM", "IVMM", "IFM", "DeepMM", "MCM", "TransformerMM")
CTMM_BASELINES = ("CLSTERS", "SNet", "THMM", "DMM")
ALL_BASELINES = GPS_BASELINES + CTMM_BASELINES

_REGISTRY = {
    "STM": STMatching,
    "IVMM": IVMM,
    "IFM": IFMatching,
    "MCM": MCM,
    "SNet": SnapNet,
    "THMM": THMM,
    "CLSTERS": CLSTERS,
    "DeepMM": DeepMM,
    "DMM": DMM,
    "TransformerMM": TransformerMM,
}


def make_baseline(
    name: str,
    dataset: MatchingDataset,
    rng: int | np.random.Generator | None = 0,
    **kwargs,
):
    """Build (and, for learning methods, train) the baseline called ``name``.

    Heuristic matchers are ready immediately; seq2seq matchers are fitted
    on ``dataset.train`` before being returned.
    """
    if name not in _REGISTRY:
        raise ValueError(f"unknown baseline {name!r}; choose from {sorted(_REGISTRY)}")
    matcher = _REGISTRY[name](dataset, rng=rng, **kwargs)
    if isinstance(matcher, TrainableMatcher):
        matcher.fit(dataset.train)
    return matcher


__all__ = [
    "BaselineResult",
    "TrainableMatcher",
    "HeuristicHmmConfig",
    "HeuristicHmmMatcher",
    "STMatching",
    "IVMM",
    "IFMatching",
    "MCM",
    "SnapNet",
    "THMM",
    "CLSTERS",
    "Seq2SeqConfig",
    "DeepMM",
    "DMM",
    "TransformerMM",
    "make_baseline",
    "GPS_BASELINES",
    "CTMM_BASELINES",
    "ALL_BASELINES",
]
