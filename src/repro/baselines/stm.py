"""ST-Matching (Lou et al. [8]) — spatial + temporal analysis.

STM scores a transition by spatial analysis (observation Gaussian times the
*transmission probability* — the ratio of straight-line to routed distance)
and temporal analysis (cosine similarity between the speeds the route
implies and the speed limits along it).  Designed for low-sampling-rate GPS
data, it keeps a GPS-scale observation sigma, which is the root of its weak
CTMM showing in Table II.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.trajectory import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset


class STMatching(HeuristicHmmMatcher):
    """ST-Matching with GPS-era error assumptions."""

    name = "STM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        with_shortcuts: bool = False,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=250.0,
            transition_beta_m=300.0,
            shortcut_k=1 if with_shortcuts else 0,
        )
        super().__init__(dataset, config, rng)
        if with_shortcuts:
            self.name = "STM+S"

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        route = self.engine.route(prev_segment, segment)
        if route is None:
            return UNREACHABLE_SCORE
        straight = points[index - 1].position.distance_to(points[index].position)
        if route.length > self.config.max_detour_factor * straight + 1500.0:
            return UNREACHABLE_SCORE
        # Spatial analysis: transmission probability V = d_straight / d_route.
        transmission = straight / route.length if route.length > 0 else 1.0
        transmission = min(1.0, transmission)
        # Temporal analysis: implied speed against the route's speed limits.
        dt = points[index].timestamp - points[index - 1].timestamp
        temporal = 1.0
        if dt > 0 and route.length > 0:
            implied = route.length / dt
            limits = [self.network.segments[s].speed_limit_mps for s in route.segments]
            mean_limit = sum(limits) / len(limits)
            # Cosine-style similarity between implied speed and the limit.
            temporal = (implied * mean_limit) / max(
                implied * implied, mean_limit * mean_limit
            )
        gap = math.exp(-abs(straight - route.length) / self.config.transition_beta_m)
        return gap * transmission * max(temporal, 0.05)
