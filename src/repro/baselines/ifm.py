"""IF-Matching (Hu et al. [32]) — information fusion with moving speed.

IFM fuses the surrounding moving speed into the transition evaluation: a
transition is plausible only when the speed the route implies is compatible
with the speed limits of the roads it traverses, which disambiguates many
parallel-road cases.  Like STM it carries GPS-era error assumptions.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.trajectory import TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset


class IFMatching(HeuristicHmmMatcher):
    """IF-Matching: speed-consistency-weighted transitions."""

    name = "IFM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=300.0, transition_beta_m=350.0
        )
        super().__init__(dataset, config, rng)

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        base = super().transition_probability(points, index, prev_segment, segment)
        if base <= UNREACHABLE_SCORE:
            return base
        route = self.engine.route(prev_segment, segment)
        assert route is not None
        dt = points[index].timestamp - points[index - 1].timestamp
        if dt <= 0 or route.length == 0:
            return base
        implied = route.length / dt
        limits = [self.network.segments[s].speed_limit_mps for s in route.segments]
        ceiling = max(limits) * 1.4  # tolerate mild speeding
        if implied > ceiling:
            # Physically implausible transition: heavily damp rather than
            # forbid (the data is noisy).
            return base * math.exp(-(implied - ceiling) / 5.0)
        # Mild preference for routes driven near their design speed.
        mean_limit = sum(limits) / len(limits)
        ratio = min(implied, mean_limit) / max(implied, mean_limit, 1e-9)
        return base * (0.5 + 0.5 * ratio)
