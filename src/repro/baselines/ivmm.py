"""IVMM (Yuan et al. [10]) — interactive-voting-based map matching.

IVMM models the mutual influence between points: instead of one global
Viterbi pass, every point runs its own pass in which all observation
probabilities are re-weighted by a distance-decay kernel centred on that
point, and the candidate each pass selects for each position receives a
vote.  The final sequence takes the most-voted candidate per position,
letting confident neighbourhoods outvote noisy ones.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import BaselineResult
from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset
from repro.network.shortest_path import stitch_segments


class IVMM(HeuristicHmmMatcher):
    """Interactive voting map matcher."""

    name = "IVMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        influence_scale_m: float = 1500.0,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=300.0, transition_beta_m=350.0
        )
        super().__init__(dataset, config, rng)
        self.influence_scale_m = influence_scale_m

    def _weighted_viterbi(
        self,
        points: list[TrajectoryPoint],
        candidate_sets: list[list[int]],
        weights: list[float],
    ) -> list[int]:
        """One Viterbi pass with per-point observation weights."""
        scores = [
            weights[0] * self.observation_probability(points, 0, c)
            for c in candidate_sets[0]
        ]
        back: list[list[int]] = []
        for i in range(1, len(points)):
            new_scores: list[float] = []
            pointers: list[int] = []
            for seg in candidate_sets[i]:
                obs = weights[i] * self.observation_probability(points, i, seg)
                best = -math.inf
                best_j = 0
                for j, prev in enumerate(candidate_sets[i - 1]):
                    trans = self.transition_probability(points, i, prev, seg)
                    w = trans * obs if trans > UNREACHABLE_SCORE else UNREACHABLE_SCORE
                    value = scores[j] + w
                    if value > best:
                        best = value
                        best_j = j
                new_scores.append(best)
                pointers.append(best_j)
            scores = new_scores
            back.append(pointers)
        state = max(range(len(scores)), key=lambda j: scores[j])
        sequence = [state]
        for pointers in reversed(back):
            sequence.append(pointers[sequence[-1]])
        sequence.reverse()
        return [candidate_sets[i][s] for i, s in enumerate(sequence)]

    def match(self, trajectory: Trajectory) -> BaselineResult:
        trajectory = self.preprocess(trajectory)
        points = list(trajectory.points)
        candidate_sets = self.candidate_sets(trajectory)
        if len(points) == 1:
            best = candidate_sets[0][0]
            return BaselineResult(path=[best], candidate_sets=candidate_sets,
                                  matched_sequence=[best])
        votes: list[dict[int, int]] = [dict() for _ in points]
        for centre in range(len(points)):
            weights = [
                math.exp(
                    -points[centre].position.distance_to(p.position)
                    / self.influence_scale_m
                )
                for p in points
            ]
            chosen = self._weighted_viterbi(points, candidate_sets, weights)
            for i, seg in enumerate(chosen):
                votes[i][seg] = votes[i].get(seg, 0) + 1
        sequence = [max(vote, key=vote.get) for vote in votes]  # type: ignore[arg-type]
        path = stitch_segments(sequence, self.engine)
        return BaselineResult(
            path=path, candidate_sets=candidate_sets, matched_sequence=sequence
        )
