"""TransformerMM (Jin et al. [38]) — transformer encoder seq2seq.

Replaces the recurrent encoder of DeepMM with a transformer encoder over
the same discretised position tokens; decoding remains autoregressive with
attention.  Stronger encoding, same GPS-era input representation, same
exposure to error propagation.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.seq2seq import Seq2SeqConfig, Seq2SeqMatcher
from repro.datasets.dataset import MatchingDataset


class TransformerMM(Seq2SeqMatcher):
    """Transformer-encoded seq2seq over position-grid tokens."""

    name = "TransformerMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: Seq2SeqConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        config = config or Seq2SeqConfig(
            input_mode="grid", constrained=False, encoder="transformer"
        )
        super().__init__(dataset, config, rng)
