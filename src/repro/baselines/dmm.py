"""DMM (Shen et al. [15]) — seq2seq map matching for cellular data.

The state-of-the-art learning baseline: tower-identity tokens feed a
recurrent encoder, and the decoder is constrained to the road network —
each emitted segment must be reachable from the previous one (mirroring
DMM's feasibility-aware decoding that its RL component enforces).  This is
the strongest baseline in Table II, but still inherits the seq2seq error
propagation that motivates LHMM.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.seq2seq import Seq2SeqConfig, Seq2SeqMatcher
from repro.datasets.dataset import MatchingDataset


class DMM(Seq2SeqMatcher):
    """Tower-token seq2seq with road-network-constrained decoding."""

    name = "DMM"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: Seq2SeqConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        config = config or Seq2SeqConfig(
            input_mode="tower", constrained=True, encoder="gru", epochs=4
        )
        super().__init__(dataset, config, rng)
