"""SnapNet (Mohamed et al. [12]) — filters plus digital-map heuristics.

SnapNet pipelines aggressive noise filtering (speed, alpha-trimmed mean,
direction) before an HMM whose transition adds two map hints: a moving
direction heuristic (the route should head the way the trajectory moves)
and a fewer-turns heuristic.  It is designed for cellular-scale errors, so
its observation sigma is wide.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.hmm_heuristic import HeuristicHmmConfig, HeuristicHmmMatcher
from repro.cellular.filters import apply_standard_filters
from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.core.features import route_turn_sum_deg
from repro.core.trellis import UNREACHABLE_SCORE
from repro.datasets.dataset import MatchingDataset
from repro.geometry import bearing_deg, heading_difference_deg


class SnapNet(HeuristicHmmMatcher):
    """SnapNet: filtered input, direction and turn heuristics."""

    name = "SNet"

    def __init__(
        self,
        dataset: MatchingDataset,
        config: HeuristicHmmConfig | None = None,
        rng: int | np.random.Generator | None = 0,
        turn_scale_deg: float = 420.0,
        direction_scale_deg: float = 120.0,
    ) -> None:
        config = config or HeuristicHmmConfig(
            observation_sigma_m=500.0, transition_beta_m=450.0
        )
        super().__init__(dataset, config, rng)
        self.turn_scale_deg = turn_scale_deg
        self.direction_scale_deg = direction_scale_deg

    def preprocess(self, trajectory: Trajectory) -> Trajectory:
        """Re-apply the SnapNet filter stack (idempotent on filtered data)."""
        filtered = apply_standard_filters(trajectory)
        return filtered if len(filtered) >= 2 else trajectory

    def transition_probability(
        self, points: list[TrajectoryPoint], index: int, prev_segment: int, segment: int
    ) -> float:
        base = super().transition_probability(points, index, prev_segment, segment)
        if base <= UNREACHABLE_SCORE:
            return base
        route = self.engine.route(prev_segment, segment)
        assert route is not None
        a = points[index - 1].position
        b = points[index].position
        factor = 1.0
        if a.distance_to(b) > 1.0:
            move_heading = bearing_deg(a, b)
            target_heading = self.network.segments[segment].heading_deg()
            deviation = heading_difference_deg(move_heading, target_heading)
            factor *= math.exp(-deviation / self.direction_scale_deg)
        turns = route_turn_sum_deg(self.network, route)
        factor *= math.exp(-turns / self.turn_scale_deg)
        return base * factor
