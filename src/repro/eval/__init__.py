"""Evaluation: the paper's metrics (§V-A3), harness, and table reporting."""

from repro.eval.metrics import (
    corridor_mismatch_fraction,
    hitting_ratio,
    path_length,
    precision_recall,
    route_mismatch_fraction,
)
from repro.eval.harness import EvaluationResult, SampleEvaluation, evaluate_matcher
from repro.eval.report import format_table, format_series
from repro.eval.stats import PairedComparison, paired_bootstrap

__all__ = [
    "path_length",
    "precision_recall",
    "route_mismatch_fraction",
    "corridor_mismatch_fraction",
    "hitting_ratio",
    "EvaluationResult",
    "SampleEvaluation",
    "evaluate_matcher",
    "format_table",
    "format_series",
    "PairedComparison",
    "paired_bootstrap",
]
