"""Plain-text tables and series, formatted like the paper's exhibits."""

from __future__ import annotations

from repro.eval.harness import EvaluationResult


def format_table(
    results: list[EvaluationResult],
    columns: list[str] = ("precision", "recall", "rmf", "cmf50", "avg_time"),
    title: str | None = None,
) -> str:
    """Render evaluation results as an aligned text table.

    ``columns`` picks metric keys from :meth:`EvaluationResult.row`.
    """
    header = ["method", *columns]
    body: list[list[str]] = []
    for result in results:
        row = result.row()
        body.append([result.method, *(f"{row[c]:.3f}" for c in columns)])
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: list,
    series: dict[str, list[float]],
    title: str | None = None,
) -> str:
    """Render one figure's data as a table: x values against named series."""
    header = [x_label, *series]
    body = []
    for i, x in enumerate(x_values):
        body.append([str(x), *(f"{series[name][i]:.3f}" for name in series)])
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
    return "\n".join(lines)
