"""Matching-quality metrics (§V-A3).

All length-based metrics treat a path as the *set* of its road segments
(repeated traversals count once), matching the usual map-matching
evaluation convention.
"""

from __future__ import annotations

from repro.network.road_network import RoadNetwork


def path_length(network: RoadNetwork, path: list[int]) -> float:
    """Total length of the distinct segments of ``path``, in metres."""
    return sum(network.segments[s].length for s in set(path))


def precision_recall(
    network: RoadNetwork, truth_path: list[int], matched_path: list[int]
) -> tuple[float, float]:
    """Length-weighted precision and recall of ``matched_path``.

    Precision is correctly-matched length over matched length; recall is
    correctly-matched length over ground-truth length.
    """
    truth = set(truth_path)
    matched = set(matched_path)
    correct = path_length(network, list(truth & matched))
    matched_len = path_length(network, matched_path)
    truth_len = path_length(network, truth_path)
    precision = correct / matched_len if matched_len > 0 else 0.0
    recall = correct / truth_len if truth_len > 0 else 0.0
    return precision, recall


def route_mismatch_fraction(
    network: RoadNetwork, truth_path: list[int], matched_path: list[int]
) -> float:
    """RMF (Eq. 22): missing plus redundant length over ground-truth length.

    The strictest error indicator — 0 only for an exact segment-set match,
    and it can exceed 1 when the matched path wanders far.
    """
    truth = set(truth_path)
    matched = set(matched_path)
    missing = path_length(network, list(truth - matched))
    redundant = path_length(network, list(matched - truth))
    truth_len = path_length(network, truth_path)
    if truth_len <= 0:
        return 0.0
    return (missing + redundant) / truth_len


def corridor_mismatch_fraction(
    network: RoadNetwork,
    truth_path: list[int],
    matched_path: list[int],
    radius_m: float = 50.0,
    sample_step_m: float = 25.0,
) -> float:
    """CMF (Eq. 23): ground-truth length outside the matched path's corridor.

    The ground-truth path is sampled every ``sample_step_m`` metres; a
    sample counts as covered when it lies within ``radius_m`` of any
    matched segment.  ``CMF50`` is this metric at the paper's common 50 m
    corridor radius.
    """
    if not truth_path:
        return 0.0
    if not matched_path:
        return 1.0
    matched_segments = [network.segments[s] for s in set(matched_path)]
    uncovered = 0
    total = 0
    for seg_id in set(truth_path):
        polyline = network.segments[seg_id].polyline
        offsets = []
        offset = sample_step_m / 2.0
        while offset < polyline.length:
            offsets.append(offset)
            offset += sample_step_m
        if not offsets:  # segment shorter than the step: sample its midpoint
            offsets = [polyline.length / 2.0]
        for position in offsets:
            sample = polyline.interpolate(position)
            total += 1
            covered = any(
                seg.distance_to(sample) <= radius_m for seg in matched_segments
            )
            if not covered:
                uncovered += 1
    return uncovered / total if total else 0.0


def hitting_ratio(candidate_sets: list[list[int]], truth_path: list[int]) -> float:
    """Fraction of points whose candidate set intersects the truth path.

    Reflects the candidate-preparation quality of HMM-based methods; a
    point with no truth-path candidate is unmatchable without shortcuts
    (Observation 1).
    """
    if not candidate_sets:
        return 0.0
    truth = set(truth_path)
    hits = sum(1 for candidates in candidate_sets if truth.intersection(candidates))
    return hits / len(candidate_sets)
