"""Statistical comparison of matchers: paired bootstrap over trajectories.

Map-matching metrics vary a lot across trajectories, so point estimates of
"method A beats method B by 0.02 CMF" need uncertainty.  Both methods are
evaluated on the *same* trajectories, which makes the paired bootstrap the
natural tool: resample trajectories with replacement, recompute the mean
difference, and read confidence bounds off the resampled distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.eval.harness import EvaluationResult
from repro.utils import ensure_rng


@dataclass(slots=True)
class PairedComparison:
    """Bootstrap summary of ``metric(A) - metric(B)`` over shared samples.

    For error metrics (RMF, CMF) a negative ``mean_difference`` favours A;
    for precision/recall a positive one does.
    """

    metric: str
    method_a: str
    method_b: str
    mean_difference: float
    ci_low: float
    ci_high: float
    p_better: float

    @property
    def significant(self) -> bool:
        """True when the confidence interval excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        marker = "significant" if self.significant else "not significant"
        return (
            f"{self.method_a} - {self.method_b} on {self.metric}: "
            f"{self.mean_difference:+.3f} "
            f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}] ({marker})"
        )


def paired_bootstrap(
    result_a: EvaluationResult,
    result_b: EvaluationResult,
    metric: str = "cmf50",
    iterations: int = 2000,
    confidence: float = 0.95,
    rng: int | np.random.Generator | None = 0,
) -> PairedComparison:
    """Paired bootstrap of the per-sample metric difference A - B.

    Both results must cover the same samples in the same order (the
    harness guarantees this when given the same sample list).  ``p_better``
    is the bootstrap probability that A's mean is strictly better than B's
    (lower for error metrics, higher for precision/recall/hitting).
    """
    ids_a = [s.sample_id for s in result_a.samples]
    ids_b = [s.sample_id for s in result_b.samples]
    if ids_a != ids_b:
        raise ValueError("results must be evaluated on the same samples, in order")
    if not ids_a:
        raise ValueError("empty results")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    a = np.array([getattr(s, metric) for s in result_a.samples], dtype=np.float64)
    b = np.array([getattr(s, metric) for s in result_b.samples], dtype=np.float64)
    rng = ensure_rng(rng)
    n = len(a)
    differences = a - b
    resampled = np.empty(iterations)
    for i in range(iterations):
        picks = rng.integers(0, n, size=n)
        resampled[i] = differences[picks].mean()
    alpha = (1.0 - confidence) / 2.0
    lower_is_better = metric in ("rmf", "cmf50", "seconds")
    if lower_is_better:
        p_better = float(np.mean(resampled < 0.0))
    else:
        p_better = float(np.mean(resampled > 0.0))
    return PairedComparison(
        metric=metric,
        method_a=result_a.method,
        method_b=result_b.method,
        mean_difference=float(differences.mean()),
        ci_low=float(np.quantile(resampled, alpha)),
        ci_high=float(np.quantile(resampled, 1.0 - alpha)),
        p_better=p_better,
    )
