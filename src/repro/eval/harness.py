"""Evaluation harness: run a matcher over a dataset split and aggregate."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.cellular.trajectory import Trajectory
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.eval.metrics import (
    corridor_mismatch_fraction,
    hitting_ratio,
    precision_recall,
    route_mismatch_fraction,
)
from repro.utils import Timer


class Matcher(Protocol):
    """Anything that maps a cellular trajectory to a path."""

    def match(self, trajectory: Trajectory):
        """Return an object with ``path`` (and optionally ``candidate_sets``)."""
        ...


@dataclass(slots=True)
class SampleEvaluation:
    """Per-sample metric values."""

    sample_id: int
    precision: float
    recall: float
    rmf: float
    cmf50: float
    hitting: float | None
    seconds: float


@dataclass(slots=True)
class EvaluationResult:
    """Aggregated metrics over an evaluation split (one Table II cell row)."""

    method: str
    dataset: str
    samples: list[SampleEvaluation] = field(default_factory=list)

    def _mean(self, attr: str) -> float:
        values = [getattr(s, attr) for s in self.samples if getattr(s, attr) is not None]
        return float(np.mean(values)) if values else 0.0

    @property
    def precision(self) -> float:
        """Mean length-weighted precision."""
        return self._mean("precision")

    @property
    def recall(self) -> float:
        """Mean length-weighted recall."""
        return self._mean("recall")

    @property
    def rmf(self) -> float:
        """Mean route mismatch fraction (lower is better)."""
        return self._mean("rmf")

    @property
    def cmf50(self) -> float:
        """Mean 50 m corridor mismatch fraction (lower is better)."""
        return self._mean("cmf50")

    @property
    def hitting(self) -> float:
        """Mean hitting ratio (HMM-based methods only)."""
        return self._mean("hitting")

    @property
    def avg_time(self) -> float:
        """Mean seconds per matched trajectory."""
        return self._mean("seconds")

    def row(self) -> dict[str, float]:
        """All aggregates as a dict (for table printing)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "rmf": self.rmf,
            "cmf50": self.cmf50,
            "hr": self.hitting,
            "avg_time": self.avg_time,
        }

    # ------------------------------------------------------------------ export
    def to_dict(self) -> dict:
        """Aggregates plus per-sample rows, JSON-serialisable."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "aggregates": self.row(),
            "samples": [
                {
                    "sample_id": s.sample_id,
                    "precision": s.precision,
                    "recall": s.recall,
                    "rmf": s.rmf,
                    "cmf50": s.cmf50,
                    "hitting": s.hitting,
                    "seconds": s.seconds,
                }
                for s in self.samples
            ],
        }

    def save_json(self, path) -> None:
        """Write :meth:`to_dict` to ``path`` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    def save_csv(self, path) -> None:
        """Write the per-sample rows to ``path`` as CSV."""
        import csv
        from pathlib import Path

        fields = ["sample_id", "precision", "recall", "rmf", "cmf50", "hitting", "seconds"]
        with Path(path).open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for entry in self.to_dict()["samples"]:
                writer.writerow(entry)


def evaluate_matcher(
    matcher: Matcher,
    dataset: MatchingDataset,
    samples: list[MatchingSample] | None = None,
    method_name: str = "matcher",
    corridor_radius_m: float = 50.0,
    workers: int = 1,
) -> EvaluationResult:
    """Run ``matcher`` over ``samples`` (default: test split) and score it.

    With ``workers > 1`` (and a matcher exposing ``match_many``) the whole
    split is matched by a process pool first; decoded paths are identical to
    the serial run, and per-sample seconds then report the *amortised*
    parallel wall-clock rather than one trajectory's latency.
    """
    samples = dataset.test if samples is None else samples
    result = EvaluationResult(method=method_name, dataset=dataset.name)
    outcomes: list | None = None
    batch_seconds = 0.0
    if workers > 1 and hasattr(matcher, "match_many"):
        timer = Timer()
        with timer:
            outcomes = matcher.match_many(
                [sample.cellular for sample in samples], workers=workers
            )
        batch_seconds = timer.elapsed / max(len(samples), 1)
    for position, sample in enumerate(samples):
        if outcomes is not None:
            outcome = outcomes[position]
            seconds = batch_seconds
        else:
            timer = Timer()
            with timer:
                outcome = matcher.match(sample.cellular)
            seconds = timer.elapsed
        matched_path = list(outcome.path)
        precision, recall = precision_recall(dataset.network, sample.truth_path, matched_path)
        rmf = route_mismatch_fraction(dataset.network, sample.truth_path, matched_path)
        cmf = corridor_mismatch_fraction(
            dataset.network, sample.truth_path, matched_path, radius_m=corridor_radius_m
        )
        candidate_sets = getattr(outcome, "candidate_sets", None)
        hitting = (
            hitting_ratio(candidate_sets, sample.truth_path)
            if candidate_sets is not None
            else None
        )
        result.samples.append(
            SampleEvaluation(
                sample_id=sample.sample_id,
                precision=precision,
                recall=recall,
                rmf=rmf,
                cmf50=cmf,
                hitting=hitting,
                seconds=seconds,
            )
        )
    return result
