"""repro — reproduction of LHMM (ICDE 2023): learning-enhanced HMM map
matching for cellular trajectories.

Quickstart::

    from repro import make_city_dataset, LHMM, evaluate_matcher

    dataset = make_city_dataset("hangzhou", num_trajectories=200, rng=0)
    matcher = LHMM(rng=0).fit(dataset)
    result = matcher.match(dataset.test[0].cellular)
    print(result.path)

See :mod:`repro.core` for the model, :mod:`repro.baselines` for the ten
comparison methods, :mod:`repro.datasets` for synthetic city generation, and
:mod:`repro.eval` for the paper's metrics.
"""

from repro.core import LHMM, LHMMConfig
from repro.datasets import MatchingDataset, compute_statistics, make_city_dataset, preset_config
from repro.errors import (
    InvalidTrajectoryInput,
    MatchError,
    MatchFailure,
    PoolBroken,
    ReproError,
    RoutingFailure,
    WorkerCrash,
)
from repro.eval import evaluate_matcher

__version__ = "0.1.0"

__all__ = [
    "LHMM",
    "LHMMConfig",
    "ReproError",
    "InvalidTrajectoryInput",
    "MatchFailure",
    "RoutingFailure",
    "WorkerCrash",
    "PoolBroken",
    "MatchError",
    "MatchingDataset",
    "make_city_dataset",
    "preset_config",
    "compute_statistics",
    "evaluate_matcher",
    "__version__",
]
