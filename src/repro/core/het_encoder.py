"""Node encoders: the Het-Graph encoder (Eq. 4–5) and the LHMM-E ablation.

The Het-Graph encoder initialises every node (tower or road) with a
learnable embedding, then runs ``q`` rounds of relational message passing:
each relation ``rel`` aggregates neighbour messages as
``z_i^rel = mean_{j in N_i^rel} W_rel h_j`` (Eq. 4) and the update is
``h_i' = ReLU( sum_rel W_agg z_i^rel + W_0 h_i )`` (Eq. 5).

``MlpNodeEncoder`` replaces graph propagation with an embedding + MLP — the
LHMM-E variant of Table III.  Setting ``heterogeneous=False`` on the graph
encoder collapses all relations into one (a plain GCN) — the LHMM-H variant.
"""

from __future__ import annotations

import numpy as np

from repro.core.relation_graph import RELATIONS, RelationGraph
from repro.nn import MLP, Embedding, Linear, Module, Tensor
from repro.nn.functional import segment_mean
from repro.utils import ensure_rng


class HetGraphEncoder(Module):
    """Relational message-passing encoder over a :class:`RelationGraph`."""

    def __init__(
        self,
        graph: RelationGraph,
        dim: int = 48,
        num_layers: int = 2,
        heterogeneous: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not graph.edges:
            raise ValueError("relation graph must be built before encoding")
        rng = ensure_rng(rng)
        self.graph = graph
        self.dim = dim
        self.num_layers = num_layers
        self.heterogeneous = heterogeneous
        self.embedding = Embedding(graph.num_nodes, dim, rng=rng)
        relations = list(RELATIONS) if heterogeneous else ["ALL"]
        self.relation_weights = [
            {rel: Linear(dim, dim, bias=False, rng=rng) for rel in relations}
            for _ in range(num_layers)
        ]
        self.self_weights = [Linear(dim, dim, bias=False, rng=rng) for _ in range(num_layers)]
        self.aggregate_weights = [
            Linear(dim, dim, bias=False, rng=rng) for _ in range(num_layers)
        ]

    def _relation_edges(self):
        # Rebuilt only when the graph's edge dict is replaced (build()):
        # merged_edges() concatenates every relation, which is pure waste
        # re-done per forward during training otherwise.
        cache = getattr(self, "_edges_cache", None)
        if cache is not None and cache[0] is self.graph.edges:
            return cache[1]
        if self.heterogeneous:
            edges = {rel: self.graph.edges[rel] for rel in RELATIONS}
        else:
            edges = {"ALL": self.graph.merged_edges()}
        self._edges_cache = (self.graph.edges, edges)
        return edges

    def forward(self) -> Tensor:
        """Embeddings for every graph node, shape ``(num_nodes, dim)``."""
        h = self.embedding.all()
        edges = self._relation_edges()
        for layer in range(self.num_layers):
            messages = None
            for rel, edge_set in edges.items():
                if edge_set.count == 0:
                    continue
                projected = self.relation_weights[layer][rel](h[edge_set.sources])
                pooled = segment_mean(projected, edge_set.targets, self.graph.num_nodes)
                contribution = self.aggregate_weights[layer](pooled)
                messages = contribution if messages is None else messages + contribution
            self_term = self.self_weights[layer](h)
            h = (self_term if messages is None else messages + self_term).relu()
        return h


class MlpNodeEncoder(Module):
    """Embedding + MLP without any graph propagation (the LHMM-E ablation)."""

    def __init__(
        self,
        graph: RelationGraph,
        dim: int = 48,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.graph = graph
        self.dim = dim
        self.embedding = Embedding(graph.num_nodes, dim, rng=rng)
        self.mlp = MLP([dim, dim, dim], activation="relu", rng=rng)

    def forward(self) -> Tensor:
        """Embeddings for every graph node, shape ``(num_nodes, dim)``."""
        return self.mlp(self.embedding.all())
