"""LHMM — the paper's contribution: a learning-enhanced HMM for CTMM.

Public entry points:

* :class:`LHMM` — the full matcher: ``fit(dataset)`` then ``match(trajectory)``.
* :class:`LHMMConfig` — hyper-parameters and ablation switches
  (``LHMM-E/H/O/T/S`` from Table III map to config fields).
* :func:`make_model` / :func:`registered_models` — the named-architecture
  factory registry (:mod:`repro.core.registry`): serve, train, and the
  CLI reconstruct models purely from a manifest's ``meta`` (architecture
  name + config dict), never from pickled classes.
* :class:`RelationGraph` — the multi-relational tower/road graph (§IV-B).
* :class:`HetGraphEncoder` — relational message-passing encoder (Eq. 4–5).
* :class:`ObservationLearner` / :class:`TransitionLearner` — learned
  probabilities (§IV-C / §IV-D).
* :class:`Trellis` / :class:`VectorizedTrellis` — candidate-graph Viterbi
  with shortcut optimisation (Algorithms 1 and 2), reusable by baseline
  HMMs (STM+S).  :func:`make_trellis` selects the backend
  (``trellis_impl`` in the configs); the reference is kept as the oracle
  the differential tests compare the vectorized kernel against.
"""

from repro.core.checkpoint import CheckpointManager
from repro.core.config import LHMMConfig
from repro.core.relation_graph import RelationGraph
from repro.core.het_encoder import HetGraphEncoder, MlpNodeEncoder
from repro.core.observation import ObservationLearner
from repro.core.transition import TransitionLearner
from repro.core.trellis import (
    BatchTrellisScorer,
    Trellis,
    TrellisScorer,
    VectorizedTrellis,
    make_trellis,
)
from repro.core.matcher import LHMM, arch_name
from repro.core.online import OnlineLHMM
from repro.core.parallel import ParallelMatcher
from repro.core.registry import make_model, register_model, registered_models

__all__ = [
    "LHMM",
    "OnlineLHMM",
    "ParallelMatcher",
    "arch_name",
    "make_model",
    "register_model",
    "registered_models",
    "CheckpointManager",
    "LHMMConfig",
    "RelationGraph",
    "HetGraphEncoder",
    "MlpNodeEncoder",
    "ObservationLearner",
    "TransitionLearner",
    "Trellis",
    "TrellisScorer",
    "BatchTrellisScorer",
    "VectorizedTrellis",
    "make_trellis",
]
