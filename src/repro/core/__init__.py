"""LHMM — the paper's contribution: a learning-enhanced HMM for CTMM.

Public entry points:

* :class:`LHMM` — the full matcher: ``fit(dataset)`` then ``match(trajectory)``.
* :class:`LHMMConfig` — hyper-parameters and ablation switches
  (``LHMM-E/H/O/T/S`` from Table III map to config fields).
* :class:`RelationGraph` — the multi-relational tower/road graph (§IV-B).
* :class:`HetGraphEncoder` — relational message-passing encoder (Eq. 4–5).
* :class:`ObservationLearner` / :class:`TransitionLearner` — learned
  probabilities (§IV-C / §IV-D).
* :class:`Trellis` / :class:`VectorizedTrellis` — candidate-graph Viterbi
  with shortcut optimisation (Algorithms 1 and 2), reusable by baseline
  HMMs (STM+S).  :func:`make_trellis` selects the backend
  (``trellis_impl`` in the configs); the reference is kept as the oracle
  the differential tests compare the vectorized kernel against.
"""

from repro.core.checkpoint import CheckpointManager
from repro.core.config import LHMMConfig
from repro.core.relation_graph import RelationGraph
from repro.core.het_encoder import HetGraphEncoder, MlpNodeEncoder
from repro.core.observation import ObservationLearner
from repro.core.transition import TransitionLearner
from repro.core.trellis import (
    BatchTrellisScorer,
    Trellis,
    TrellisScorer,
    VectorizedTrellis,
    make_trellis,
)
from repro.core.matcher import LHMM
from repro.core.online import OnlineLHMM
from repro.core.parallel import ParallelMatcher

__all__ = [
    "LHMM",
    "OnlineLHMM",
    "ParallelMatcher",
    "CheckpointManager",
    "LHMMConfig",
    "RelationGraph",
    "HetGraphEncoder",
    "MlpNodeEncoder",
    "ObservationLearner",
    "TransitionLearner",
    "Trellis",
    "TrellisScorer",
    "BatchTrellisScorer",
    "VectorizedTrellis",
    "make_trellis",
]
