"""Process-parallel batch matching with fault isolation and self-healing.

Matching is embarrassingly parallel across trajectories but the fitted
matcher (embeddings, learner weights, road network, routing caches) is
expensive to ship per task, so both entry points here load it **once per
worker**:

* :func:`fork_match_many` — used by :meth:`LHMM.match_many(workers=N)
  <repro.core.matcher.LHMM.match_many>`: POSIX-forked workers inherit the
  in-memory fitted matcher read-only; nothing is pickled but the
  trajectories and results.
* :class:`ParallelMatcher` — a long-lived pool whose worker initialiser
  loads a saved model + dataset from disk (the deployment shape: big static
  map, small trained model), optionally behind a UBODT router.

Both dispatch fixed chunks and reassemble results by chunk index, so output
order — and content, trajectory for trajectory — is identical to serial
matching.  Each worker keeps its own LRU-bounded route cache; per-worker
hit/miss counters are collected with every chunk and exposed via
``last_parallel_stats`` / :meth:`ParallelMatcher.stats`.

Fault tolerance (``docs/robustness.md``) is layered:

* **Per-item isolation** — a trajectory whose match raises does not poison
  its chunk: the worker catches the exception and returns a
  :class:`~repro.errors.MatchError` slot in its place.
* **Self-healing pool** — :class:`ParallelMatcher` survives worker death
  (``BrokenProcessPool``) and wedged workers (no chunk completing for
  ``chunk_timeout_s``): the pool is rebuilt, up to ``respawn_limit`` times
  per batch, and only the *unfinished* chunks are resubmitted — completed
  work is never thrown away.  Chunks that keep crashing are pushed to the
  back of the resubmission order (suspected poison) and, after
  ``max_chunk_attempts`` failures, surrendered as structured error slots.
* :func:`fork_match_many` keeps per-item isolation but does **not**
  self-heal — a crashed forked worker raises
  :class:`~repro.errors.WorkerCrash` (the caller still owns the in-memory
  matcher and can simply retry serially).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.errors import MatchError, PoolBroken, WorkerCrash
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cellular.trajectory import Trajectory
    from repro.core.matcher import LHMM, MatchResult

# Worker-process state: the fitted matcher, either inherited through fork
# (fork_match_many) or loaded from files by the pool initialiser.
_WORKER_STATE: dict = {}


def default_workers() -> int:
    """A sensible worker count: physical parallelism, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _match_chunk(chunk_index: int, start_index: int, trajectories: "list[Trajectory]"):
    """Match one chunk inside a worker; returns result/error slots + counters.

    A failing trajectory yields a :class:`MatchError` slot (carrying its
    global batch index) instead of raising, so one bad input cannot void
    the work of its chunk-mates.
    """
    faults.fire("worker.chunk", chunk=chunk_index)
    matcher = _WORKER_STATE["matcher"]
    results: list = []
    for offset, trajectory in enumerate(trajectories):
        try:
            results.append(matcher.match(trajectory))
        except Exception as error:  # noqa: BLE001 - slotted, not raised
            results.append(MatchError.from_exception(error, index=start_index + offset))
    stats = dict(getattr(matcher.engine, "cache_stats", dict)())
    stats["pid"] = os.getpid()
    return chunk_index, results, stats


def _chunked(items: list, chunk_size: int) -> list[list]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _warmup_task(hold_s: float) -> int:
    """Occupy one worker briefly so every pool process gets initialised."""
    time.sleep(hold_s)
    return os.getpid()


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every live worker of a pool declared hung."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        if process.is_alive():  # pragma: no branch - racy by nature
            try:
                os.kill(process.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):  # pragma: no cover
                pass


class _Round:
    """Outcome of one submission round over a pool."""

    __slots__ = ("completed", "per_worker", "broken", "reason")

    def __init__(self) -> None:
        self.completed: dict[int, list] = {}  # chunk index -> result slots
        self.per_worker: dict[int, dict] = {}
        self.broken = False
        self.reason = ""


def _run_round(
    pool: ProcessPoolExecutor,
    chunks: dict[int, tuple[int, list]],
    order: list[int],
    timeout_s: float | None,
) -> _Round:
    """Submit ``chunks`` (index -> (start, items)) in ``order``; collect what finishes.

    Survives individual future failures: a ``BrokenProcessPool`` (worker
    death) or a stall (no chunk completing within ``timeout_s``) ends the
    round with ``broken=True`` and whatever completed — it never raises.
    """
    outcome = _Round()
    futures = {}
    try:
        for index in order:
            start, items = chunks[index]
            futures[pool.submit(_match_chunk, index, start, items)] = index
    except (BrokenProcessPool, RuntimeError) as error:
        outcome.broken = True
        outcome.reason = f"pool rejected work: {error}"
    pending = set(futures)
    while pending:
        # Each completion re-enters wait(), so the timeout measures time
        # since the last chunk finished — a whole-pool stall detector.
        done, pending = wait(pending, timeout=timeout_s, return_when=FIRST_COMPLETED)
        if not done:
            # Stall: nothing finished inside the window — treat the pool as
            # hung, kill its workers so resources are actually reclaimed.
            _kill_pool_processes(pool)
            outcome.broken = True
            outcome.reason = (
                f"no chunk completed within {timeout_s:.1f}s; "
                "worker pool declared hung and killed"
            )
            break
        for future in done:
            try:
                chunk_index, results, stats = future.result()
            except BrokenProcessPool as error:
                outcome.broken = True
                outcome.reason = f"worker process died: {error}"
                continue
            except Exception as error:  # noqa: BLE001 - chunk-level failure
                outcome.broken = True
                outcome.reason = f"chunk dispatch failed: {error}"
                continue
            outcome.completed[chunk_index] = results
            pid = stats.pop("pid", 0)
            # Counters are cumulative per worker: keep the freshest snapshot.
            seen = outcome.per_worker.get(pid)
            if seen is None or sum(stats.values()) >= sum(seen.values()):
                outcome.per_worker[pid] = stats
    return outcome


def _raise_or_return(results: list, return_errors: bool) -> list:
    """Legacy contract: re-raise the first error slot unless slots are wanted."""
    if not return_errors:
        for slot in results:
            if isinstance(slot, MatchError):
                slot.raise_()
    return results


def fork_match_many(
    matcher: "LHMM",
    trajectories: "list[Trajectory]",
    workers: int,
    chunk_size: int | None = None,
    return_errors: bool = False,
) -> "list[MatchResult] | None":
    """Match ``trajectories`` over forked workers sharing ``matcher``.

    Returns ``None`` when fork is unavailable (caller falls back to serial).
    With ``return_errors=True`` failing trajectories come back as
    :class:`MatchError` slots; otherwise the first failure is re-raised
    (the pre-fault-tolerance contract).  A crashed worker raises
    :class:`WorkerCrash` — forked pools are not rebuilt (the caller holds
    the in-memory matcher and can rerun serially).  Aggregated per-worker
    cache counters are left on ``matcher.last_parallel_stats``.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX platforms
        return None
    workers = min(workers, len(trajectories))
    if chunk_size is None:
        # ~4 chunks per worker balances load without oversized pickles.
        chunk_size = max(1, -(-len(trajectories) // (workers * 4)))
    chunk_items = _chunked(trajectories, chunk_size)
    chunks = {
        index: (index * chunk_size, items) for index, items in enumerate(chunk_items)
    }
    _WORKER_STATE["matcher"] = matcher
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            outcome = _run_round(pool, chunks, list(chunks), timeout_s=None)
    finally:
        _WORKER_STATE.pop("matcher", None)
    if outcome.broken:
        raise WorkerCrash(
            f"forked matching pool failed ({outcome.reason}); "
            "rerun serially or use ParallelMatcher for a self-healing pool"
        )
    flat = [slot for index in sorted(outcome.completed) for slot in outcome.completed[index]]
    matcher.last_parallel_stats = {
        "workers": len(outcome.per_worker),
        "chunks": len(chunks),
        "per_worker": outcome.per_worker,
    }
    return _raise_or_return(flat, return_errors)


def _init_worker_from_files(
    model_path: str,
    dataset_path: str,
    router: str,
    ubodt_delta_m: float,
) -> None:
    """Pool initialiser: load the saved model + map once per worker."""
    from repro.core.matcher import LHMM
    from repro.datasets import load_dataset

    dataset = load_dataset(dataset_path)
    matcher = LHMM.load(model_path, dataset)
    if router == "ubodt":
        from repro.network.ubodt import Ubodt, UbodtRouter

        table = Ubodt.build(dataset.network, ubodt_delta_m)
        matcher.use_router(UbodtRouter(dataset.network, table, fallback=dataset.engine))
    _WORKER_STATE["matcher"] = matcher


class ParallelMatcher:
    """A persistent, self-healing matching pool over a saved model + dataset.

    Workers initialise once (model + map load, optional UBODT build) and
    then stream chunks, so amortised per-trajectory cost approaches the
    serial matcher's inner loop divided by the worker count.

    A worker that dies (OOM kill, segfault) or wedges does not brick the
    pool: the executor is rebuilt — up to ``respawn_limit`` times per
    ``match_many`` call — and only unfinished chunks are resubmitted.
    Chunks that fail ``max_chunk_attempts`` times are returned as
    :class:`~repro.errors.MatchError` slots (``return_errors=True``) or
    raised as :class:`~repro.errors.WorkerCrash` (default).

    Args:
        model_path: A trained LHMM ``.npz`` (validated to exist here, so a
            typo fails at construction, not as an opaque pool breakage).
        dataset_path: The serialized dataset holding the map + towers.
        workers: Pool size (defaults to :func:`default_workers`).
        chunk_size: Trajectories per dispatched chunk.
        router: ``"dijkstra"`` or ``"ubodt"``.
        ubodt_delta_m: UBODT distance bound (with ``router="ubodt"``).
        respawn_limit: Pool rebuilds allowed per ``match_many`` call.
        chunk_timeout_s: Declare the pool hung when no chunk completes for
            this many seconds (``None`` disables the stall detector).
        max_chunk_attempts: Submissions per chunk before it is surrendered
            as error slots.

    Use as a context manager::

        with ParallelMatcher("model.npz", "city.json.gz", workers=4) as pool:
            results = pool.match_many(trajectories)
    """

    def __init__(
        self,
        model_path: str | os.PathLike,
        dataset_path: str | os.PathLike,
        workers: int | None = None,
        chunk_size: int = 8,
        router: str = "dijkstra",
        ubodt_delta_m: float = 3000.0,
        respawn_limit: int = 3,
        chunk_timeout_s: float | None = None,
        max_chunk_attempts: int = 3,
    ) -> None:
        for label, path in (("model", model_path), ("dataset", dataset_path)):
            if not os.path.exists(path):
                raise FileNotFoundError(
                    f"ParallelMatcher {label} file not found: {os.fspath(path)!r} "
                    "(workers would die at initialisation; fix the path)"
                )
        self.workers = workers or default_workers()
        self.chunk_size = max(1, int(chunk_size))
        self.respawn_limit = max(0, int(respawn_limit))
        self.chunk_timeout_s = chunk_timeout_s
        self.max_chunk_attempts = max(1, int(max_chunk_attempts))
        self._initargs = (str(model_path), str(dataset_path), router, ubodt_delta_m)
        self._stats: dict = {
            "workers": 0,
            "chunks": 0,
            "per_worker": {},
            "worker_respawns_total": 0,
            "failed_items_total": 0,
        }
        self._pool = self._new_pool()

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker_from_files,
            initargs=self._initargs,
        )

    def _respawn_pool(self) -> None:
        """Replace a broken/hung executor with a fresh one."""
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._pool = self._new_pool()
        self._stats["worker_respawns_total"] += 1

    @property
    def worker_respawns(self) -> int:
        """Pool rebuilds over this matcher's lifetime."""
        return self._stats["worker_respawns_total"]

    def warmup(self, hold_s: float = 0.05) -> int:
        """Force every worker to initialise now instead of on first traffic.

        ``ProcessPoolExecutor`` spawns workers lazily, so without a warmup
        the first requests of a serving deployment pay the model + map load
        (and any UBODT build) in-band.  Submits one short blocking task per
        worker so the pool spins them all up; returns the number of distinct
        worker processes that answered.

        Worker initialiser failures normally surface as an opaque
        ``BrokenProcessPool``; warmup reproduces the initialiser in-process
        to name the actual failing file, raising :class:`PoolBroken`.
        """
        try:
            futures = [
                self._pool.submit(_warmup_task, hold_s) for _ in range(self.workers)
            ]
            return len({future.result() for future in futures})
        except BrokenProcessPool as error:
            try:
                _init_worker_from_files(*self._initargs)
            except Exception as cause:
                raise PoolBroken(
                    f"worker initialisation failed: {type(cause).__name__}: {cause} "
                    f"(model={self._initargs[0]!r}, dataset={self._initargs[1]!r})"
                ) from cause
            finally:
                _WORKER_STATE.pop("matcher", None)
            raise PoolBroken(f"worker pool broke during warmup: {error}") from error

    def match_many(
        self, trajectories: "list[Trajectory]", return_errors: bool = False
    ) -> "list[MatchResult]":
        """Match a batch; results are in input order, identical to serial.

        Chunks lost to worker crashes or hangs are resubmitted on a
        rebuilt pool (completed chunks are kept).  With
        ``return_errors=True``, trajectories that could not be matched
        come back as :class:`MatchError` slots in their input positions;
        otherwise the first such failure is re-raised.
        """
        if not trajectories:
            return []
        chunk_items = _chunked(trajectories, self.chunk_size)
        chunks = {
            index: (index * self.chunk_size, items)
            for index, items in enumerate(chunk_items)
        }
        completed: dict[int, list] = {}
        per_worker: dict[int, dict] = {}
        attempts = {index: 0 for index in chunks}
        # Every chunk submitted in a broken round shares the blame
        # (attempts), but the *first unfinished* chunk of the round is the
        # likeliest poison — suspicion pushes it behind the innocents so
        # they drain first on the rebuilt pool.
        suspicion = {index: 0 for index in chunks}
        respawns_left = self.respawn_limit
        pending = set(chunks)
        while pending:
            order = sorted(pending, key=lambda i: (suspicion[i], attempts[i], i))
            for index in order:
                attempts[index] += 1
            outcome = _run_round(
                self._pool,
                {index: chunks[index] for index in order},
                order,
                self.chunk_timeout_s,
            )
            completed.update(outcome.completed)
            per_worker.update(outcome.per_worker)
            pending -= set(outcome.completed)
            if not outcome.broken:
                break
            if pending:
                unfinished = [index for index in order if index in pending]
                if unfinished:
                    suspicion[unfinished[0]] += 1
                self._respawn_pool()
                if respawns_left == 0:
                    # Budget exhausted: surrender what is left as error slots.
                    for index in sorted(pending):
                        start, items = chunks[index]
                        completed[index] = [
                            MatchError(
                                code=PoolBroken.code,
                                message=(
                                    "worker pool respawn budget exhausted "
                                    f"({self.respawn_limit} respawns): {outcome.reason}"
                                ),
                                index=start + offset,
                            )
                            for offset in range(len(items))
                        ]
                    pending.clear()
                    break
                respawns_left -= 1
                # Chunks that burned through their attempts are surrendered
                # (likely the poison that keeps killing workers).
                exhausted = {
                    index for index in pending
                    if attempts[index] >= self.max_chunk_attempts
                }
                for index in sorted(exhausted):
                    start, items = chunks[index]
                    completed[index] = [
                        MatchError(
                            code=WorkerCrash.code,
                            message=(
                                f"chunk failed {attempts[index]} times "
                                f"({outcome.reason}); giving up on its trajectories"
                            ),
                            index=start + offset,
                        )
                        for offset in range(len(items))
                    ]
                pending -= exhausted
        flat = [slot for index in sorted(completed) for slot in completed[index]]
        failed = sum(1 for slot in flat if isinstance(slot, MatchError))
        merged = dict(self._stats["per_worker"])
        merged.update(per_worker)
        self._stats.update(
            workers=len(merged),
            chunks=self._stats["chunks"] + len(chunks),
            per_worker=merged,
            failed_items_total=self._stats["failed_items_total"] + failed,
        )
        return _raise_or_return(flat, return_errors)

    def stats(self) -> dict:
        """Cumulative per-worker route-cache counters + fault counters."""
        return dict(self._stats)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
