"""Process-parallel batch matching.

Matching is embarrassingly parallel across trajectories but the fitted
matcher (embeddings, learner weights, road network, routing caches) is
expensive to ship per task, so both entry points here load it **once per
worker**:

* :func:`fork_match_many` — used by :meth:`LHMM.match_many(workers=N)
  <repro.core.matcher.LHMM.match_many>`: POSIX-forked workers inherit the
  in-memory fitted matcher read-only; nothing is pickled but the
  trajectories and results.
* :class:`ParallelMatcher` — a long-lived pool whose worker initialiser
  loads a saved model + dataset from disk (the deployment shape: big static
  map, small trained model), optionally behind a UBODT router.

Both dispatch fixed chunks and reassemble results by chunk index, so output
order — and content, trajectory for trajectory — is identical to serial
matching.  Each worker keeps its own LRU-bounded route cache; per-worker
hit/miss counters are collected with every chunk and exposed via
``last_parallel_stats`` / :meth:`ParallelMatcher.stats`.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cellular.trajectory import Trajectory
    from repro.core.matcher import LHMM, MatchResult

# Worker-process state: the fitted matcher, either inherited through fork
# (fork_match_many) or loaded from files by the pool initialiser.
_WORKER_STATE: dict = {}


def default_workers() -> int:
    """A sensible worker count: physical parallelism, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


def _match_chunk(chunk_index: int, trajectories: "list[Trajectory]"):
    """Match one chunk inside a worker; returns results + cache counters."""
    matcher = _WORKER_STATE["matcher"]
    results = [matcher.match(t) for t in trajectories]
    stats = dict(getattr(matcher.engine, "cache_stats", dict)())
    stats["pid"] = os.getpid()
    return chunk_index, results, stats


def _chunked(items: list, chunk_size: int) -> list[list]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _warmup_task(hold_s: float) -> int:
    """Occupy one worker briefly so every pool process gets initialised."""
    import time

    time.sleep(hold_s)
    return os.getpid()


def _dispatch(
    pool: ProcessPoolExecutor, trajectories: "list[Trajectory]", chunk_size: int
) -> tuple["list[MatchResult]", dict]:
    """Submit chunks, reassemble in input order, aggregate worker stats."""
    chunks = _chunked(trajectories, chunk_size)
    futures = {
        pool.submit(_match_chunk, index, chunk): index
        for index, chunk in enumerate(chunks)
    }
    ordered: list = [None] * len(chunks)
    per_worker: dict[int, dict] = {}
    pending = set(futures)
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            chunk_index, results, stats = future.result()
            ordered[chunk_index] = results
            pid = stats.pop("pid", 0)
            # Counters are cumulative per worker: keep the freshest snapshot.
            seen = per_worker.get(pid)
            if seen is None or sum(stats.values()) >= sum(seen.values()):
                per_worker[pid] = stats
    flat = [result for chunk in ordered for result in chunk]
    summary = {
        "workers": len(per_worker),
        "chunks": len(chunks),
        "per_worker": per_worker,
    }
    return flat, summary


def fork_match_many(
    matcher: "LHMM",
    trajectories: "list[Trajectory]",
    workers: int,
    chunk_size: int | None = None,
) -> "list[MatchResult] | None":
    """Match ``trajectories`` over forked workers sharing ``matcher``.

    Returns ``None`` when fork is unavailable (caller falls back to serial).
    Aggregated per-worker cache counters are left on
    ``matcher.last_parallel_stats``.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-POSIX platforms
        return None
    workers = min(workers, len(trajectories))
    if chunk_size is None:
        # ~4 chunks per worker balances load without oversized pickles.
        chunk_size = max(1, -(-len(trajectories) // (workers * 4)))
    _WORKER_STATE["matcher"] = matcher
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            results, stats = _dispatch(pool, trajectories, chunk_size)
    finally:
        _WORKER_STATE.pop("matcher", None)
    matcher.last_parallel_stats = stats
    return results


def _init_worker_from_files(
    model_path: str,
    dataset_path: str,
    router: str,
    ubodt_delta_m: float,
) -> None:
    """Pool initialiser: load the saved model + map once per worker."""
    from repro.core.matcher import LHMM
    from repro.datasets import load_dataset

    dataset = load_dataset(dataset_path)
    matcher = LHMM.load(model_path, dataset)
    if router == "ubodt":
        from repro.network.ubodt import Ubodt, UbodtRouter

        table = Ubodt.build(dataset.network, ubodt_delta_m)
        matcher.use_router(UbodtRouter(dataset.network, table, fallback=dataset.engine))
    _WORKER_STATE["matcher"] = matcher


class ParallelMatcher:
    """A persistent matching pool over a saved model and dataset.

    Workers initialise once (model + map load, optional UBODT build) and
    then stream chunks, so amortised per-trajectory cost approaches the
    serial matcher's inner loop divided by the worker count.

    Use as a context manager::

        with ParallelMatcher("model.npz", "city.json.gz", workers=4) as pool:
            results = pool.match_many(trajectories)
    """

    def __init__(
        self,
        model_path: str | os.PathLike,
        dataset_path: str | os.PathLike,
        workers: int | None = None,
        chunk_size: int = 8,
        router: str = "dijkstra",
        ubodt_delta_m: float = 3000.0,
    ) -> None:
        self.workers = workers or default_workers()
        self.chunk_size = max(1, int(chunk_size))
        self._stats: dict = {"workers": 0, "chunks": 0, "per_worker": {}}
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker_from_files,
            initargs=(str(model_path), str(dataset_path), router, ubodt_delta_m),
        )

    def warmup(self, hold_s: float = 0.05) -> int:
        """Force every worker to initialise now instead of on first traffic.

        ``ProcessPoolExecutor`` spawns workers lazily, so without a warmup
        the first requests of a serving deployment pay the model + map load
        (and any UBODT build) in-band.  Submits one short blocking task per
        worker so the pool spins them all up; returns the number of distinct
        worker processes that answered.
        """
        futures = [
            self._pool.submit(_warmup_task, hold_s) for _ in range(self.workers)
        ]
        return len({future.result() for future in futures})

    def match_many(self, trajectories: "list[Trajectory]") -> "list[MatchResult]":
        """Match a batch; results are in input order, identical to serial."""
        if not trajectories:
            return []
        results, stats = _dispatch(self._pool, trajectories, self.chunk_size)
        merged = dict(self._stats["per_worker"])
        merged.update(stats["per_worker"])
        self._stats = {
            "workers": len(merged),
            "chunks": self._stats["chunks"] + stats["chunks"],
            "per_worker": merged,
        }
        return results

    def stats(self) -> dict:
        """Cumulative per-worker route-cache hit/miss counters."""
        return dict(self._stats)

    def close(self) -> None:
        """Shut the pool down (idempotent)."""
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
