"""Online (streaming) LHMM matching with fixed-lag commitment.

The batch matcher (:class:`~repro.core.matcher.LHMM`) needs the whole
trajectory; real deployments (live traffic estimation, the paper's §I
motivation) receive cellular samples one at a time.  :class:`OnlineLHMM`
wraps a *fitted* matcher and decodes incrementally: each arriving point
extends the Viterbi lattice, and once a point falls ``lag`` steps behind
the head, its candidate is committed (fixed-lag smoothing) and streamed
out.  Shortcut optimisation is a whole-path pass and is deliberately not
applied online — that trade-off (latency vs. noisy-point skipping) is the
cost of streaming.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.core.candidates import learned_candidate_pool
from repro.core.features import (
    dense_relevance,
    transition_feature_rows,
    transition_features,
)
from repro.core.matcher import LHMM
from repro.core.trellis import UNREACHABLE_SCORE
from repro.errors import InvalidTrajectoryInput
from repro.network.router import route_pairs
from repro.network.shortest_path import stitch_segments
from repro.nn import Tensor, no_grad


class OnlineLHMM:
    """Streaming decoder over a fitted :class:`LHMM`.

    Args:
        matcher: A fitted LHMM (``fit`` must have been called).
        lag: How many points behind the head a decision is committed.
            Larger lags approach batch accuracy at higher latency.
        context_window: How many recent points feed the attention context
            and road-relevance models.
    """

    def __init__(self, matcher: LHMM, lag: int = 4, context_window: int = 12) -> None:
        matcher._require_fit()
        if lag < 1:
            raise InvalidTrajectoryInput("lag must be >= 1")
        self.matcher = matcher
        self.lag = lag
        self.context_window = max(context_window, lag + 1)
        self._points: list[TrajectoryPoint] = []
        self._layers: list[list[int]] = []
        self._f: list[dict[int, float]] = []
        self._pre: list[dict[int, int]] = []
        self._committed_through = 0  # layers with a fixed candidate
        self._emitted: list[int] = []

    # ------------------------------------------------------------ internals
    def _context_vector(self) -> np.ndarray:
        """Attention context for the newest point over the recent window."""
        matcher = self.matcher
        window = self._points[-self.context_window :]
        nodes = np.array([matcher._tower_node_for(p) for p in window])
        with no_grad():
            x = Tensor(matcher.node_embeddings[nodes])  # type: ignore[index]
            context = matcher.observation_learner.context(x).numpy()
        return context[-1]

    def _relevance(self, segment_ids: list[int]) -> dict[int, float]:
        matcher = self.matcher
        if not matcher.transition_learner.use_implicit:
            return {}
        window = self._points[-self.context_window :]
        nodes = np.array([matcher._tower_node_for(p) for p in window])
        with no_grad():
            return matcher._segment_relevance(
                Tensor(matcher.node_embeddings[nodes]),  # type: ignore[index]
                segment_ids,
            )

    def _transition_for_route(self, relevance, route, prev_point, point) -> float:
        matcher = self.matcher
        if route is None:
            return UNREACHABLE_SCORE
        explicit = transition_features(matcher.network, route, prev_point, point)
        if matcher.transition_learner.use_implicit:
            implicit = float(
                np.mean([relevance.get(s, 0.5) for s in route.segments])
            )
            row = np.concatenate([[implicit], explicit])
        else:
            row = explicit
        with no_grad():
            return float(
                matcher.transition_learner.fusion_mlp(Tensor(row.reshape(1, -1)))
                .reshape(1)
                .sigmoid()
                .numpy()[0]
            )

    def _backtrack_step(self, i: int, current: int) -> int:
        """One backward step; on a disconnected lattice restart from the
        best-scoring state of the previous layer (mirrors the batch
        :meth:`Trellis._backtrack` so fixed-lag and batch decoding agree)."""
        previous = self._pre[i].get(current)
        if previous is None:
            layer = self._f[i - 1]
            previous = max(layer, key=layer.get)  # type: ignore[arg-type]
        return previous

    def _commit_ready_layers(self) -> None:
        """Fix candidates that have fallen ``lag`` behind the head."""
        while len(self._layers) - self._committed_through > self.lag:
            head = self._f[-1]
            current = max(head, key=head.get)  # type: ignore[arg-type]
            for i in range(len(self._layers) - 1, self._committed_through, -1):
                current = self._backtrack_step(i, current)
            layer = self._committed_through
            self._layers[layer] = [current]
            self._emitted.append(current)
            self._committed_through += 1

    # ------------------------------------------------------------- interface
    def reset(self) -> None:
        """Discard all streaming state so the decoder can start a new
        trajectory without rebuilding the (expensive) fitted matcher.

        After ``reset()`` the instance is indistinguishable from a freshly
        constructed one: replaying the same points yields the same commits.
        The serving layer's session manager uses this to recycle decoder
        objects across sessions.
        """
        self._points = []
        self._layers = []
        self._f = []
        self._pre = []
        self._committed_through = 0
        self._emitted = []

    def add_point(self, point: TrajectoryPoint) -> None:
        """Feed the next cellular sample."""
        matcher = self.matcher
        cfg = matcher.config
        self._points.append(point)
        context = self._context_vector()
        if cfg.pipeline_impl == "batched":
            # The matcher's per-tower pool cache answers repeat towers in
            # O(1); a miss runs the stacked spatial kernel. Same pool as
            # the scalar builder below, point for point.
            pool = matcher._pool_cache().pool(point)
        else:
            pool = learned_candidate_pool(
                matcher.graph,
                point,
                cfg.candidate_radius_m,
                cfg.candidate_pool,
                include_cooccurrence=cfg.extend_pool_with_cooccurrence,
            )
        scores = matcher._score_observations(point, pool, context)
        order = np.argsort(-scores)
        candidates = [pool[int(j)] for j in order[: cfg.candidate_k]]
        po = {pool[int(j)]: float(scores[int(j)]) for j in order[: cfg.candidate_k]}

        if not self._layers:
            self._layers.append(candidates)
            self._f.append(dict(po))
            self._pre.append({})
            return

        # Route every (previous candidate -> new candidate) pair with one
        # batched multi-source query, then score road relevance for exactly
        # the segments those routes touch.
        prev_layer = self._layers[-1]
        pairs = [(prev, nxt) for prev in prev_layer for nxt in candidates]
        route_list = route_pairs(self.matcher.engine, pairs)
        routes = dict(zip(pairs, route_list))
        touched = sorted(
            {s for route in route_list if route is not None for s in route.segments}
        )
        relevance = self._relevance(touched)

        prev_point = self._points[-2]
        prev_f = self._f[-1]
        if self.matcher.config.trellis_impl == "vectorized":
            new_f, new_pre = self._vectorized_layer(
                relevance, pairs, route_list, prev_point, point, candidates, po
            )
        else:
            new_f = {}
            new_pre = {}
            for seg in candidates:
                best_score = -math.inf
                best_prev = None
                for prev_seg in prev_layer:
                    trans = self._transition_for_route(
                        relevance, routes[(prev_seg, seg)], prev_point, point
                    )
                    w = trans * po[seg] if trans > UNREACHABLE_SCORE else UNREACHABLE_SCORE
                    score = prev_f[prev_seg] + w
                    if score > best_score:
                        best_score = score
                        best_prev = prev_seg
                new_f[seg] = best_score
                if best_prev is not None:
                    new_pre[seg] = best_prev
        self._layers.append(candidates)
        self._f.append(new_f)
        self._pre.append(new_pre)
        self._commit_ready_layers()

    def _vectorized_layer(
        self, relevance, pairs, route_list, prev_point, point, candidates, po
    ) -> tuple[dict[int, float], dict[int, int]]:
        """One streaming Viterbi layer as a batched MLP call + numpy max-plus.

        Feature rows for every reachable pair are stacked into a single
        ``fusion_mlp`` forward (the same stacking the batch matcher's
        scorer performs per step), and the layer update is an ``argmax``
        over the score matrix — first previous candidate wins ties, exactly
        like the scalar scan.
        """
        matcher = self.matcher
        prev_layer = self._layers[-1]
        if matcher.config.pipeline_impl == "batched":
            dense = None
            if matcher.transition_learner.use_implicit:
                dense = dense_relevance(matcher.network, relevance)
            row_matrix, row_positions = transition_feature_rows(
                matcher.network,
                route_list,
                prev_point,
                point,
                relevance_dense=dense,
            )
        else:
            rows: list[np.ndarray] = []
            row_positions = []
            for pos, route in enumerate(route_list):
                if route is None:
                    continue
                explicit = transition_features(
                    matcher.network, route, prev_point, point
                )
                if matcher.transition_learner.use_implicit:
                    implicit = float(
                        np.mean([relevance.get(s, 0.5) for s in route.segments])
                    )
                    rows.append(np.concatenate([[implicit], explicit]))
                else:
                    rows.append(explicit)
                row_positions.append(pos)
            row_matrix = (
                np.stack(rows)
                if rows
                else np.empty((0, 0), dtype=np.float64)
            )
        trans = np.full(len(pairs), UNREACHABLE_SCORE)
        if row_matrix.shape[0]:
            with no_grad():
                probs = (
                    matcher.transition_learner.fusion_mlp(Tensor(row_matrix))
                    .reshape(row_matrix.shape[0])
                    .sigmoid()
                    .numpy()
                )
            trans[row_positions] = probs
        trans = trans.reshape(len(prev_layer), len(candidates))
        po_row = np.array([po[seg] for seg in candidates], dtype=np.float64)
        w = np.where(
            trans > UNREACHABLE_SCORE, trans * po_row[np.newaxis, :], UNREACHABLE_SCORE
        )
        f_prev = np.array([self._f[-1][seg] for seg in prev_layer], dtype=np.float64)
        scores = f_prev[:, np.newaxis] + w
        best_rows = scores.argmax(axis=0)
        best = scores[best_rows, np.arange(len(candidates))]
        new_f: dict[int, float] = {}
        new_pre: dict[int, int] = {}
        for k, seg in enumerate(candidates):
            value = float(best[k])
            new_f[seg] = value if value > -math.inf else -math.inf
            if value > -math.inf:
                new_pre[seg] = prev_layer[int(best_rows[k])]
        return new_f, new_pre

    @property
    def committed_path(self) -> list[int]:
        """Segments committed so far, stitched into a consecutive path."""
        return stitch_segments(self._emitted, self.matcher.engine)

    def pending_points(self) -> int:
        """Points whose decision is still open (at most ``lag``)."""
        return len(self._layers) - self._committed_through

    def finish(self) -> list[int]:
        """Flush remaining decisions and return the full matched path."""
        if not self._layers:
            return []
        head = self._f[-1]
        current = max(head, key=head.get)  # type: ignore[arg-type]
        tail = [current]
        for i in range(len(self._layers) - 1, self._committed_through, -1):
            current = self._backtrack_step(i, current)
            tail.append(current)
        tail.reverse()
        full_sequence = self._emitted + tail
        return stitch_segments(full_sequence, self.matcher.engine)

    def match_stream(self, trajectory: Trajectory) -> list[int]:
        """Convenience: feed a whole trajectory point by point."""
        for point in trajectory.points:
            self.add_point(point)
        return self.finish()
