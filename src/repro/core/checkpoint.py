"""Durable training checkpoints: atomic writes, retention, corruption skip.

A :class:`CheckpointManager` owns one directory of numbered checkpoint
artifacts (``ckpt-00000042.npz``).  Each checkpoint is a versioned,
checksummed envelope (:mod:`repro.nn.serialization`) holding arbitrary
arrays plus a JSON ``meta`` mapping — the trainer stores stage/epoch
cursors, weights, optimizer state, RNG state, and loss history there.

Guarantees:

* **Atomicity** — a checkpoint either exists completely or not at all
  (write-to-temp + fsync + ``os.replace``); a SIGKILL mid-save cannot
  leave a half-written newest checkpoint.
* **Retention** — only the newest ``keep`` checkpoints are kept; older
  ones are pruned after each successful save.
* **Corruption skip** — :meth:`load_latest` verifies checksums and falls
  back to the previous good checkpoint (with a ``UserWarning``) when the
  newest one is damaged on disk.
* **Compatibility** — a manager constructed with a config fingerprint
  refuses (``ArtifactIncompatible``) to resume checkpoints written under
  a different configuration, instead of silently continuing a different
  training run.

Array-key conventions inside a trainer checkpoint: learner weights ride
under ``obs.*``/``trans.*``, optimizer slots under ``opt.*``, and the
trainer's EMA shadow weight set under ``ema.*`` (one ``ema.``-prefixed
array per tracked parameter — ``docs/robustness.md`` documents the
resume invariants; the shadow set must survive a resume byte-identically
just like the raw weights).
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import ArtifactCorrupt, ArtifactIncompatible
from repro.nn.serialization import read_artifact, write_artifact

CHECKPOINT_KIND = "lhmm-checkpoint"

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.npz$")


class CheckpointManager:
    """Numbered, validated checkpoints in one directory.

    Args:
        directory: Where checkpoints live; created if missing.
        keep: How many of the newest checkpoints to retain (>= 1).
        config_fingerprint: When given, stored in every checkpoint and
            required to match on load — a mismatch raises
            :class:`~repro.errors.ArtifactIncompatible`.
    """

    def __init__(
        self,
        directory: str | Path,
        keep: int = 3,
        config_fingerprint: str | None = None,
    ) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.config_fingerprint = config_fingerprint
        self._counter = max(
            (number for number, _ in self._numbered()), default=-1
        )

    # ------------------------------------------------------------------ paths
    def _numbered(self) -> list[tuple[int, Path]]:
        """``(number, path)`` of every checkpoint file, oldest first."""
        found = []
        for path in self.directory.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                found.append((int(match.group(1)), path))
        return sorted(found)

    def checkpoints(self) -> list[Path]:
        """Checkpoint paths, oldest first."""
        return [path for _, path in self._numbered()]

    # ------------------------------------------------------------------- save
    def save(self, arrays: Mapping[str, np.ndarray], meta: Mapping[str, Any]) -> Path:
        """Atomically write the next checkpoint; prunes beyond ``keep``."""
        meta = dict(meta)
        if self.config_fingerprint is not None:
            meta["config_fingerprint"] = self.config_fingerprint
        self._counter += 1
        path = self.directory / f"ckpt-{self._counter:08d}.npz"
        write_artifact(path, arrays, kind=CHECKPOINT_KIND, meta=meta)
        self._prune()
        return path

    def _prune(self) -> None:
        numbered = self._numbered()
        for _, path in numbered[: max(0, len(numbered) - self.keep)]:
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------- load
    def load_latest(self) -> tuple[dict[str, np.ndarray], dict[str, Any]] | None:
        """The newest *intact* checkpoint as ``(arrays, meta)``.

        A corrupt newest checkpoint is skipped with a warning and the
        previous good one is returned; ``None`` when no usable checkpoint
        exists.  A checkpoint written under a different configuration
        fingerprint raises ``ArtifactIncompatible`` — that is operator
        error, not corruption, and must not be silently skipped.
        """
        for _, path in reversed(self._numbered()):
            try:
                artifact = read_artifact(path, kind=CHECKPOINT_KIND)
            except ArtifactCorrupt as error:
                warnings.warn(
                    f"skipping corrupt checkpoint {path.name}: {error}",
                    UserWarning,
                    stacklevel=2,
                )
                continue
            meta = artifact.meta
            stored = meta.get("config_fingerprint")
            if (
                self.config_fingerprint is not None
                and stored is not None
                and stored != self.config_fingerprint
            ):
                raise ArtifactIncompatible(
                    f"checkpoint {path} was written under config fingerprint "
                    f"{stored} but this run uses {self.config_fingerprint}; "
                    "use a fresh --checkpoint-dir or matching settings"
                )
            return artifact.arrays, meta
        return None


__all__ = ["CheckpointManager", "CHECKPOINT_KIND"]
