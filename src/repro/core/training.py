"""Training loops for the learned probabilities (§IV-D, "Training Process").

The paper trains each learner in two stages:

* **Observation** — (1) classification pre-training of the implicit
  point–road correlation: for each point, the co-occurring ground-truth road
  is the positive class against under-sampled surrounding negatives
  (cross-entropy with label smoothing); the Het-Graph encoder trains
  end-to-end through this stage.  (2) Fine-tuning of the fusion MLP on
  binary on-path labels with the implicit score frozen.
* **Transition** — (1) classification of roads as belonging/not belonging to
  the trajectory (binary cross-entropy) on top of the *frozen* embeddings;
  (2) fine-tuning of the fusion MLP to predict the ratio of traveled roads
  in sampled moving paths.

Durability (``docs/robustness.md``): the four stages run under a single
epoch-cursor driver.  With a :class:`~repro.core.checkpoint.CheckpointManager`
attached, the driver persists per-stage state after every epoch — stage
and epoch cursors, all module weights, optimizer slots, the RNG state,
the loss history, and any per-stage training data — so a killed run
resumed from its checkpoint directory produces a final model
*bit-identical* to an uninterrupted one.  A divergence guard around every
gradient step (non-finite loss, non-finite/exploding gradient norm)
rolls training back to the last good checkpoint with a reduced learning
rate, bounded by ``LHMMConfig.max_rollbacks``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.candidates import learned_candidate_pool, spatial_candidate_pool
from repro.core.checkpoint import CheckpointManager
from repro.core.config import LHMMConfig
from repro.core.features import observation_feature_matrix, transition_features
from repro.core.observation import ObservationLearner
from repro.core.relation_graph import RelationGraph
from repro.core.transition import TransitionLearner
from repro.datasets.dataset import MatchingSample
from repro.errors import TrainingDiverged
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.functional import stack
from repro.nn.loss import binary_cross_entropy_with_logits, cross_entropy_with_label_smoothing
from repro.network.shortest_path import ShortestPathEngine
from repro.testing import faults
from repro.utils import ensure_rng


@dataclass(slots=True)
class TrainingReport:
    """Loss trajectories of the four training stages."""

    observation_pretrain: list[float] = field(default_factory=list)
    observation_finetune: list[float] = field(default_factory=list)
    transition_pretrain: list[float] = field(default_factory=list)
    transition_finetune: list[float] = field(default_factory=list)


def _point_positive_roads(
    graph: RelationGraph, sample: MatchingSample
) -> list[tuple[int, int]]:
    """``(point_index, positive_segment)`` pairs for one sample.

    The positive of a point is the truth-path road closest to its tower —
    the same criterion used to mine co-occurrence edges.
    """
    pairs: list[tuple[int, int]] = []
    if not sample.truth_path:
        return pairs
    truth_segments = [graph.network.segments[s] for s in sample.truth_path]
    for i, point in enumerate(sample.cellular.points):
        best = min(
            range(len(truth_segments)),
            key=lambda j: truth_segments[j].distance_to(point.position),
        )
        pairs.append((i, sample.truth_path[best]))
    return pairs


@dataclass(slots=True)
class _StageRuntime:
    """Live per-stage state: the optimizer and checkpoint-persisted data."""

    optimizer: Adam
    data: dict[str, np.ndarray]


@dataclass(slots=True)
class _StageSpec:
    """One training stage under the epoch-cursor driver.

    ``prepare`` builds the optimizer (RNG-free; ``None`` skips the
    stage), ``collect`` gathers per-stage training data (may consume
    RNG; ``None`` skips the stage), ``epoch`` runs one epoch and returns
    its step losses, ``finish`` runs once when the stage completes.
    """

    name: str
    report_field: str
    epochs: int
    prepare: Callable[[], Adam | None]
    collect: Callable[[], dict[str, np.ndarray] | None]
    epoch: Callable[[_StageRuntime, int], list[float]]
    finish: Callable[[], None] | None = None


class LHMMTrainer:
    """Runs the four-stage training procedure and caches final embeddings."""

    def __init__(
        self,
        config: LHMMConfig,
        graph: RelationGraph,
        encoder: Module,
        observation: ObservationLearner,
        transition: TransitionLearner,
        engine: ShortestPathEngine,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config
        self.graph = graph
        self.encoder = encoder
        self.observation = observation
        self.transition = transition
        self.engine = engine
        self._rng = ensure_rng(rng)
        self.node_embeddings: np.ndarray | None = None
        # EMA shadow weight set: one float64 shadow per trainable
        # parameter, nudged toward the raw weights after every optimizer
        # step.  Consumes no RNG (raw training is unchanged by it) and
        # travels in every checkpoint (``ema.*``), so resume, rollback,
        # and the retention sweep all keep it bit-identical.
        self._ema: dict[str, np.ndarray] = {
            name: param.data.copy() for name, param in self._tracked_parameters()
        }
        # Candidate pools are repeatedly needed for the same points across
        # epochs and stages; cache them per (sample, point).
        self._pool_cache: dict[tuple[int, int], list[int]] = {}
        # Divergence-rollback bookkeeping (persisted in checkpoints).
        self._rollbacks = 0
        self._lr_scale = 1.0

    # ----------------------------------------------------------------- driver
    def train(
        self,
        samples: list[MatchingSample],
        checkpoint: CheckpointManager | None = None,
        resume: bool = True,
    ) -> TrainingReport:
        """Run all stages on ``samples``; returns the loss report.

        With ``checkpoint`` attached, state is persisted after every
        epoch and — when ``resume`` is true and the directory holds a
        usable checkpoint — training continues mid-stage from it instead
        of starting over.  A resumed run is bit-identical to an
        uninterrupted one: the RNG state travels in the checkpoint.
        """
        samples = [s for s in samples if len(s.cellular) >= 2 and s.truth_path]
        if not samples:
            raise ValueError("no usable training samples")
        report = TrainingReport()
        specs = self._stage_specs(samples)
        stage_idx, epoch_idx = 0, 0
        runtime: _StageRuntime | None = None
        resumed = False
        if checkpoint is not None and resume:
            loaded = checkpoint.load_latest()
            if loaded is not None:
                stage_idx, epoch_idx, runtime = self._restore(
                    loaded[0], loaded[1], specs, report
                )
                resumed = True
        if checkpoint is not None and not resumed:
            # An epoch-0 anchor so the very first epoch has a rollback target.
            checkpoint.save(
                self._snapshot_arrays(None), self._snapshot_meta(0, 0, None, report)
            )
        while stage_idx < len(specs):
            spec = specs[stage_idx]
            if runtime is None:
                optimizer = spec.prepare()
                data = spec.collect() if optimizer is not None else None
                if optimizer is None or data is None:
                    # Nothing to train in this stage (ablated learner or
                    # no usable data): its report list stays empty.
                    if spec.finish is not None:
                        spec.finish()
                    stage_idx += 1
                    epoch_idx = 0
                    continue
                if self._lr_scale != 1.0:
                    optimizer.lr *= self._lr_scale
                runtime = _StageRuntime(optimizer=optimizer, data=data)
            if epoch_idx >= spec.epochs:
                if spec.finish is not None:
                    spec.finish()
                stage_idx += 1
                epoch_idx = 0
                runtime = None
                continue
            faults.fire("train.epoch", stage=spec.name, epoch=epoch_idx)
            try:
                losses = spec.epoch(runtime, epoch_idx)
            except TrainingDiverged as error:
                stage_idx, epoch_idx, runtime = self._roll_back(
                    checkpoint, specs, report, error
                )
                continue
            getattr(report, spec.report_field).extend(losses)
            epoch_idx += 1
            if checkpoint is not None:
                checkpoint.save(
                    self._snapshot_arrays(runtime),
                    self._snapshot_meta(stage_idx, epoch_idx, runtime, report),
                )
        return report

    def _roll_back(
        self,
        checkpoint: CheckpointManager | None,
        specs: list[_StageSpec],
        report: TrainingReport,
        error: TrainingDiverged,
    ) -> tuple[int, int, _StageRuntime | None]:
        """Restore the last good checkpoint with a reduced learning rate."""
        if checkpoint is None:
            raise TrainingDiverged(
                f"{error} (no checkpoint directory attached — cannot roll back)"
            ) from error
        if self._rollbacks >= self.config.max_rollbacks:
            raise TrainingDiverged(
                f"{error}; rollback budget exhausted "
                f"({self.config.max_rollbacks} rollbacks)"
            ) from error
        loaded = checkpoint.load_latest()
        if loaded is None:
            raise TrainingDiverged(
                f"{error} (no checkpoint on disk to roll back to)"
            ) from error
        stage_idx, epoch_idx, runtime = self._restore(
            loaded[0], loaded[1], specs, report
        )
        self._rollbacks += 1
        self._lr_scale *= self.config.rollback_lr_factor
        if runtime is not None:
            runtime.optimizer.lr *= self.config.rollback_lr_factor
        return stage_idx, epoch_idx, runtime

    # --------------------------------------------------------------- snapshot
    def _snapshot_arrays(self, runtime: _StageRuntime | None) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for prefix, module in (
            ("weights.encoder", self.encoder),
            ("weights.obs", self.observation),
            ("weights.trans", self.transition),
        ):
            for key, value in module.state_dict().items():
                arrays[f"{prefix}.{key}"] = value
        if self.node_embeddings is not None:
            arrays["embeddings"] = self.node_embeddings
        for key, value in self._ema.items():
            arrays[f"ema.{key}"] = value
        if runtime is not None:
            for key, value in runtime.optimizer.state_dict().items():
                arrays[f"opt.{key}"] = value
            for key, value in runtime.data.items():
                arrays[f"data.{key}"] = value
        return arrays

    def _snapshot_meta(
        self,
        stage_idx: int,
        epoch_idx: int,
        runtime: _StageRuntime | None,
        report: TrainingReport,
    ) -> dict:
        return {
            "stage": stage_idx,
            "epochs_done": epoch_idx,
            "has_runtime": runtime is not None,
            "rollbacks": self._rollbacks,
            "lr_scale": self._lr_scale,
            "rng_state": self._rng.bit_generator.state,
            "report": {
                "observation_pretrain": report.observation_pretrain,
                "observation_finetune": report.observation_finetune,
                "transition_pretrain": report.transition_pretrain,
                "transition_finetune": report.transition_finetune,
            },
        }

    def _restore(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict,
        specs: list[_StageSpec],
        report: TrainingReport,
    ) -> tuple[int, int, _StageRuntime | None]:
        """Load checkpoint state into the trainer; returns the cursor."""
        for prefix, module in (
            ("weights.encoder.", self.encoder),
            ("weights.obs.", self.observation),
            ("weights.trans.", self.transition),
        ):
            module.load_state_dict(
                {
                    key[len(prefix):]: value
                    for key, value in arrays.items()
                    if key.startswith(prefix)
                }
            )
        self.node_embeddings = (
            arrays["embeddings"].copy() if "embeddings" in arrays else None
        )
        self._ema = {
            key[len("ema."):]: value.copy()
            for key, value in arrays.items()
            if key.startswith("ema.")
        }
        if not self._ema:  # legacy checkpoint without a shadow set
            self._ema = {
                name: param.data.copy() for name, param in self._tracked_parameters()
            }
        self._rng.bit_generator.state = meta["rng_state"]
        self._rollbacks = int(meta.get("rollbacks", 0))
        self._lr_scale = float(meta.get("lr_scale", 1.0))
        saved = meta.get("report", {})
        for field_name in (
            "observation_pretrain",
            "observation_finetune",
            "transition_pretrain",
            "transition_finetune",
        ):
            target = getattr(report, field_name)
            target.clear()
            target.extend(float(x) for x in saved.get(field_name, []))
        stage_idx = int(meta["stage"])
        epoch_idx = int(meta["epochs_done"])
        runtime: _StageRuntime | None = None
        if meta.get("has_runtime"):
            optimizer = specs[stage_idx].prepare()
            if optimizer is None:  # pragma: no cover - checkpoint/config skew
                raise TrainingDiverged(
                    f"checkpoint resumes stage {specs[stage_idx].name!r} which "
                    "this configuration skips"
                )
            optimizer.load_state_dict(
                {
                    key[len("opt."):]: value
                    for key, value in arrays.items()
                    if key.startswith("opt.")
                }
            )
            data = {
                key[len("data."):]: value.copy()
                for key, value in arrays.items()
                if key.startswith("data.")
            }
            runtime = _StageRuntime(optimizer=optimizer, data=data)
        return stage_idx, epoch_idx, runtime

    # ------------------------------------------------------------ stage specs
    def _stage_specs(self, samples: list[MatchingSample]) -> list[_StageSpec]:
        cfg = self.config
        return [
            _StageSpec(
                name="observation_pretrain",
                report_field="observation_pretrain",
                epochs=cfg.epochs,
                prepare=self._prepare_observation_pretrain,
                collect=lambda: {"order": np.arange(len(samples))},
                epoch=lambda rt, e: self._observation_pretrain_epoch(rt, samples, e),
                finish=self._freeze_embeddings,
            ),
            _StageSpec(
                name="observation_finetune",
                report_field="observation_finetune",
                epochs=max(1, cfg.epochs),
                prepare=lambda: Adam(
                    self.observation.fusion_mlp.parameters(),
                    lr=cfg.learning_rate,
                    weight_decay=cfg.weight_decay,
                ),
                collect=lambda: self._collect_stage_data(
                    self._collect_observation_fusion_data, samples, "labels"
                ),
                epoch=lambda rt, e: self._fusion_epoch(
                    rt,
                    self.observation.fusion_mlp,
                    "labels",
                    cfg.label_smoothing,
                    "observation_finetune",
                    e,
                ),
            ),
            _StageSpec(
                name="transition_pretrain",
                report_field="transition_pretrain",
                epochs=cfg.epochs,
                prepare=self._prepare_transition_pretrain,
                collect=lambda: {"order": np.arange(len(samples))},
                epoch=lambda rt, e: self._transition_pretrain_epoch(rt, samples, e),
            ),
            _StageSpec(
                name="transition_finetune",
                report_field="transition_finetune",
                epochs=max(1, cfg.epochs),
                prepare=lambda: Adam(
                    self.transition.fusion_mlp.parameters(),
                    lr=cfg.learning_rate,
                    weight_decay=cfg.weight_decay,
                ),
                collect=lambda: self._collect_stage_data(
                    self._collect_transition_fusion_data, samples, "targets"
                ),
                epoch=lambda rt, e: self._fusion_epoch(
                    rt,
                    self.transition.fusion_mlp,
                    "targets",
                    0.0,
                    "transition_finetune",
                    e,
                ),
            ),
        ]

    def _prepare_observation_pretrain(self) -> Adam:
        params = self.encoder.parameters() + list(
            self.observation.context_attention.parameters()
        ) + list(self.observation.correlation_mlp.parameters())
        # Note: this stage runs even under the LHMM-O ablation — it is the
        # representation-learning task that trains the encoder, which the
        # transition learner still depends on.  LHMM-O only removes the
        # implicit score from the fusion input (Eq. 8).
        return Adam(
            params, lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )

    def _prepare_transition_pretrain(self) -> Adam | None:
        if not self.transition.use_implicit:
            return None
        params = list(self.transition.road_attention.parameters()) + list(
            self.transition.relevance_mlp.parameters()
        )
        return Adam(
            params, lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )

    def _collect_stage_data(
        self, collector, samples: list[MatchingSample], label_key: str
    ) -> dict[str, np.ndarray] | None:
        features, labels = collector(samples)
        if features is None:
            return None
        return {"features": features, label_key: np.asarray(labels)}

    # ------------------------------------------------------- divergence guard
    def _guarded_step(
        self, optimizer: Adam, loss: Tensor, stage: str, epoch: int, step: int
    ) -> float:
        """Backward + step with NaN/inf and gradient-norm detection.

        Raises :class:`~repro.errors.TrainingDiverged` on a non-finite
        loss, a non-finite gradient norm, or a norm beyond
        ``LHMMConfig.divergence_grad_norm`` — the driver rolls back to
        the last good checkpoint with a reduced learning rate.
        """
        value = loss.item()
        faults.fire("train.step", stage=stage, epoch=epoch, step=step)
        if not math.isfinite(value):
            raise TrainingDiverged(
                f"non-finite loss {value!r} at stage {stage!r} epoch {epoch} "
                f"step {step}"
            )
        optimizer.zero_grad()
        loss.backward()
        total = 0.0
        for param in optimizer.parameters:
            if param.grad is not None:
                total += float((param.grad**2).sum())
        norm = math.sqrt(total) if math.isfinite(total) else float("inf")
        limit = self.config.divergence_grad_norm
        if not math.isfinite(norm) or (limit > 0 and norm > limit):
            raise TrainingDiverged(
                f"gradient norm {norm!r} at stage {stage!r} epoch {epoch} "
                f"step {step} (limit {limit})"
            )
        optimizer.step()
        self._ema_update()
        return value

    # ----------------------------------------------------- EMA shadow weights
    def _tracked_parameters(self):
        """``(dotted_name, Parameter)`` pairs across all three modules."""
        for prefix, module in (
            ("encoder", self.encoder),
            ("obs", self.observation),
            ("trans", self.transition),
        ):
            for name, param in module.named_parameters():
                yield f"{prefix}.{name}", param

    def _ema_update(self) -> None:
        """Nudge every shadow toward its raw weight after a step.

        The update is ``shadow += (1 - decay) * (weight - shadow)``: for
        a parameter the step did not change (frozen, or in another
        stage's optimizer) the difference is exactly zero, so the shadow
        of an untouched weight is bitwise-stable — the invariant the EMA
        determinism tests pin.
        """
        decay = self.config.ema_decay
        for name, param in self._tracked_parameters():
            shadow = self._ema[name]
            shadow += (1.0 - decay) * (param.data - shadow)

    def ema_state(self) -> dict[str, np.ndarray]:
        """Copy of the shadow set keyed ``encoder.*``/``obs.*``/``trans.*``."""
        return {name: value.copy() for name, value in self._ema.items()}

    def ema_node_embeddings(self) -> np.ndarray:
        """Encoder output under the EMA encoder weights.

        Swaps the shadow encoder weights in, runs one forward pass, and
        swaps the raw weights back.  :meth:`Module.load_state_dict`
        round-trips float64 arrays bitwise, so the raw weights are
        untouched by the excursion.
        """
        raw = self.encoder.state_dict()
        self.encoder.load_state_dict(
            {
                key[len("encoder."):]: value
                for key, value in self._ema.items()
                if key.startswith("encoder.")
            }
        )
        try:
            with no_grad():
                embeddings = self.encoder().numpy().copy()
        finally:
            self.encoder.load_state_dict(raw)
        return embeddings

    def ema_artifact_arrays(self) -> dict[str, np.ndarray]:
        """The EMA weight set in artifact layout.

        Mirrors what :meth:`LHMM.save` stores for the raw set:
        ``node_embeddings`` (the encoder forward under EMA weights — the
        encoder itself is never reconstructed at load time) plus the
        ``obs.*``/``trans.*`` learner weights.
        """
        arrays = {"node_embeddings": self.ema_node_embeddings()}
        for key, value in self._ema.items():
            if key.startswith(("obs.", "trans.")):
                arrays[key] = value.copy()
        return arrays

    def _freeze_embeddings(self) -> None:
        """Cache encoder output; later stages and inference reuse it."""
        with no_grad():
            self.node_embeddings = self.encoder().numpy().copy()

    def _embeddings_tensor(self) -> Tensor:
        if self.node_embeddings is None:
            raise RuntimeError("embeddings not frozen yet")
        return Tensor(self.node_embeddings)

    def _point_pool(self, sample: MatchingSample, point_index: int) -> list[int]:
        """Cached learned candidate pool for one trajectory point."""
        key = (sample.sample_id, point_index)
        pool = self._pool_cache.get(key)
        if pool is None:
            pool = learned_candidate_pool(
                self.graph,
                sample.cellular.points[point_index],
                self.config.candidate_radius_m,
                self.config.candidate_pool,
                include_cooccurrence=self.config.extend_pool_with_cooccurrence,
            )
            self._pool_cache[key] = pool
        return pool

    def _spatial_pool(self, sample: MatchingSample, point_index: int) -> list[int]:
        """Cached distance-ordered pool (no co-occurrence extension).

        Stage-1 negatives must come from the spatial vicinity only:
        extending them with the tower's co-occurring roads would label the
        co-occurrence signal itself as negative and wash it out.
        """
        key = (-sample.sample_id - 1, point_index)
        pool = self._pool_cache.get(key)
        if pool is None:
            pool = spatial_candidate_pool(
                self.graph.network,
                sample.cellular.points[point_index],
                self.config.candidate_radius_m,
                self.config.candidate_pool,
            )
            self._pool_cache[key] = pool
        return pool

    # -------------------------------------------------- stage 1: obs pretrain
    def _sample_negatives(
        self, sample: MatchingSample, point_index: int, exclude: set[int], count: int
    ) -> list[int]:
        pool = self._spatial_pool(sample, point_index)
        negatives = [seg for seg in pool if seg not in exclude]
        if len(negatives) > count:
            picks = self._rng.choice(len(negatives), size=count, replace=False)
            negatives = [negatives[int(p)] for p in picks]
        return negatives

    def _observation_pretrain_epoch(
        self, runtime: _StageRuntime, samples: list[MatchingSample], epoch: int
    ) -> list[float]:
        # The order array lives in the stage runtime (and checkpoints):
        # each epoch shuffles it *in place*, so epoch k sees the
        # composition of k shuffles, exactly as the original loop did.
        order = runtime.data["order"]
        self._rng.shuffle(order)
        losses: list[float] = []
        step = 0
        for start in range(0, len(order), self.config.batch_size):
            batch = [samples[int(i)] for i in order[start : start + self.config.batch_size]]
            loss = self._observation_pretrain_loss(batch)
            if loss is None:
                continue
            losses.append(
                self._guarded_step(
                    runtime.optimizer, loss, "observation_pretrain", epoch, step
                )
            )
            step += 1
        return losses

    def _observation_pretrain_loss(self, batch: list[MatchingSample]) -> Tensor | None:
        h = self.encoder()
        per_point_losses: list[Tensor] = []
        for sample in batch:
            towers = [p.tower_id for p in sample.cellular.points]
            if any(t is None for t in towers):
                continue
            tower_nodes = self.graph.tower_nodes(towers)  # type: ignore[arg-type]
            x = h[tower_nodes]
            context = self.observation.context(x)
            truth_set = set(sample.truth_path)
            for point_index, positive in _point_positive_roads(self.graph, sample):
                negatives = self._sample_negatives(
                    sample, point_index, truth_set, self.config.negatives_per_positive
                )
                if not negatives:
                    continue
                roads = [positive, *negatives]
                road_embeddings = h[self.graph.segment_nodes(roads)]
                logits = self.observation.implicit_logits(
                    road_embeddings, context[point_index]
                )
                loss = cross_entropy_with_label_smoothing(
                    logits.reshape(1, len(roads)),
                    np.array([0]),
                    self.config.label_smoothing,
                )
                per_point_losses.append(loss)
        if not per_point_losses:
            return None
        return stack(per_point_losses).mean()

    # ------------------------------------------- stages 2+4: fusion fine-tune
    def _fusion_epoch(
        self,
        runtime: _StageRuntime,
        fusion_mlp: Module,
        label_key: str,
        smoothing: float,
        stage: str,
        epoch: int,
    ) -> list[float]:
        features = runtime.data["features"]
        labels = runtime.data[label_key]
        n = features.shape[0]
        batch = max(64, self.config.batch_size * 16)
        order = self._rng.permutation(n)
        losses: list[float] = []
        for step, start in enumerate(range(0, n, batch)):
            idx = order[start : start + batch]
            logits = fusion_mlp(Tensor(features[idx]))
            loss = binary_cross_entropy_with_logits(
                logits.reshape(len(idx)), labels[idx], smoothing
            )
            losses.append(
                self._guarded_step(runtime.optimizer, loss, stage, epoch, step)
            )
        return losses

    def _collect_observation_fusion_data(
        self, samples: list[MatchingSample]
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        h = self._embeddings_tensor()
        rows: list[np.ndarray] = []
        labels: list[float] = []
        with no_grad():
            for sample in samples:
                towers = [p.tower_id for p in sample.cellular.points]
                if any(t is None for t in towers):
                    continue
                x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
                context = self.observation.context(x).numpy()
                truth_set = set(sample.truth_path)
                for i, point in enumerate(sample.cellular.points):
                    pool = self._point_pool(sample, i)
                    if not pool:
                        continue
                    # Features over the FULL pool (rank features must see the
                    # same pool they will see at inference), then
                    # under-sample negatives to keep labels balanced.
                    explicit = observation_feature_matrix(
                        self.graph,
                        point,
                        pool,
                        include_ranks=self.config.use_rank_features,
                    )
                    pos_idx = [j for j, seg in enumerate(pool) if seg in truth_set]
                    neg_idx = [j for j, seg in enumerate(pool) if seg not in truth_set]
                    keep = min(len(neg_idx), max(1, 3 * max(1, len(pos_idx))))
                    if keep < len(neg_idx):
                        picks = self._rng.choice(len(neg_idx), size=keep, replace=False)
                        neg_idx = [neg_idx[int(p)] for p in picks]
                    chosen = pos_idx + neg_idx
                    if not chosen:
                        continue
                    explicit = explicit[chosen]
                    if self.observation.use_implicit:
                        roads = [pool[j] for j in chosen]
                        embeddings = h[self.graph.segment_nodes(roads)]
                        implicit = (
                            self.observation.implicit_logits(
                                embeddings, Tensor(context[i])
                            )
                            .sigmoid()
                            .numpy()
                            .reshape(-1, 1)
                        )
                        rows.append(np.concatenate([implicit, explicit], axis=1))
                    else:
                        rows.append(explicit)
                    labels.extend([1.0] * len(pos_idx) + [0.0] * len(neg_idx))
        if not rows:
            return None, None
        return np.concatenate(rows, axis=0), np.asarray(labels)

    # ------------------------------------------------ stage 3: trans pretrain
    def _transition_pretrain_epoch(
        self, runtime: _StageRuntime, samples: list[MatchingSample], epoch: int
    ) -> list[float]:
        h = self._embeddings_tensor()
        order = runtime.data["order"]
        self._rng.shuffle(order)
        losses: list[float] = []
        step = 0
        for start in range(0, len(order), self.config.batch_size):
            batch = [samples[int(i)] for i in order[start : start + self.config.batch_size]]
            loss = self._transition_pretrain_loss(batch, h)
            if loss is None:
                continue
            losses.append(
                self._guarded_step(
                    runtime.optimizer, loss, "transition_pretrain", epoch, step
                )
            )
            step += 1
        return losses

    def _transition_pretrain_loss(
        self, batch: list[MatchingSample], h: Tensor
    ) -> Tensor | None:
        per_sample: list[Tensor] = []
        for sample in batch:
            towers = [p.tower_id for p in sample.cellular.points]
            if any(t is None for t in towers):
                continue
            x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
            truth = list(dict.fromkeys(sample.truth_path))
            if not truth:
                continue
            max_pos = 24
            if len(truth) > max_pos:
                picks = self._rng.choice(len(truth), size=max_pos, replace=False)
                truth = [truth[int(p)] for p in picks]
            negatives = self._off_path_roads(sample, set(sample.truth_path), len(truth))
            roads = truth + negatives
            labels = np.array([1.0] * len(truth) + [0.0] * len(negatives))
            embeddings = h[self.graph.segment_nodes(roads)]
            logits = self.transition.road_relevance_logits(embeddings, x)
            per_sample.append(
                binary_cross_entropy_with_logits(logits, labels, self.config.label_smoothing)
            )
        if not per_sample:
            return None
        return stack(per_sample).mean()

    def _off_path_roads(
        self, sample: MatchingSample, truth_set: set[int], count: int
    ) -> list[int]:
        """Roads near the trajectory but not on the truth path."""
        negatives: list[int] = []
        seen: set[int] = set()
        for i in range(len(sample.cellular)):
            for seg in self._point_pool(sample, i)[:20]:
                if seg not in truth_set and seg not in seen:
                    seen.add(seg)
                    negatives.append(seg)
        if len(negatives) > count:
            picks = self._rng.choice(len(negatives), size=count, replace=False)
            negatives = [negatives[int(p)] for p in picks]
        return negatives

    # ------------------------------------------------ stage 4: trans finetune
    def _collect_transition_fusion_data(
        self, samples: list[MatchingSample]
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        h = self._embeddings_tensor()
        rows: list[np.ndarray] = []
        targets: list[float] = []
        transitions_per_pair = 4
        with no_grad():
            for sample in samples:
                towers = [p.tower_id for p in sample.cellular.points]
                if any(t is None for t in towers) or len(sample.cellular) < 2:
                    continue
                x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
                relevance = self._road_relevance_lookup(sample, x, h)
                truth_set = set(sample.truth_path)
                points = sample.cellular.points
                for i in range(1, len(points)):
                    pairs = self._sample_transition_pairs(
                        sample, i, transitions_per_pair
                    )
                    for from_seg, to_seg in pairs:
                        route = self.engine.route(from_seg, to_seg)
                        if route is None:
                            continue
                        on_path = sum(1 for s in route.segments if s in truth_set)
                        target = on_path / route.num_segments
                        explicit = transition_features(
                            self.graph.network, route, points[i - 1], points[i]
                        )
                        if self.transition.use_implicit:
                            implicit = float(
                                np.mean([relevance.get(s, 0.5) for s in route.segments])
                            )
                            rows.append(np.concatenate([[implicit], explicit]))
                        else:
                            rows.append(explicit)
                        targets.append(target)
        if not rows:
            return None, None
        return np.stack(rows), np.asarray(targets)

    def _road_relevance_lookup(
        self, sample: MatchingSample, x: Tensor, h: Tensor
    ) -> dict[int, float]:
        """Per-road relevance probabilities for roads near this sample."""
        if not self.transition.use_implicit:
            return {}
        roads: list[int] = []
        seen: set[int] = set()
        for i in range(len(sample.cellular)):
            for seg in self._point_pool(sample, i)[:40]:
                if seg not in seen:
                    seen.add(seg)
                    roads.append(seg)
        for seg in sample.truth_path:
            if seg not in seen:
                seen.add(seg)
                roads.append(seg)
        if not roads:
            return {}
        embeddings = h[self.graph.segment_nodes(roads)]
        probs = self.transition.road_relevance_logits(embeddings, x).sigmoid().numpy()
        return dict(zip(roads, probs.tolist()))

    def _sample_transition_pairs(
        self, sample: MatchingSample, i: int, count: int
    ) -> list[tuple[int, int]]:
        """Candidate transitions for the step into point ``i``.

        Mixes the true transition (closest truth roads of both points) with
        random pool pairs so targets span the full [0, 1] range.
        """
        prev_pool = self._point_pool(sample, i - 1)[:20]
        next_pool = self._point_pool(sample, i)[:20]
        if not prev_pool or not next_pool:
            return []
        pairs: list[tuple[int, int]] = []
        truth_set = set(sample.truth_path)
        prev_truth = [s for s in prev_pool if s in truth_set]
        next_truth = [s for s in next_pool if s in truth_set]
        if prev_truth and next_truth:
            pairs.append((prev_truth[0], next_truth[0]))
        while len(pairs) < count:
            pairs.append(
                (
                    prev_pool[int(self._rng.integers(0, len(prev_pool)))],
                    next_pool[int(self._rng.integers(0, len(next_pool)))],
                )
            )
        return pairs
