"""Training loops for the learned probabilities (§IV-D, "Training Process").

The paper trains each learner in two stages:

* **Observation** — (1) classification pre-training of the implicit
  point–road correlation: for each point, the co-occurring ground-truth road
  is the positive class against under-sampled surrounding negatives
  (cross-entropy with label smoothing); the Het-Graph encoder trains
  end-to-end through this stage.  (2) Fine-tuning of the fusion MLP on
  binary on-path labels with the implicit score frozen.
* **Transition** — (1) classification of roads as belonging/not belonging to
  the trajectory (binary cross-entropy) on top of the *frozen* embeddings;
  (2) fine-tuning of the fusion MLP to predict the ratio of traveled roads
  in sampled moving paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidates import learned_candidate_pool, spatial_candidate_pool
from repro.core.config import LHMMConfig
from repro.core.features import observation_feature_matrix, transition_features
from repro.core.observation import ObservationLearner
from repro.core.relation_graph import RelationGraph
from repro.core.transition import TransitionLearner
from repro.datasets.dataset import MatchingSample
from repro.nn import Adam, Module, Tensor, no_grad
from repro.nn.functional import stack
from repro.nn.loss import binary_cross_entropy_with_logits, cross_entropy_with_label_smoothing
from repro.network.shortest_path import ShortestPathEngine
from repro.utils import ensure_rng


@dataclass(slots=True)
class TrainingReport:
    """Loss trajectories of the four training stages."""

    observation_pretrain: list[float] = field(default_factory=list)
    observation_finetune: list[float] = field(default_factory=list)
    transition_pretrain: list[float] = field(default_factory=list)
    transition_finetune: list[float] = field(default_factory=list)


def _point_positive_roads(
    graph: RelationGraph, sample: MatchingSample
) -> list[tuple[int, int]]:
    """``(point_index, positive_segment)`` pairs for one sample.

    The positive of a point is the truth-path road closest to its tower —
    the same criterion used to mine co-occurrence edges.
    """
    pairs: list[tuple[int, int]] = []
    if not sample.truth_path:
        return pairs
    truth_segments = [graph.network.segments[s] for s in sample.truth_path]
    for i, point in enumerate(sample.cellular.points):
        best = min(
            range(len(truth_segments)),
            key=lambda j: truth_segments[j].distance_to(point.position),
        )
        pairs.append((i, sample.truth_path[best]))
    return pairs


class LHMMTrainer:
    """Runs the four-stage training procedure and caches final embeddings."""

    def __init__(
        self,
        config: LHMMConfig,
        graph: RelationGraph,
        encoder: Module,
        observation: ObservationLearner,
        transition: TransitionLearner,
        engine: ShortestPathEngine,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config
        self.graph = graph
        self.encoder = encoder
        self.observation = observation
        self.transition = transition
        self.engine = engine
        self._rng = ensure_rng(rng)
        self.node_embeddings: np.ndarray | None = None
        # Candidate pools are repeatedly needed for the same points across
        # epochs and stages; cache them per (sample, point).
        self._pool_cache: dict[tuple[int, int], list[int]] = {}

    # ----------------------------------------------------------------- driver
    def train(self, samples: list[MatchingSample]) -> TrainingReport:
        """Run all stages on ``samples``; returns the loss report."""
        samples = [s for s in samples if len(s.cellular) >= 2 and s.truth_path]
        if not samples:
            raise ValueError("no usable training samples")
        report = TrainingReport()
        report.observation_pretrain = self._train_observation_pretrain(samples)
        self._freeze_embeddings()
        report.observation_finetune = self._train_observation_finetune(samples)
        report.transition_pretrain = self._train_transition_pretrain(samples)
        report.transition_finetune = self._train_transition_finetune(samples)
        return report

    def _freeze_embeddings(self) -> None:
        """Cache encoder output; later stages and inference reuse it."""
        with no_grad():
            self.node_embeddings = self.encoder().numpy().copy()

    def _embeddings_tensor(self) -> Tensor:
        if self.node_embeddings is None:
            raise RuntimeError("embeddings not frozen yet")
        return Tensor(self.node_embeddings)

    def _point_pool(self, sample: MatchingSample, point_index: int) -> list[int]:
        """Cached learned candidate pool for one trajectory point."""
        key = (sample.sample_id, point_index)
        pool = self._pool_cache.get(key)
        if pool is None:
            pool = learned_candidate_pool(
                self.graph,
                sample.cellular.points[point_index],
                self.config.candidate_radius_m,
                self.config.candidate_pool,
                include_cooccurrence=self.config.extend_pool_with_cooccurrence,
            )
            self._pool_cache[key] = pool
        return pool

    def _spatial_pool(self, sample: MatchingSample, point_index: int) -> list[int]:
        """Cached distance-ordered pool (no co-occurrence extension).

        Stage-1 negatives must come from the spatial vicinity only:
        extending them with the tower's co-occurring roads would label the
        co-occurrence signal itself as negative and wash it out.
        """
        key = (-sample.sample_id - 1, point_index)
        pool = self._pool_cache.get(key)
        if pool is None:
            pool = spatial_candidate_pool(
                self.graph.network,
                sample.cellular.points[point_index],
                self.config.candidate_radius_m,
                self.config.candidate_pool,
            )
            self._pool_cache[key] = pool
        return pool

    # -------------------------------------------------- stage 1: obs pretrain
    def _sample_negatives(
        self, sample: MatchingSample, point_index: int, exclude: set[int], count: int
    ) -> list[int]:
        pool = self._spatial_pool(sample, point_index)
        negatives = [seg for seg in pool if seg not in exclude]
        if len(negatives) > count:
            picks = self._rng.choice(len(negatives), size=count, replace=False)
            negatives = [negatives[int(p)] for p in picks]
        return negatives

    def _train_observation_pretrain(self, samples: list[MatchingSample]) -> list[float]:
        params = self.encoder.parameters() + list(
            self.observation.context_attention.parameters()
        ) + list(self.observation.correlation_mlp.parameters())
        optimizer = Adam(
            params, lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        # Note: this stage runs even under the LHMM-O ablation — it is the
        # representation-learning task that trains the encoder, which the
        # transition learner still depends on.  LHMM-O only removes the
        # implicit score from the fusion input (Eq. 8).
        losses: list[float] = []
        order = np.arange(len(samples))
        for _ in range(self.config.epochs):
            self._rng.shuffle(order)
            for start in range(0, len(order), self.config.batch_size):
                batch = [samples[int(i)] for i in order[start : start + self.config.batch_size]]
                loss = self._observation_pretrain_loss(batch)
                if loss is None:
                    continue
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        return losses

    def _observation_pretrain_loss(self, batch: list[MatchingSample]) -> Tensor | None:
        h = self.encoder()
        per_point_losses: list[Tensor] = []
        for sample in batch:
            towers = [p.tower_id for p in sample.cellular.points]
            if any(t is None for t in towers):
                continue
            tower_nodes = self.graph.tower_nodes(towers)  # type: ignore[arg-type]
            x = h[tower_nodes]
            context = self.observation.context(x)
            truth_set = set(sample.truth_path)
            for point_index, positive in _point_positive_roads(self.graph, sample):
                negatives = self._sample_negatives(
                    sample, point_index, truth_set, self.config.negatives_per_positive
                )
                if not negatives:
                    continue
                roads = [positive, *negatives]
                road_embeddings = h[self.graph.segment_nodes(roads)]
                logits = self.observation.implicit_logits(
                    road_embeddings, context[point_index]
                )
                loss = cross_entropy_with_label_smoothing(
                    logits.reshape(1, len(roads)),
                    np.array([0]),
                    self.config.label_smoothing,
                )
                per_point_losses.append(loss)
        if not per_point_losses:
            return None
        return stack(per_point_losses).mean()

    # -------------------------------------------------- stage 2: obs finetune
    def _train_observation_finetune(self, samples: list[MatchingSample]) -> list[float]:
        features, labels = self._collect_observation_fusion_data(samples)
        if features is None:
            return []
        optimizer = Adam(
            self.observation.fusion_mlp.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        losses: list[float] = []
        n = features.shape[0]
        batch = max(64, self.config.batch_size * 16)
        for _ in range(max(1, self.config.epochs)):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                logits = self.observation.fusion_mlp(Tensor(features[idx]))
                loss = binary_cross_entropy_with_logits(
                    logits.reshape(len(idx)), labels[idx], self.config.label_smoothing
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        return losses

    def _collect_observation_fusion_data(
        self, samples: list[MatchingSample]
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        h = self._embeddings_tensor()
        rows: list[np.ndarray] = []
        labels: list[float] = []
        with no_grad():
            for sample in samples:
                towers = [p.tower_id for p in sample.cellular.points]
                if any(t is None for t in towers):
                    continue
                x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
                context = self.observation.context(x).numpy()
                truth_set = set(sample.truth_path)
                for i, point in enumerate(sample.cellular.points):
                    pool = self._point_pool(sample, i)
                    if not pool:
                        continue
                    # Features over the FULL pool (rank features must see the
                    # same pool they will see at inference), then
                    # under-sample negatives to keep labels balanced.
                    explicit = observation_feature_matrix(
                        self.graph,
                        point,
                        pool,
                        include_ranks=self.config.use_rank_features,
                    )
                    pos_idx = [j for j, seg in enumerate(pool) if seg in truth_set]
                    neg_idx = [j for j, seg in enumerate(pool) if seg not in truth_set]
                    keep = min(len(neg_idx), max(1, 3 * max(1, len(pos_idx))))
                    if keep < len(neg_idx):
                        picks = self._rng.choice(len(neg_idx), size=keep, replace=False)
                        neg_idx = [neg_idx[int(p)] for p in picks]
                    chosen = pos_idx + neg_idx
                    if not chosen:
                        continue
                    explicit = explicit[chosen]
                    if self.observation.use_implicit:
                        roads = [pool[j] for j in chosen]
                        embeddings = h[self.graph.segment_nodes(roads)]
                        implicit = (
                            self.observation.implicit_logits(
                                embeddings, Tensor(context[i])
                            )
                            .sigmoid()
                            .numpy()
                            .reshape(-1, 1)
                        )
                        rows.append(np.concatenate([implicit, explicit], axis=1))
                    else:
                        rows.append(explicit)
                    labels.extend([1.0] * len(pos_idx) + [0.0] * len(neg_idx))
        if not rows:
            return None, None
        return np.concatenate(rows, axis=0), np.asarray(labels)

    # ------------------------------------------------ stage 3: trans pretrain
    def _train_transition_pretrain(self, samples: list[MatchingSample]) -> list[float]:
        if not self.transition.use_implicit:
            return []
        h = self._embeddings_tensor()
        params = list(self.transition.road_attention.parameters()) + list(
            self.transition.relevance_mlp.parameters()
        )
        optimizer = Adam(
            params, lr=self.config.learning_rate, weight_decay=self.config.weight_decay
        )
        losses: list[float] = []
        order = np.arange(len(samples))
        for _ in range(self.config.epochs):
            self._rng.shuffle(order)
            for start in range(0, len(order), self.config.batch_size):
                batch = [samples[int(i)] for i in order[start : start + self.config.batch_size]]
                loss = self._transition_pretrain_loss(batch, h)
                if loss is None:
                    continue
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        return losses

    def _transition_pretrain_loss(
        self, batch: list[MatchingSample], h: Tensor
    ) -> Tensor | None:
        per_sample: list[Tensor] = []
        for sample in batch:
            towers = [p.tower_id for p in sample.cellular.points]
            if any(t is None for t in towers):
                continue
            x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
            truth = list(dict.fromkeys(sample.truth_path))
            if not truth:
                continue
            max_pos = 24
            if len(truth) > max_pos:
                picks = self._rng.choice(len(truth), size=max_pos, replace=False)
                truth = [truth[int(p)] for p in picks]
            negatives = self._off_path_roads(sample, set(sample.truth_path), len(truth))
            roads = truth + negatives
            labels = np.array([1.0] * len(truth) + [0.0] * len(negatives))
            embeddings = h[self.graph.segment_nodes(roads)]
            logits = self.transition.road_relevance_logits(embeddings, x)
            per_sample.append(
                binary_cross_entropy_with_logits(logits, labels, self.config.label_smoothing)
            )
        if not per_sample:
            return None
        return stack(per_sample).mean()

    def _off_path_roads(
        self, sample: MatchingSample, truth_set: set[int], count: int
    ) -> list[int]:
        """Roads near the trajectory but not on the truth path."""
        negatives: list[int] = []
        seen: set[int] = set()
        for i in range(len(sample.cellular)):
            for seg in self._point_pool(sample, i)[:20]:
                if seg not in truth_set and seg not in seen:
                    seen.add(seg)
                    negatives.append(seg)
        if len(negatives) > count:
            picks = self._rng.choice(len(negatives), size=count, replace=False)
            negatives = [negatives[int(p)] for p in picks]
        return negatives

    # ------------------------------------------------ stage 4: trans finetune
    def _train_transition_finetune(self, samples: list[MatchingSample]) -> list[float]:
        features, targets = self._collect_transition_fusion_data(samples)
        if features is None:
            return []
        optimizer = Adam(
            self.transition.fusion_mlp.parameters(),
            lr=self.config.learning_rate,
            weight_decay=self.config.weight_decay,
        )
        losses: list[float] = []
        n = features.shape[0]
        batch = max(64, self.config.batch_size * 16)
        for _ in range(max(1, self.config.epochs)):
            order = self._rng.permutation(n)
            for start in range(0, n, batch):
                idx = order[start : start + batch]
                logits = self.transition.fusion_mlp(Tensor(features[idx]))
                loss = binary_cross_entropy_with_logits(
                    logits.reshape(len(idx)), targets[idx], smoothing=0.0
                )
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
        return losses

    def _collect_transition_fusion_data(
        self, samples: list[MatchingSample]
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        h = self._embeddings_tensor()
        rows: list[np.ndarray] = []
        targets: list[float] = []
        transitions_per_pair = 4
        with no_grad():
            for sample in samples:
                towers = [p.tower_id for p in sample.cellular.points]
                if any(t is None for t in towers) or len(sample.cellular) < 2:
                    continue
                x = h[self.graph.tower_nodes(towers)]  # type: ignore[arg-type]
                relevance = self._road_relevance_lookup(sample, x, h)
                truth_set = set(sample.truth_path)
                points = sample.cellular.points
                for i in range(1, len(points)):
                    pairs = self._sample_transition_pairs(
                        sample, i, transitions_per_pair
                    )
                    for from_seg, to_seg in pairs:
                        route = self.engine.route(from_seg, to_seg)
                        if route is None:
                            continue
                        on_path = sum(1 for s in route.segments if s in truth_set)
                        target = on_path / route.num_segments
                        explicit = transition_features(
                            self.graph.network, route, points[i - 1], points[i]
                        )
                        if self.transition.use_implicit:
                            implicit = float(
                                np.mean([relevance.get(s, 0.5) for s in route.segments])
                            )
                            rows.append(np.concatenate([[implicit], explicit]))
                        else:
                            rows.append(explicit)
                        targets.append(target)
        if not rows:
            return None, None
        return np.stack(rows), np.asarray(targets)

    def _road_relevance_lookup(
        self, sample: MatchingSample, x: Tensor, h: Tensor
    ) -> dict[int, float]:
        """Per-road relevance probabilities for roads near this sample."""
        if not self.transition.use_implicit:
            return {}
        roads: list[int] = []
        seen: set[int] = set()
        for i in range(len(sample.cellular)):
            for seg in self._point_pool(sample, i)[:40]:
                if seg not in seen:
                    seen.add(seg)
                    roads.append(seg)
        for seg in sample.truth_path:
            if seg not in seen:
                seen.add(seg)
                roads.append(seg)
        if not roads:
            return {}
        embeddings = h[self.graph.segment_nodes(roads)]
        probs = self.transition.road_relevance_logits(embeddings, x).sigmoid().numpy()
        return dict(zip(roads, probs.tolist()))

    def _sample_transition_pairs(
        self, sample: MatchingSample, i: int, count: int
    ) -> list[tuple[int, int]]:
        """Candidate transitions for the step into point ``i``.

        Mixes the true transition (closest truth roads of both points) with
        random pool pairs so targets span the full [0, 1] range.
        """
        prev_pool = self._point_pool(sample, i - 1)[:20]
        next_pool = self._point_pool(sample, i)[:20]
        if not prev_pool or not next_pool:
            return []
        pairs: list[tuple[int, int]] = []
        truth_set = set(sample.truth_path)
        prev_truth = [s for s in prev_pool if s in truth_set]
        next_truth = [s for s in next_pool if s in truth_set]
        if prev_truth and next_truth:
            pairs.append((prev_truth[0], next_truth[0]))
        while len(pairs) < count:
            pairs.append(
                (
                    prev_pool[int(self._rng.integers(0, len(prev_pool)))],
                    next_pool[int(self._rng.integers(0, len(next_pool)))],
                )
            )
        return pairs
