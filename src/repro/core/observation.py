"""The observation-probability learner (§IV-C).

Pipeline per trajectory point:

1. **Context** (Eq. 6): additive self-attention over the trajectory's tower
   embeddings yields a context-aware point representation ``x'_i``.
2. **Implicit correlation** (Eq. 7): an MLP over ``road_embedding (+) x'_i``
   scores how plausibly the road hosts the point given the context.
3. **Fusion** (Eq. 8): a final MLP combines the implicit score with the
   explicit features ``D_O`` into the observation probability ``P_O``.

One deviation from the paper's notation: Eq. 7 normalises implicit scores
with a softmax over the sampled candidate set, which couples the value to
the candidate-set size.  We keep the softmax for the classification
*pre-training* objective but feed the fusion MLP the per-road sigmoid of the
same logit, so ``P_O`` is well-defined for any pool size at inference.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import NUM_OBSERVATION_FEATURES
from repro.nn import MLP, AdditiveAttention, Module, Tensor
from repro.nn.functional import concat
from repro.utils import ensure_rng


class ObservationLearner(Module):
    """Learned ``P_O(c | x)`` with implicit and explicit components."""

    def __init__(
        self,
        dim: int = 48,
        hidden: int = 48,
        use_implicit: bool = True,
        num_explicit: int = NUM_OBSERVATION_FEATURES,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.dim = dim
        self.use_implicit = use_implicit
        self.num_explicit = num_explicit
        self.context_attention = AdditiveAttention(dim, rng=rng)
        self.correlation_mlp = MLP([2 * dim, hidden, 1], activation="relu", rng=rng)
        fusion_inputs = (1 if use_implicit else 0) + num_explicit
        self.fusion_mlp = MLP([fusion_inputs, hidden, 1], activation="relu", rng=rng)

    # ----------------------------------------------------------------- pieces
    def context(self, tower_embeddings: Tensor) -> Tensor:
        """Context-aware point representations ``x'_i`` (Eq. 6).

        ``tower_embeddings`` holds the trajectory's point embeddings,
        shape ``(|X|, dim)``; the result has the same shape.
        """
        return self.context_attention(tower_embeddings, tower_embeddings)

    def implicit_logits(self, road_embeddings: Tensor, context_vector: Tensor) -> Tensor:
        """Implicit point–road correlation logits (pre-softmax of Eq. 7).

        ``road_embeddings`` is ``(m, dim)``; ``context_vector`` is either
        ``(dim,)`` (one point against m roads) or ``(m, dim)`` paired rows.
        Returns shape ``(m,)``.
        """
        m = road_embeddings.shape[0]
        if context_vector.ndim == 1:
            context_vector = context_vector.reshape(1, self.dim) * Tensor(np.ones((m, 1)))
        merged = concat([road_embeddings, context_vector], axis=-1)
        return self.correlation_mlp(merged).reshape(m)

    def fuse(self, implicit_probs: Tensor | None, explicit: np.ndarray) -> Tensor:
        """Observation probabilities from implicit + explicit features (Eq. 8).

        ``explicit`` is ``(m, NUM_OBSERVATION_FEATURES)``; the result is a
        ``(m,)`` tensor of probabilities in ``(0, 1)``.
        """
        pieces = []
        if self.use_implicit:
            if implicit_probs is None:
                raise ValueError("implicit probabilities required unless ablated")
            pieces.append(implicit_probs.reshape(-1, 1))
        pieces.append(Tensor(np.asarray(explicit, dtype=np.float64)))
        merged = concat(pieces, axis=-1) if len(pieces) > 1 else pieces[0]
        return self.fusion_mlp(merged).reshape(merged.shape[0]).sigmoid()

    # ------------------------------------------------------------------ whole
    def score(
        self,
        road_embeddings: Tensor,
        context_vector: Tensor,
        explicit: np.ndarray,
    ) -> Tensor:
        """End-to-end ``P_O`` for one point against ``m`` candidate roads."""
        implicit = None
        if self.use_implicit:
            implicit = self.implicit_logits(road_embeddings, context_vector).sigmoid()
        return self.fuse(implicit, explicit)
