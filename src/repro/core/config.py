"""LHMM hyper-parameters and ablation switches."""

from __future__ import annotations

from dataclasses import dataclass, replace

PIPELINE_IMPLS = ("scalar", "batched")


@dataclass(slots=True)
class LHMMConfig:
    """Configuration of the LHMM matcher.

    The defaults follow §V-A2 where feasible, scaled to the synthetic
    cities: the paper uses embedding dimension 128 and k=30 candidates on a
    ~90k-segment network; our cities are ~50x smaller, so the defaults are
    proportionally reduced while every knob stays sweepable (Figs. 8–10).

    Model:
        embedding_dim: Width of node embeddings and latent vectors.
        het_layers: Message-passing iterations ``q`` (paper: 2).
        mlp_hidden: Hidden width of the learner MLPs.

    Candidates / path-finding:
        candidate_k: Candidate roads per point (paper: 30).
        candidate_pool: Size of the spatially pre-filtered pool the learned
            observation probability re-ranks.
        candidate_radius_m: Spatial pre-filter radius around each sample.
        shortcut_k: Number of shortcut predecessors ``K`` (paper: 1).
        trellis_impl: Forward-pass backend — ``"vectorized"`` (batched
            numpy max-plus kernel, the default) or ``"reference"`` (the
            dict-based oracle).  Both decode identical sequences; the
            differential suite (``tests/test_trellis_parity.py``) pins it.
        pipeline_impl: Candidate/feature pipeline backend — ``"batched"``
            (stacked candidate retrieval, fused observation forward, and
            vectorised transition rows; the default) or ``"scalar"`` (the
            original per-point loops).  Both produce bit-identical matches;
            ``docs/performance.md`` documents the layout and invariants.

    Training:
        epochs: Passes over the training trajectories per stage.
        batch_size: Trajectories per gradient step.
        learning_rate / weight_decay / label_smoothing: Adam settings
            (paper: 1e-3 / 1e-4 / 0.1).
        negatives_per_positive: Negative roads sampled per positive in the
            observation classification stage (under-sampling balance).
        ema_decay: Decay of the EMA shadow weight set the trainer
            maintains alongside the raw weights (``shadow += (1 - decay)
            * (weight - shadow)`` after every optimiser step).  Must be
            in (0, 1); the shadow set is checkpointed and saved into
            artifacts as a parallel weight set selectable at serve time
            (``--weights ema``).

    Divergence handling (``docs/robustness.md``):
        max_rollbacks: How many times a diverged run may roll back to its
            last good checkpoint before :class:`~repro.errors.TrainingDiverged`
            propagates to the caller.
        rollback_lr_factor: Learning-rate multiplier applied on every
            rollback (must be in (0, 1]).
        divergence_grad_norm: Gradient-norm ceiling per step; a step whose
            global L2 gradient norm exceeds it (or is non-finite) counts
            as divergence.  ``0`` disables the magnitude check — the
            NaN/inf checks always stay on.

    Ablations (Table III):
        use_graph_encoder: ``False`` gives LHMM-E (plain MLP embedding).
        heterogeneous: ``False`` gives LHMM-H (relation-blind GCN).
        use_implicit_observation: ``False`` gives LHMM-O.
        use_implicit_transition: ``False`` gives LHMM-T.
        use_shortcuts: ``False`` gives LHMM-S.
    """

    embedding_dim: int = 48
    het_layers: int = 2
    mlp_hidden: int = 48

    candidate_k: int = 12
    candidate_pool: int = 120
    candidate_radius_m: float = 2500.0
    shortcut_k: int = 1
    trellis_impl: str = "vectorized"
    pipeline_impl: str = "batched"

    epochs: int = 6
    batch_size: int = 8
    learning_rate: float = 1e-3
    weight_decay: float = 1e-4
    label_smoothing: float = 0.1
    negatives_per_positive: int = 8
    ema_decay: float = 0.999

    max_rollbacks: int = 2
    rollback_lr_factor: float = 0.5
    divergence_grad_norm: float = 1e6

    use_graph_encoder: bool = True
    heterogeneous: bool = True
    use_implicit_observation: bool = True
    use_implicit_transition: bool = True
    use_shortcuts: bool = True

    # Design choices of THIS reproduction (ablated by the extension bench,
    # not part of the paper's Table III):
    # - extend_pool_with_cooccurrence: add the tower's historically
    #   co-occurring roads to the spatial candidate pool;
    # - use_rank_features: include pool-relative rank columns in D_O.
    extend_pool_with_cooccurrence: bool = True
    use_rank_features: bool = True

    @property
    def observation_feature_count(self) -> int:
        """Width of the explicit observation feature vector ``D_O``."""
        from repro.core.features import (
            NUM_BASE_OBSERVATION_FEATURES,
            NUM_OBSERVATION_FEATURES,
        )

        return (
            NUM_OBSERVATION_FEATURES
            if self.use_rank_features
            else NUM_BASE_OBSERVATION_FEATURES
        )

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.embedding_dim < 2 or self.mlp_hidden < 2:
            raise ValueError("model widths must be >= 2")
        if self.het_layers < 1:
            raise ValueError("het_layers must be >= 1")
        if self.candidate_k < 1 or self.candidate_pool < self.candidate_k:
            raise ValueError("need candidate_pool >= candidate_k >= 1")
        if self.shortcut_k < 0:
            raise ValueError("shortcut_k must be >= 0")
        from repro.core.trellis import TRELLIS_IMPLS

        if self.trellis_impl not in TRELLIS_IMPLS:
            raise ValueError(
                f"trellis_impl must be one of {list(TRELLIS_IMPLS)}, "
                f"got {self.trellis_impl!r}"
            )
        if self.pipeline_impl not in PIPELINE_IMPLS:
            raise ValueError(
                f"pipeline_impl must be one of {list(PIPELINE_IMPLS)}, "
                f"got {self.pipeline_impl!r}"
            )
        if self.epochs < 0 or self.batch_size < 1:
            raise ValueError("invalid training settings")
        if not 0.0 <= self.label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        if not 0.0 < self.ema_decay < 1.0:
            raise ValueError("ema_decay must be in (0, 1)")
        if self.max_rollbacks < 0:
            raise ValueError("max_rollbacks must be >= 0")
        if not 0.0 < self.rollback_lr_factor <= 1.0:
            raise ValueError("rollback_lr_factor must be in (0, 1]")
        if self.divergence_grad_norm < 0:
            raise ValueError("divergence_grad_norm must be >= 0 (0 disables)")

    def ablated(self, variant: str) -> "LHMMConfig":
        """The Table III variant named ``variant``.

        ``"LHMM"`` returns an unchanged copy; ``"LHMM-E"``, ``"LHMM-H"``,
        ``"LHMM-O"``, ``"LHMM-T"``, ``"LHMM-S"`` flip the matching switch.
        """
        variants = {
            "LHMM": {},
            "LHMM-E": {"use_graph_encoder": False},
            "LHMM-H": {"heterogeneous": False},
            "LHMM-O": {"use_implicit_observation": False},
            "LHMM-T": {"use_implicit_transition": False},
            "LHMM-S": {"use_shortcuts": False},
        }
        if variant not in variants:
            raise ValueError(f"unknown variant {variant!r}; choose from {sorted(variants)}")
        return replace(self, **variants[variant])
