"""The transition-probability learner (§IV-D).

Pipeline per transition ``c_{i-1} -> c_i``:

1. **Road-conditioned trajectory representation** (Eq. 9): for each road on
   the moving path, additive attention over the trajectory's point
   embeddings (query = road) produces a road-specific summary ``X_l``.
2. **Road relevance** (Eq. 10): an MLP over ``road (+) X_l`` estimates the
   probability the road belongs to the trajectory.
3. **Path relevance** (Eq. 11): the mean relevance over the shortest path's
   segments.
4. **Fusion** (Eq. 12): a final MLP combines the path relevance with the
   explicit features ``D_T`` into the transition probability ``P_T``.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import NUM_TRANSITION_FEATURES
from repro.nn import MLP, AdditiveAttention, Module, Tensor
from repro.nn.functional import concat
from repro.utils import ensure_rng


class TransitionLearner(Module):
    """Learned ``P_T(c_{i-1} -> c_i)`` with implicit and explicit components."""

    def __init__(
        self,
        dim: int = 48,
        hidden: int = 48,
        use_implicit: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng)
        self.dim = dim
        self.use_implicit = use_implicit
        self.road_attention = AdditiveAttention(dim, rng=rng)
        self.relevance_mlp = MLP([2 * dim, hidden, 1], activation="relu", rng=rng)
        fusion_inputs = (1 if use_implicit else 0) + NUM_TRANSITION_FEATURES
        self.fusion_mlp = MLP([fusion_inputs, hidden, 1], activation="relu", rng=rng)

    def road_relevance_logits(
        self, road_embeddings: Tensor, tower_embeddings: Tensor
    ) -> Tensor:
        """Logits of ``P(e_l | X)`` for each road row (Eq. 9 + Eq. 10).

        ``road_embeddings`` is ``(m, dim)``, ``tower_embeddings`` is
        ``(|X|, dim)``; returns shape ``(m,)``.
        """
        summaries = self.road_attention(road_embeddings, tower_embeddings)
        merged = concat([road_embeddings, summaries], axis=-1)
        return self.relevance_mlp(merged).reshape(road_embeddings.shape[0])

    def fuse(self, path_relevance: Tensor | None, explicit: np.ndarray) -> Tensor:
        """Transition probabilities from implicit + explicit features (Eq. 12).

        ``path_relevance`` is ``(m,)`` mean road relevances (Eq. 11) for m
        transitions; ``explicit`` is ``(m, NUM_TRANSITION_FEATURES)``.
        """
        pieces = []
        if self.use_implicit:
            if path_relevance is None:
                raise ValueError("path relevance required unless ablated")
            pieces.append(path_relevance.reshape(-1, 1))
        pieces.append(Tensor(np.asarray(explicit, dtype=np.float64)))
        merged = concat(pieces, axis=-1) if len(pieces) > 1 else pieces[0]
        return self.fusion_mlp(merged).reshape(merged.shape[0]).sigmoid()
