"""Named-architecture factory registry for model construction.

Serving, training, the cluster workers, and the CLI all need to turn a
stored artifact back into a live model.  Pickling classes into the
artifact would tie every consumer to one code layout (and be a code
execution vector); instead the artifact manifest carries a *name* —
``meta["arch"]`` — and this registry maps names to factory callables
that build an architecture purely from the manifest ``meta`` dict:

    matcher = make_model(artifact.meta.get("arch", "lhmm"), **artifact.meta)
    matcher.attach_dataset(dataset)
    matcher.load_state_dict(artifact.arrays, origin=path)

Builders receive the manifest keys as keyword arguments (``config`` is
the stored :class:`~repro.core.config.LHMMConfig` dict) and must
tolerate extra keys — manifests grow fields over time.  Registration
happens at import of the defining module; :func:`make_model` imports
the built-in family lazily so the registry is always populated without
creating an import cycle with :mod:`repro.core.matcher`.

Unknown names raise :class:`~repro.errors.ArtifactIncompatible` listing
every registered name, so a typo'd or future-format artifact fails with
an actionable message instead of an ``AttributeError`` deep in serving.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ArtifactIncompatible

#: name -> factory callable ``(**meta) -> model``
_REGISTRY: dict[str, Callable] = {}


def register_model(name: str) -> Callable[[Callable], Callable]:
    """Class/function decorator registering ``name`` as an architecture.

    The decorated callable is invoked as ``builder(**meta)`` with the
    artifact's manifest ``meta`` keys and must return an un-fitted model
    instance ready for :meth:`attach_dataset` + :meth:`load_state_dict`.
    Re-registering a name replaces the previous builder (latest wins),
    which keeps test doubles cheap.
    """

    def decorator(builder: Callable) -> Callable:
        _REGISTRY[name] = builder
        return builder

    return decorator


def _ensure_builtins() -> None:
    # The built-in LHMM family registers itself at module import; pull
    # it in lazily so `import repro.core.registry` alone never cycles
    # back through the (heavy) matcher module.
    import repro.core.matcher  # noqa: F401


def registered_models() -> list[str]:
    """Sorted names of every registered architecture."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def make_model(name: str, **meta):
    """Construct the architecture registered under ``name`` from manifest meta.

    ``meta`` is the artifact manifest's ``meta`` mapping, passed through
    verbatim (so ``config=...`` reaches the builder).  Raises
    :class:`ArtifactIncompatible` for an unknown name, listing the
    registered names — the error a stale server build gives a
    newer-format artifact.
    """
    _ensure_builtins()
    try:
        builder = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ArtifactIncompatible(
            f"unknown model architecture {name!r} (registered: {known}); "
            "was the artifact written by a newer build?"
        ) from None
    return builder(**meta)
