"""The LHMM facade: ``fit`` on historical trajectories, ``match`` new ones.

``fit`` builds the multi-relational graph from the training split, trains
the Het-Graph encoder and both probability learners (§IV-B–D), and caches
the final node embeddings.  ``match`` runs the neuralised HMM path-finding
of §IV-E: learned candidate preparation, candidate-graph construction with
batched learned ``P_O``/``P_T`` scoring, Viterbi, and shortcut optimisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.errors import (
    ArtifactIncompatible,
    InvalidTrajectoryInput,
    MatchError,
    MatchFailure,
    WorkerCrash,
)
from repro.testing import faults
from repro.core.candidates import CandidatePoolCache, learned_candidate_pool
from repro.core.checkpoint import CheckpointManager
from repro.core.config import LHMMConfig
from repro.core.features import (
    dense_relevance,
    observation_feature_matrix,
    transition_feature_rows,
    transition_features,
)
from repro.core.het_encoder import HetGraphEncoder, MlpNodeEncoder
from repro.core.observation import ObservationLearner
from repro.core.registry import register_model
from repro.core.relation_graph import RelationGraph
from repro.core.training import LHMMTrainer, TrainingReport
from repro.core.transition import TransitionLearner
from repro.core.trellis import UNREACHABLE_SCORE, make_trellis
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.nn import StateDictMismatch, Tensor, no_grad
from repro.nn.serialization import config_fingerprint, read_artifact, write_artifact
from repro.network.router import Router, route_pairs
from repro.network.shortest_path import stitch_segments
from repro.utils import derive_rng, ensure_rng


@dataclass(slots=True)
class MatchResult:
    """Output of one matching run.

    Attributes:
        path: The matched path as consecutive segment ids.
        matched_sequence: The decoded candidate per trajectory point.
        candidate_sets: Candidates per point, *including* any roads the
            shortcut pass inserted (the hitting-ratio metric counts them,
            matching how the paper credits STM+S with a higher HR).
        score: The Viterbi path score (Eq. 14).
        provenance: Which pipeline stage produced the result: ``"lhmm"``
            (the full learned matcher), or a degradation-cascade fallback
            — ``"heuristic_hmm"`` (classical HMM scoring) or
            ``"nearest_road"`` (per-point projection, no routing at all).
            Anything other than ``"lhmm"`` means the result is *degraded*:
            usable, but produced without the learned components.
    """

    path: list[int]
    matched_sequence: list[int]
    candidate_sets: list[list[int]]
    score: float
    provenance: str = "lhmm"

    @property
    def degraded(self) -> bool:
        """True when a fallback stage (not the learned matcher) answered."""
        return self.provenance != "lhmm"


class _LHMMScorer:
    """Trellis scorer backed by the trained learners (batched, cached).

    Implements both the scalar :class:`~repro.core.trellis.TrellisScorer`
    hooks and the batched :class:`~repro.core.trellis.BatchTrellisScorer`
    extension the vectorized trellis drives; both paths share the same
    per-step batched MLP call, so they return identical floats.
    """

    def __init__(
        self,
        matcher: "LHMM",
        points: list[TrajectoryPoint],
        candidate_sets: list[list[int]],
        po_maps: list[dict[int, float]],
        context: np.ndarray,
        relevance: dict[int, float] | None,
    ) -> None:
        self._matcher = matcher
        self._points = points
        self._candidate_sets = candidate_sets
        self._po = po_maps
        self._context = context
        self._relevance = relevance  # segment id -> P(e|X), or None
        self._relevance_dense: np.ndarray | None = None  # lazy dense gather view
        self._pt_cache: dict[tuple[int, int, int], float] = {}
        self._steps_done: set[int] = set()

    # ------------------------------------------------------------ observation
    def observation(self, index: int, segment_id: int) -> float:
        cached = self._po[index].get(segment_id)
        if cached is not None:
            return cached
        # Score the new segment against the point's original pool so the
        # pool-relative rank features stay meaningful.
        pool = [seg for seg in self._po[index] if seg != segment_id]
        value = self._matcher._score_observations(
            self._points[index], [*pool, segment_id], self._context[index]
        )[-1]
        self._po[index][segment_id] = float(value)
        return float(value)

    def observation_batch(self, index: int, segment_ids: list[int]) -> np.ndarray:
        """Batched ``P_O`` over one point's candidates (same floats as scalar)."""
        return np.array(
            [self.observation(index, seg) for seg in segment_ids], dtype=np.float64
        )

    # ------------------------------------------------------------- transition
    def transition(self, index: int, prev_segment_id: int, segment_id: int) -> float:
        key = (index, prev_segment_id, segment_id)
        cached = self._pt_cache.get(key)
        if cached is not None:
            return cached
        if index not in self._steps_done:
            self._batch_step(index)
            self._steps_done.add(index)
            cached = self._pt_cache.get(key)
            if cached is not None:
                return cached
        value = self._compute_transitions(
            index, [(prev_segment_id, segment_id)]
        )[0]
        self._pt_cache[key] = value
        return value

    def _batch_step(self, index: int) -> None:
        """Score every candidate pair of one step in a single MLP call."""
        pairs = [
            (a, b)
            for a in self._candidate_sets[index - 1]
            for b in self._candidate_sets[index]
        ]
        values = self._compute_transitions(index, pairs)
        for pair, value in zip(pairs, values):
            self._pt_cache[(index, pair[0], pair[1])] = value

    def transition_batch(
        self, index: int, prev_segment_ids: list[int], segment_ids: list[int]
    ) -> np.ndarray:
        """Batched ``P_T`` matrix for one trellis step.

        Pairs are enumerated in the same (prev-major) product order the
        scalar path's :meth:`_batch_step` uses, so the stacked MLP input —
        and therefore every probability — is bit-identical to it.
        """
        pairs = [(a, b) for a in prev_segment_ids for b in segment_ids]
        values = self._compute_transitions(index, pairs)
        for pair, value in zip(pairs, values):
            self._pt_cache[(index, pair[0], pair[1])] = value
        self._steps_done.add(index)
        return np.array(values, dtype=np.float64).reshape(
            len(prev_segment_ids), len(segment_ids)
        )

    def _compute_transitions(
        self, index: int, pairs: list[tuple[int, int]]
    ) -> list[float]:
        matcher = self._matcher
        rows: list[np.ndarray] = []
        row_positions: list[int] = []
        values = [UNREACHABLE_SCORE] * len(pairs)
        # One batched multi-source query answers the whole trellis step.
        routes = route_pairs(matcher.engine, pairs)
        if matcher.config.pipeline_impl == "batched":
            dense = None
            if matcher.transition_learner.use_implicit:
                assert self._relevance is not None
                if self._relevance_dense is None:
                    self._relevance_dense = dense_relevance(
                        matcher.network, self._relevance
                    )
                dense = self._relevance_dense
            row_matrix, batched_positions = transition_feature_rows(
                matcher.network,
                routes,
                self._points[index - 1],
                self._points[index],
                relevance_dense=dense,
            )
            if row_matrix.shape[0]:
                with no_grad():
                    probs = (
                        matcher.transition_learner.fusion_mlp(Tensor(row_matrix))
                        .reshape(row_matrix.shape[0])
                        .sigmoid()
                        .numpy()
                    )
                for pos, prob in zip(batched_positions, probs):
                    values[pos] = float(prob)
            return values
        for pos, route in enumerate(routes):
            if route is None:
                continue
            explicit = transition_features(
                matcher.network, route, self._points[index - 1], self._points[index]
            )
            if matcher.transition_learner.use_implicit:
                assert self._relevance is not None
                implicit = float(
                    np.mean([self._relevance.get(s, 0.5) for s in route.segments])
                )
                rows.append(np.concatenate([[implicit], explicit]))
            else:
                rows.append(explicit)
            row_positions.append(pos)
        if rows:
            with no_grad():
                probs = (
                    matcher.transition_learner.fusion_mlp(Tensor(np.stack(rows)))
                    .reshape(len(rows))
                    .sigmoid()
                    .numpy()
                )
            for pos, prob in zip(row_positions, probs):
                values[pos] = float(prob)
        return values


def arch_name(config: LHMMConfig) -> str:
    """The registry name of the Table III variant ``config`` encodes.

    First-match over the ablation switches, so the name is a pure
    deterministic function of the config; construction always honours
    the full config dict — the name only routes to a factory.
    """
    if not config.use_graph_encoder:
        return "lhmm-e"
    if not config.heterogeneous:
        return "lhmm-h"
    if not config.use_implicit_observation:
        return "lhmm-o"
    if not config.use_implicit_transition:
        return "lhmm-t"
    if not config.use_shortcuts:
        return "lhmm-s"
    return "lhmm"


class LHMM:
    """Learning-enhanced HMM map matcher (the paper's model)."""

    def __init__(
        self,
        config: LHMMConfig | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> None:
        self.config = config or LHMMConfig()
        self.config.validate()
        self._rng = ensure_rng(rng)
        self.graph: RelationGraph | None = None
        self.encoder = None
        self.observation_learner: ObservationLearner | None = None
        self.transition_learner: TransitionLearner | None = None
        self.node_embeddings: np.ndarray | None = None
        self.network = None
        self.engine: Router | None = None
        self.report: TrainingReport | None = None
        self.last_parallel_stats: dict | None = None
        # EMA shadow weight set in artifact layout (node_embeddings +
        # obs.*/trans.*), captured from the trainer at fit time or from
        # the artifact at load time; None when the model carries none.
        self._ema_arrays: dict[str, np.ndarray] | None = None
        #: Which weight set this instance serves ("raw" or "ema").
        self.weights_variant: str = "raw"
        # Degradation cascade (docs/robustness.md): on internal failure,
        # fall back to heuristic HMM scoring, then nearest-road projection.
        self.degradation_enabled: bool = True
        self.degraded_counts: dict[str, int] = {}
        self.last_degraded_cause: BaseException | None = None
        self._fallback_hmm = None
        self._bounds: tuple[float, float, float, float] | None = None
        # Batched-pipeline candidate-pool cache (lazy; rebuilt when the
        # graph or the pool-shaping config fields change).
        self._pool_cache_obj: CandidatePoolCache | None = None
        self._pool_cache_key: tuple | None = None

    # -------------------------------------------------------------------- fit
    def fit(
        self,
        dataset: MatchingDataset,
        train_samples: list[MatchingSample] | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = True,
        keep_checkpoints: int = 3,
    ) -> "LHMM":
        """Train on ``dataset`` (``train_samples`` overrides the train split).

        With ``checkpoint_dir``, training state is durably checkpointed
        after every epoch and — when ``resume`` is true — a killed run
        continues from the newest intact checkpoint, producing weights
        bit-identical to an uninterrupted run (``docs/robustness.md``).
        The checkpoints carry this config's fingerprint; resuming under a
        different configuration raises
        :class:`~repro.errors.ArtifactIncompatible`.
        """
        cfg = self.config
        samples = train_samples if train_samples is not None else dataset.train
        self.network = dataset.network
        self.engine = dataset.engine
        self.graph = RelationGraph(dataset.network, dataset.towers).build(samples)

        model_rng = derive_rng(self._rng, "model")
        if cfg.use_graph_encoder:
            self.encoder = HetGraphEncoder(
                self.graph,
                dim=cfg.embedding_dim,
                num_layers=cfg.het_layers,
                heterogeneous=cfg.heterogeneous,
                rng=model_rng,
            )
        else:
            self.encoder = MlpNodeEncoder(self.graph, dim=cfg.embedding_dim, rng=model_rng)
        self.observation_learner = ObservationLearner(
            dim=cfg.embedding_dim,
            hidden=cfg.mlp_hidden,
            use_implicit=cfg.use_implicit_observation,
            num_explicit=cfg.observation_feature_count,
            rng=model_rng,
        )
        self.transition_learner = TransitionLearner(
            dim=cfg.embedding_dim,
            hidden=cfg.mlp_hidden,
            use_implicit=cfg.use_implicit_transition,
            rng=model_rng,
        )
        trainer = LHMMTrainer(
            cfg,
            self.graph,
            self.encoder,
            self.observation_learner,
            self.transition_learner,
            self.engine,
            rng=derive_rng(self._rng, "training"),
        )
        checkpoint = None
        if checkpoint_dir is not None:
            import dataclasses

            checkpoint = CheckpointManager(
                checkpoint_dir,
                keep=keep_checkpoints,
                config_fingerprint=config_fingerprint(dataclasses.asdict(cfg)),
            )
        self.report = trainer.train(samples, checkpoint=checkpoint, resume=resume)
        self.node_embeddings = trainer.node_embeddings
        self._ema_arrays = trainer.ema_artifact_arrays()
        self.encoder.eval()
        self.observation_learner.eval()
        self.transition_learner.eval()
        return self

    def _require_fit(self) -> None:
        if self.node_embeddings is None or self.graph is None:
            raise MatchFailure("call fit() before matching")

    # ------------------------------------------------------------- validation
    #: How far outside the map's bounding box a point may sit before it is
    #: rejected as out-of-bounds (covers towers ringing the served area).
    BOUNDS_MARGIN_M = 10_000.0

    def validate_trajectory(
        self, trajectory: Trajectory, context: str = "trajectory"
    ) -> None:
        """Reject degenerate input with a field-level, structured error.

        Raises :class:`InvalidTrajectoryInput` (HTTP 422 at the serving
        layer) for empty trajectories, non-finite coordinates, and points
        far outside the served map.  Tower ids absent from the relation
        graph are *not* an error — matching normalises them to the nearest
        known tower.
        """
        if len(trajectory) == 0:
            raise InvalidTrajectoryInput(f"{context}: trajectory is empty")
        if self._bounds is None and self.network is not None:
            self._bounds = self.network.bounding_box()
        min_x, min_y, max_x, max_y = self._bounds or (
            -math.inf, -math.inf, math.inf, math.inf
        )
        margin = self.BOUNDS_MARGIN_M
        for i, point in enumerate(trajectory.points):
            x, y, t = point.position.x, point.position.y, point.timestamp
            if not (math.isfinite(x) and math.isfinite(y) and math.isfinite(t)):
                raise InvalidTrajectoryInput(
                    f"{context}.points[{i}]: non-finite coordinate "
                    f"(x={x!r}, y={y!r}, t={t!r})"
                )
            if not (
                min_x - margin <= x <= max_x + margin
                and min_y - margin <= y <= max_y + margin
            ):
                raise InvalidTrajectoryInput(
                    f"{context}.points[{i}]: position ({x:.0f}, {y:.0f}) lies "
                    f"more than {margin:.0f}m outside the served map bounds "
                    f"({min_x:.0f}, {min_y:.0f})..({max_x:.0f}, {max_y:.0f})"
                )

    # ------------------------------------------------------------- inference
    def _tower_node_for(self, point: TrajectoryPoint) -> int:
        assert self.graph is not None
        if point.tower_id is not None and point.tower_id in self.graph.towers.towers:
            return self.graph.tower_node(point.tower_id)
        nearest = self.graph.towers.nearest(point.position, count=1)
        return self.graph.tower_node(nearest[0])

    def _score_observations(
        self,
        point: TrajectoryPoint,
        segment_ids: list[int],
        context_vector: np.ndarray,
    ) -> np.ndarray:
        """Batched learned ``P_O`` for one point over ``segment_ids``."""
        assert self.graph is not None and self.observation_learner is not None
        assert self.node_embeddings is not None
        explicit = observation_feature_matrix(
            self.graph, point, segment_ids, include_ranks=self.config.use_rank_features
        )
        with no_grad():
            implicit = None
            if self.observation_learner.use_implicit:
                embeddings = Tensor(
                    self.node_embeddings[self.graph.segment_nodes(segment_ids)]
                )
                implicit = self.observation_learner.implicit_logits(
                    embeddings, Tensor(context_vector)
                ).sigmoid()
            return self.observation_learner.fuse(implicit, explicit).numpy()

    def _segment_relevance(
        self, tower_embeddings: Tensor, segment_ids: list[int]
    ) -> dict[int, float]:
        """``P(e | X)`` (Eq. 10) for the given road segments.

        Restricted to the roads transitions can actually touch (everything
        near the trajectory) rather than the whole network — identical
        results, far less attention work.
        """
        assert self.graph is not None and self.transition_learner is not None
        assert self.node_embeddings is not None
        if not segment_ids:
            return {}
        rows = self.node_embeddings[self.graph.segment_nodes(segment_ids)]
        values: list[float] = []
        with no_grad():
            for start in range(0, rows.shape[0], 512):
                block = Tensor(rows[start : start + 512])
                logits = self.transition_learner.road_relevance_logits(
                    block, tower_embeddings
                )
                values.extend(logits.sigmoid().numpy().tolist())
        return dict(zip(segment_ids, values))

    def _relevance_scope(self, trajectory: Trajectory) -> list[int]:
        """Segments any transition route of this trajectory could traverse."""
        radius = self.config.candidate_radius_m + 1500.0
        if self.config.pipeline_impl == "batched":
            near_lists = self.network.segments_near_many(
                [p.position for p in trajectory.points], radius
            )
            if not near_lists:
                return []
            flat = np.concatenate(
                [np.asarray(near, dtype=np.int64) for near in near_lists]
            )
            # First-occurrence dedupe, identical to the scalar loop below.
            _, first = np.unique(flat, return_index=True)
            first.sort()
            return [int(s) for s in flat[first]]
        near_lists = [
            self.network.segments_near(p.position, radius)
            for p in trajectory.points
        ]
        scope: list[int] = []
        seen: set[int] = set()
        for near in near_lists:
            for seg in near:
                if seg not in seen:
                    seen.add(seg)
                    scope.append(seg)
        return scope

    def _tower_nodes_for(self, points: list[TrajectoryPoint]) -> np.ndarray:
        """Graph node index of the interacting tower, per trajectory point."""
        return np.array([self._tower_node_for(p) for p in points])

    def _pool_cache(self) -> CandidatePoolCache:
        """The per-tower candidate-pool cache for the batched pipeline."""
        assert self.graph is not None
        cfg = self.config
        key = (
            id(self.graph),
            self.graph.mining_version,
            cfg.candidate_radius_m,
            cfg.candidate_pool,
            cfg.extend_pool_with_cooccurrence,
        )
        if self._pool_cache_obj is None or self._pool_cache_key != key:
            self._pool_cache_obj = CandidatePoolCache(
                self.graph,
                cfg.candidate_radius_m,
                cfg.candidate_pool,
                include_cooccurrence=cfg.extend_pool_with_cooccurrence,
            )
            self._pool_cache_key = key
        return self._pool_cache_obj

    def _prepare_candidates_batched(
        self, points: list[TrajectoryPoint], context: np.ndarray
    ) -> tuple[list[list[int]], list[dict[int, float]]]:
        """Whole-trajectory candidate preparation: one fused pass.

        Candidate pools come from the per-tower cache (cold misses resolved
        through the stacked spatial kernel), explicit features from the
        ragged-stacked builder, and the implicit correlation + fusion MLPs
        run once over all (point, candidate) pairs — embeddings and context
        rows gathered with single ``np.take``/``np.repeat`` calls instead
        of one forward per point.
        """
        assert self.graph is not None and self.observation_learner is not None
        assert self.node_embeddings is not None
        cfg = self.config
        pools, explicit, counts, node_idx = self._pool_cache().pools_features(
            points, include_ranks=cfg.use_rank_features
        )
        learner = self.observation_learner
        with no_grad():
            implicit = None
            if learner.use_implicit:
                embeddings = Tensor(np.take(self.node_embeddings, node_idx, axis=0))
                context_rows = Tensor(np.repeat(context, counts, axis=0))
                implicit = learner.implicit_logits(embeddings, context_rows).sigmoid()
            scores = learner.fuse(implicit, explicit).numpy()
        candidate_sets: list[list[int]] = []
        po_maps: list[dict[int, float]] = []
        offset = 0
        for pool in pools:
            m = len(pool)
            pool_scores = scores[offset : offset + m]
            order = np.argsort(-pool_scores)
            candidate_sets.append([pool[int(j)] for j in order[: cfg.candidate_k]])
            po_maps.append(
                {seg: float(s) for seg, s in zip(pool, pool_scores)}
            )
            offset += m
        return candidate_sets, po_maps

    def prepare_candidates(
        self, trajectory: Trajectory, tower_nodes: np.ndarray | None = None
    ) -> tuple[list[list[int]], list[dict[int, float]], np.ndarray]:
        """Step 1 of §IV-E: learned top-k candidates per point.

        Returns ``(candidate_sets, po_maps, context)`` where ``po_maps``
        holds the learned observation probability of every pool road (kept
        so shortcut insertion can score off-candidate roads cheaply).
        ``tower_nodes`` (from :meth:`_tower_nodes_for`) can be passed in to
        avoid recomputing the per-point tower lookup.
        """
        self._require_fit()
        assert self.graph is not None and self.observation_learner is not None
        cfg = self.config
        points = trajectory.points
        if tower_nodes is None:
            tower_nodes = self._tower_nodes_for(points)
        with no_grad():
            x = Tensor(self.node_embeddings[tower_nodes])  # type: ignore[index]
            context = self.observation_learner.context(x).numpy()
        if cfg.pipeline_impl == "batched":
            candidate_sets, po_maps = self._prepare_candidates_batched(points, context)
            return candidate_sets, po_maps, context
        candidate_sets = []
        po_maps = []
        for i, point in enumerate(points):
            pool = learned_candidate_pool(
                self.graph,
                point,
                cfg.candidate_radius_m,
                cfg.candidate_pool,
                include_cooccurrence=cfg.extend_pool_with_cooccurrence,
            )
            scores = self._score_observations(point, pool, context[i])
            order = np.argsort(-scores)
            top = [pool[int(j)] for j in order[: cfg.candidate_k]]
            candidate_sets.append(top)
            po_maps.append({seg: float(s) for seg, s in zip(pool, scores)})
        return candidate_sets, po_maps, context

    def match(self, trajectory: Trajectory) -> MatchResult:
        """Map-match one cellular trajectory (Algorithms 1 + 2).

        Runs the degradation cascade: the full learned matcher first; on
        an *internal* failure (never on bad input) the heuristic-HMM
        fallback, then nearest-road projection.  Degraded results are
        tagged via :attr:`MatchResult.provenance` and counted in
        :attr:`degraded_counts`; set :attr:`degradation_enabled` to
        ``False`` to re-raise instead (e.g. in parity tests).
        """
        self._require_fit()
        self.validate_trajectory(trajectory)
        faults.fire("match", trajectory_id=trajectory.trajectory_id)
        try:
            faults.fire("match.learned", trajectory_id=trajectory.trajectory_id)
            return self._match_learned(trajectory)
        except InvalidTrajectoryInput:
            raise
        except Exception as error:  # noqa: BLE001 - cascade boundary
            if not self.degradation_enabled:
                raise
            self.last_degraded_cause = error
        try:
            faults.fire("match.heuristic", trajectory_id=trajectory.trajectory_id)
            result = self._match_heuristic(trajectory)
        except Exception:  # noqa: BLE001 - fall through to last resort
            result = self._match_nearest(trajectory)
        self.degraded_counts[result.provenance] = (
            self.degraded_counts.get(result.provenance, 0) + 1
        )
        return result

    def _match_learned(self, trajectory: Trajectory) -> MatchResult:
        """The full learned pipeline (§IV-E), no fallbacks."""
        assert self.transition_learner is not None
        points = trajectory.points
        tower_nodes = self._tower_nodes_for(points)
        candidate_sets, po_maps, context = self.prepare_candidates(
            trajectory, tower_nodes
        )
        if len(points) == 1:
            best = max(po_maps[0], key=po_maps[0].get)  # type: ignore[arg-type]
            return MatchResult([best], [best], [list(candidate_sets[0])], po_maps[0][best])

        relevance = None
        if self.transition_learner.use_implicit:
            with no_grad():
                relevance = self._segment_relevance(
                    Tensor(self.node_embeddings[tower_nodes]),  # type: ignore[index]
                    self._relevance_scope(trajectory),
                )
        scorer = _LHMMScorer(self, points, candidate_sets, po_maps, context, relevance)
        trellis = make_trellis(
            candidate_sets,
            scorer,
            self.network,
            self.engine,
            points,
            impl=self.config.trellis_impl,
        )
        shortcut_k = self.config.shortcut_k if self.config.use_shortcuts else 0
        sequence = trellis.run(shortcut_k=shortcut_k)
        path = stitch_segments(sequence, self.engine)
        return MatchResult(
            path=path,
            matched_sequence=sequence,
            # The trellis's sets include shortcut-inserted candidates.
            candidate_sets=[list(c) for c in trellis.candidate_sets],
            score=trellis.best_score,
        )

    # ------------------------------------------------------------ degradation
    def _match_heuristic(self, trajectory: Trajectory) -> MatchResult:
        """Cascade stage 2: classical HMM scoring over the same trellis.

        Always available — needs only the road network and a router, none
        of the learned components (the Zero-Shot CTMM argument: a
        heuristic HMM can score where learned models cannot).
        """
        from types import SimpleNamespace

        from repro.baselines.hmm_heuristic import HeuristicHmmMatcher

        if self._fallback_hmm is None:
            shim = SimpleNamespace(network=self.network, engine=self.engine)
            self._fallback_hmm = HeuristicHmmMatcher(shim)
        baseline = self._fallback_hmm.match(trajectory)
        return MatchResult(
            path=list(baseline.path),
            matched_sequence=list(baseline.matched_sequence),
            candidate_sets=[list(c) for c in baseline.candidate_sets],
            score=0.0,
            provenance="heuristic_hmm",
        )

    def _match_nearest(self, trajectory: Trajectory) -> MatchResult:
        """Cascade stage 3 (last resort): per-point nearest-road projection.

        Uses no routing at all, so it survives even a broken routing
        backend; the "path" is the deduplicated projection sequence.
        """
        sequence: list[int] = []
        for i, point in enumerate(trajectory.points):
            nearest = self.network.nearest_segments(point.position, count=1)
            if not nearest:
                raise InvalidTrajectoryInput(
                    f"trajectory.points[{i}]: no road within "
                    f"{self.BOUNDS_MARGIN_M:.0f}m of ({point.position.x:.0f}, "
                    f"{point.position.y:.0f})"
                )
            sequence.append(nearest[0])
        path = [sequence[0]]
        for segment in sequence[1:]:
            if segment != path[-1]:
                path.append(segment)
        return MatchResult(
            path=path,
            matched_sequence=sequence,
            candidate_sets=[[s] for s in sequence],
            score=0.0,
            provenance="nearest_road",
        )

    def use_router(self, router: Router) -> "LHMM":
        """Route all matching through ``router`` (e.g. a ``UbodtRouter``).

        Every downstream consumer — the trellis, the learned scorer, and
        path stitching — goes through :attr:`engine`, so swapping it swaps
        the routing backend everywhere at once.  Returns ``self``.
        """
        self.engine = router
        return self

    def match_many(
        self,
        trajectories: list[Trajectory],
        workers: int = 1,
        chunk_size: int | None = None,
        return_errors: bool = False,
    ) -> list[MatchResult]:
        """Match a batch of trajectories, optionally across processes.

        With ``workers > 1`` the batch is dispatched in chunks to a process
        pool (forked workers share this fitted matcher read-only); results
        come back in input order and are identical to the serial path,
        trajectory for trajectory.  Falls back to serial matching when the
        platform cannot fork, the batch is trivially small, or the forked
        pool crashes (completed-or-not, every trajectory is re-answered
        serially — the facade never loses a batch to a dead worker).

        With ``return_errors=True``, trajectories that fail to match come
        back as :class:`~repro.errors.MatchError` slots in their input
        positions instead of raising — one poison trajectory cannot void
        the rest of the batch.
        """
        if workers > 1 and len(trajectories) > 1:
            from repro.core.parallel import fork_match_many

            try:
                results = fork_match_many(
                    self, trajectories, workers, chunk_size, return_errors=return_errors
                )
            except WorkerCrash:
                results = None  # pool died: re-answer the batch serially
            if results is not None:
                return results
        if not return_errors:
            return [self.match(t) for t in trajectories]
        slots: list = []
        for index, trajectory in enumerate(trajectories):
            try:
                slots.append(self.match(trajectory))
            except Exception as error:  # noqa: BLE001 - slotted, not raised
                slots.append(MatchError.from_exception(error, index=index))
        return slots

    # ------------------------------------------------------------ persistence
    #: Envelope kind tag of serialised LHMM models.
    MODEL_KIND = "lhmm-model"

    def save(self, path) -> None:
        """Persist a fitted matcher as a validated ``.npz`` artifact.

        Stores the cached node embeddings, both learners' weights, the
        mined relation-graph counts (needed for explicit features and
        candidate pools), and the configuration.  The road network and
        towers are *not* stored — :meth:`load` takes the dataset they live
        in, matching how a deployment would keep the (large, static) map
        separate from the (small, trained) model.

        A model fitted by this build also carries its EMA shadow weight
        set as a parallel ``ema.*`` array family (same layout: embeddings
        plus learner weights; the mined graph counts are shared), and the
        manifest meta records the architecture name (``arch``, resolved
        through :mod:`repro.core.registry` at load time) and the weight
        sets present (``weights``).

        The archive is a versioned envelope (``repro.nn.serialization``):
        every array is checksummed in an embedded manifest, the write is
        atomic, and the bytes are deterministic — saving the same fitted
        matcher twice yields identical files.
        """
        import dataclasses

        self._require_fit()
        assert self.graph is not None
        payload: dict[str, np.ndarray] = {"node_embeddings": self.node_embeddings}
        payload.update(
            {f"graph.{k}": v for k, v in self.graph.mining_state().items()}
        )
        payload.update(
            {f"obs.{k}": v for k, v in self.observation_learner.state_dict().items()}
        )
        payload.update(
            {f"trans.{k}": v for k, v in self.transition_learner.state_dict().items()}
        )
        weight_sets = ["raw"]
        if self._ema_arrays:
            payload.update({f"ema.{k}": v for k, v in self._ema_arrays.items()})
            weight_sets.append("ema")
        write_artifact(
            path,
            payload,
            kind=self.MODEL_KIND,
            meta={
                "config": dataclasses.asdict(self.config),
                "arch": arch_name(self.config),
                "weights": weight_sets,
            },
        )

    @classmethod
    def load(cls, path, dataset: MatchingDataset, weights: str = "raw") -> "LHMM":
        """Restore a matcher saved by :meth:`save` onto ``dataset``'s map.

        Construction is dispatched through the architecture registry
        (:func:`repro.core.registry.make_model`) keyed by the manifest's
        ``arch`` name — no class is ever unpickled and no architecture is
        hardcoded here.  ``weights`` selects the weight set: ``"raw"``
        (the default) or ``"ema"`` for the trainer's EMA shadow set.

        Raises:
            FileNotFoundError: no file at ``path``.
            ArtifactCorrupt: the archive is damaged (truncated, flipped
                byte, checksum/shape/dtype disagreement).
            ArtifactIncompatible: intact but unusable here — wrong
                artifact kind, unsupported format version, unknown
                architecture name, a model trained for a different
                map/configuration than ``dataset`` provides, or
                ``weights="ema"`` against an artifact with no EMA set.

        Legacy archives written by older builds (bare ``np.savez`` with a
        ``config_json`` array) still load, behind a ``UserWarning``.
        """
        import json

        from repro.core.registry import make_model

        artifact = read_artifact(path, kind=cls.MODEL_KIND, allow_legacy=True)
        arrays = artifact.arrays
        if artifact.manifest is not None:
            meta = dict(artifact.meta)
            if not isinstance(meta.get("config"), dict):
                raise ArtifactIncompatible(
                    f"{path}: artifact manifest carries no model configuration"
                )
        else:  # legacy bare .npz: config travels as a uint8 JSON array
            if "config_json" not in arrays:
                raise ArtifactIncompatible(
                    f"{path}: archive has neither a manifest nor a legacy "
                    "config_json entry — not an LHMM model"
                )
            meta = {
                "config": json.loads(
                    bytes(arrays["config_json"].tobytes()).decode()
                )
            }
        try:
            matcher = make_model(meta.get("arch", "lhmm"), **meta)
        except ArtifactIncompatible as error:
            raise ArtifactIncompatible(f"{path}: {error}") from error
        matcher.attach_dataset(dataset)
        matcher.load_state_dict(arrays, origin=str(path), weights=weights)
        return matcher

    def attach_dataset(self, dataset: MatchingDataset) -> "LHMM":
        """Bind the (large, static) map this model serves.

        Wires the road network, the routing engine, and an un-mined
        relation-graph shell from ``dataset`` — the half of a fitted
        matcher that is *not* stored in artifacts.  Call it between
        :func:`~repro.core.registry.make_model` and
        :meth:`load_state_dict`.  Returns ``self``.
        """
        self.network = dataset.network
        self.engine = dataset.engine
        self.graph = RelationGraph(dataset.network, dataset.towers)
        return self

    def load_state_dict(
        self, arrays, origin: str = "state", weights: str = "raw"
    ) -> "LHMM":
        """Load artifact arrays into an attached matcher.

        ``arrays`` is the envelope's array mapping (mined graph counts,
        embeddings, learner weights, optional ``ema.*`` shadow set).
        ``weights`` picks which weight set becomes the serving one:
        ``"raw"`` or ``"ema"`` — the mined graph counts are shared
        between sets.  Arrays are adopted by reference (read-only views
        are fine: inference never writes parameters), so processes
        attaching a shared-memory publication share one copy of the
        trained state.  ``origin`` only labels error messages.

        Raises :class:`~repro.errors.ArtifactIncompatible` when the
        arrays do not fit this config or the attached map, or when
        ``weights="ema"`` is requested from an artifact carrying no EMA
        set.  Returns ``self``.
        """
        if weights not in ("raw", "ema"):
            raise ValueError(f"weights must be 'raw' or 'ema', got {weights!r}")
        if self.graph is None or self.network is None:
            raise MatchFailure("call attach_dataset() before load_state_dict()")
        config = self.config
        prefix = "" if weights == "raw" else "ema."
        if weights == "ema" and "ema.node_embeddings" not in arrays:
            raise ArtifactIncompatible(
                f"{origin}: artifact carries no EMA shadow weight set "
                "(available weights: raw only — was it written by an older "
                "build?)"
            )
        try:
            self.graph.load_mining_state(
                {
                    "co_counts": arrays["graph.co_counts"],
                    "sq_counts": arrays["graph.sq_counts"],
                }
            )
            self.node_embeddings = arrays[f"{prefix}node_embeddings"]
            self.observation_learner = ObservationLearner(
                dim=config.embedding_dim,
                hidden=config.mlp_hidden,
                use_implicit=config.use_implicit_observation,
                num_explicit=config.observation_feature_count,
            )
            self.observation_learner.load_state_dict(
                {
                    k[len(prefix) + len("obs.") :]: arrays[k]
                    for k in arrays
                    if k.startswith(f"{prefix}obs.")
                }
            )
            self.transition_learner = TransitionLearner(
                dim=config.embedding_dim,
                hidden=config.mlp_hidden,
                use_implicit=config.use_implicit_transition,
            )
            self.transition_learner.load_state_dict(
                {
                    k[len(prefix) + len("trans.") :]: arrays[k]
                    for k in arrays
                    if k.startswith(f"{prefix}trans.")
                }
            )
        except (StateDictMismatch, KeyError, ValueError) as error:
            raise ArtifactIncompatible(
                f"{origin}: model does not fit this build or map "
                f"({type(error).__name__}: {error}); was it trained on a "
                "different dataset or package version?"
            ) from error
        ema = {
            k[len("ema.") :]: arrays[k] for k in arrays if k.startswith("ema.")
        }
        self._ema_arrays = ema or None
        self.weights_variant = weights
        self.observation_learner.eval()
        self.transition_learner.eval()
        return self

    @classmethod
    def from_artifact_arrays(
        cls,
        arrays,
        config: "LHMMConfig",
        dataset: MatchingDataset,
        origin: str = "artifact",
        weights: str = "raw",
    ) -> "LHMM":
        """Construct a fitted matcher directly from envelope arrays.

        The :meth:`attach_dataset` + :meth:`load_state_dict` pair for
        callers that already hold a validated config object and the
        artifact's arrays — in particular workers attaching a
        shared-memory publication of the model
        (:mod:`repro.serve.shards`) — so they can build a matcher without
        re-reading or copying the archive.
        """
        matcher = cls(config)
        matcher.attach_dataset(dataset)
        matcher.load_state_dict(arrays, origin=origin, weights=weights)
        return matcher


def _builtin_lhmm_factory(config=None, **_extra) -> LHMM:
    """Registry factory for the built-in LHMM family.

    ``config`` is the manifest's stored configuration dict; every Table
    III variant is encoded entirely by its ablation switches in there,
    so all family names share this one factory (the name only routes —
    the config is authoritative).  Extra manifest keys are ignored so
    manifests can grow fields without breaking older builds.
    """
    if not isinstance(config, dict):
        raise ArtifactIncompatible(
            "manifest meta carries no 'config' mapping for the lhmm family"
        )
    try:
        cfg = LHMMConfig(**config)
        cfg.validate()
    except (TypeError, ValueError) as error:
        raise ArtifactIncompatible(
            f"stored configuration is not usable by this build ({error})"
        ) from error
    return LHMM(cfg)


for _arch in ("lhmm", "lhmm-e", "lhmm-h", "lhmm-o", "lhmm-t", "lhmm-s"):
    register_model(_arch)(_builtin_lhmm_factory)
del _arch
