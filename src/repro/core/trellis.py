"""Candidate-graph path finding: Viterbi (Alg. 1) plus shortcuts (Alg. 2).

The trellis is deliberately matcher-agnostic: it consumes candidate sets and
a :class:`TrellisScorer` (observation and transition callbacks), so LHMM and
the heuristic HMM baselines — including the STM+S bolt-on of Table III —
share the same path-finding machinery.

Scores follow the paper exactly: the step score is
``W(c_{i-1} -> c_i) = P_T(c_{i-1} -> c_i) * P_O(c_i | x_i)`` (Eq. 13), path
scores are *sums* of step scores (Eq. 14), and unreachable transitions are
assigned a large negative penalty so they are chosen only when no
alternative exists.

Two interchangeable backends implement the forward pass:

* :class:`Trellis` — the reference dict-based implementation, kept as the
  oracle the differential tests (``tests/test_trellis_parity.py``) compare
  against;
* :class:`VectorizedTrellis` — assembles each step's ``W`` as a numpy
  matrix (one batched router/MLP call per layer when the scorer supports
  :class:`BatchTrellisScorer`) and runs the forward pass as log-domain
  max-plus updates with integer backpointers.

Both must decode the *same* sequence with the same tie-breaking (first
candidate in set order wins ties) and the same disconnected-lattice restart
behaviour; :func:`make_trellis` selects one by name.

Shortcut caveat: Algorithm 2 redirects ``pre[c_{i-1}^u]`` (line 10), which
the paper applies verbatim.  Applied unconditionally it can corrupt the
backtracks of *other* layer-``i`` states routed through ``c_{i-1}^u`` (a
later, weaker shortcut re-pointing the shared predecessor), so we redirect
only when the shortcut also improves ``f[i-1][u]`` — any state backtracking
through ``u`` then follows a predecessor at least as good as the one its
score was computed with.
"""

from __future__ import annotations

import math
from typing import Protocol, runtime_checkable

import numpy as np

from repro.cellular.trajectory import TrajectoryPoint
from repro.errors import InvalidTrajectoryInput, MatchFailure
from repro.network.road_network import RoadNetwork
from repro.network.router import Router

UNREACHABLE_SCORE = -1e6

#: Valid ``trellis_impl`` configuration values.
TRELLIS_IMPLS = ("reference", "vectorized")


class TrellisScorer(Protocol):
    """Scoring interface the trellis drives.

    Implementations must be able to score *any* segment at any point index,
    because shortcut construction inserts candidates that were not in the
    original candidate sets.
    """

    def observation(self, index: int, segment_id: int) -> float:
        """``P_O(segment | x_index)`` in ``[0, 1]``."""
        ...

    def transition(self, index: int, prev_segment_id: int, segment_id: int) -> float:
        """``P_T`` for moving between points ``index-1`` and ``index``.

        Return :data:`UNREACHABLE_SCORE` when no route exists.
        """
        ...


@runtime_checkable
class BatchTrellisScorer(Protocol):
    """Optional batched extension of :class:`TrellisScorer`.

    Implementations must return exactly the floats the scalar callbacks
    would — the vectorized backend's bit-parity with the reference depends
    on it (batch the *fetching*, keep the arithmetic identical).
    """

    def observation_batch(self, index: int, segment_ids: list[int]) -> np.ndarray:
        """``P_O`` for every segment of one point, aligned with the input."""
        ...

    def transition_batch(
        self, index: int, prev_segment_ids: list[int], segment_ids: list[int]
    ) -> np.ndarray:
        """``P_T`` matrix of shape ``(|prev|, |cur|)`` for one step."""
        ...


class Trellis:
    """One map-matching instance over fixed candidate sets (reference)."""

    def __init__(
        self,
        candidate_sets: list[list[int]],
        scorer: TrellisScorer,
        network: RoadNetwork,
        engine: Router,
        points: list[TrajectoryPoint],
    ) -> None:
        if len(candidate_sets) != len(points):
            raise InvalidTrajectoryInput(
                "one candidate set per trajectory point required"
            )
        if any(not c for c in candidate_sets):
            raise InvalidTrajectoryInput(
                "every point needs at least one candidate road "
                "(a point may lie too far from the network)"
            )
        self.candidate_sets = [list(c) for c in candidate_sets]
        self.scorer = scorer
        self.network = network
        self.engine = engine
        self.points = points
        self._f: list[dict[int, float]] = []
        self._pre: list[dict[int, int]] = []
        self._w_cache: dict[tuple[int, int, int], float] = {}

    # ---------------------------------------------------------------- scoring
    def _w(self, index: int, prev_segment: int, segment: int) -> float:
        """Cached step score ``W`` (Eq. 13)."""
        key = (index, prev_segment, segment)
        cached = self._w_cache.get(key)
        if cached is not None:
            return cached
        trans = self.scorer.transition(index, prev_segment, segment)
        if trans <= UNREACHABLE_SCORE:
            score = UNREACHABLE_SCORE
        else:
            score = trans * self.scorer.observation(index, segment)
        self._w_cache[key] = score
        return score

    # ---------------------------------------------------------------- viterbi
    def _forward(self) -> None:
        """Fill ``f`` and ``pre`` tables (Alg. 1, lines 4–12)."""
        n = len(self.points)
        self._f = [dict() for _ in range(n)]
        self._pre = [dict() for _ in range(n)]
        for seg in self.candidate_sets[0]:
            self._f[0][seg] = self.scorer.observation(0, seg)
        for i in range(1, n):
            for seg in self.candidate_sets[i]:
                best_score = -math.inf
                best_prev: int | None = None
                for prev_seg in self.candidate_sets[i - 1]:
                    score = self._f[i - 1][prev_seg] + self._w(i, prev_seg, seg)
                    if score > best_score:
                        best_score = score
                        best_prev = prev_seg
                self._f[i][seg] = best_score
                if best_prev is not None:
                    self._pre[i][seg] = best_prev

    # -------------------------------------------------------------- shortcuts
    def _closest_route_segment(self, route_segments: tuple[int, ...], index: int) -> int:
        """The route segment closest to point ``index`` (Alg. 2, line 5)."""
        position = self.points[index].position
        return min(
            route_segments,
            key=lambda seg_id: self.network.segments[seg_id].distance_to(position),
        )

    def _apply_shortcuts(self, shortcut_k: int) -> None:
        """Insert skipping edges for every candidate (Alg. 2)."""
        n = len(self.points)
        for i in range(2, n):
            prev_candidates = list(self.candidate_sets[i - 1])
            prev2_candidates = list(self.candidate_sets[i - 2])
            for seg in list(self.candidate_sets[i]):
                # Eq. 20: rank one-hop predecessors by the best two-step score.
                ranked: list[tuple[float, int]] = []
                for j_seg in prev2_candidates:
                    best_two_step = max(
                        (
                            self._w(i - 1, j_seg, l_seg) + self._w(i, l_seg, seg)
                            for l_seg in prev_candidates
                        ),
                        default=-math.inf,
                    )
                    ranked.append((best_two_step, j_seg))
                ranked.sort(reverse=True)
                for _, j_seg in ranked[:shortcut_k]:
                    route = self.engine.route(j_seg, seg)
                    if route is None or len(route.segments) == 0:
                        continue
                    u_seg = self._closest_route_segment(route.segments, i - 1)
                    w_in = self._w(i - 1, j_seg, u_seg)
                    w_out = self._w(i, u_seg, seg)
                    if w_in <= UNREACHABLE_SCORE or w_out <= UNREACHABLE_SCORE:
                        continue
                    shortcut_score = self._f[i - 2][j_seg] + w_in + w_out
                    if shortcut_score > self._f[i][seg]:
                        self._f[i][seg] = shortcut_score
                        self._pre[i][seg] = u_seg
                        # Redirect the shared predecessor only on score
                        # improvement: an unconditional redirect (the paper's
                        # literal line 10) lets a weaker shortcut re-point
                        # ``u``'s backtrack under states whose scores were
                        # computed through a better predecessor.
                        projected = self._f[i - 2][j_seg] + w_in
                        if projected > self._f[i - 1].get(u_seg, -math.inf):
                            self._f[i - 1][u_seg] = projected
                            self._pre[i - 1][u_seg] = j_seg
                        if u_seg not in self.candidate_sets[i - 1]:
                            self.candidate_sets[i - 1].append(u_seg)

    # -------------------------------------------------------------- interface
    def run(self, shortcut_k: int = 0) -> list[int]:
        """Best candidate per point (Alg. 1 with optional Alg. 2 shortcuts)."""
        self._forward()
        if shortcut_k > 0 and len(self.points) >= 3:
            self._apply_shortcuts(shortcut_k)
        return self._backtrack()

    def _backtrack(self) -> list[int]:
        n = len(self.points)
        last_scores = self._f[-1]
        current = max(last_scores, key=last_scores.get)  # type: ignore[arg-type]
        sequence = [current]
        for i in range(n - 1, 0, -1):
            current = self._pre[i].get(current)
            if current is None:
                # Disconnected trellis: restart from the best state at i-1.
                layer = self._f[i - 1]
                current = max(layer, key=layer.get)  # type: ignore[arg-type]
            sequence.append(current)
        sequence.reverse()
        return sequence

    @property
    def best_score(self) -> float:
        """Score of the decoded path (valid after :meth:`run`)."""
        if not self._f:
            raise MatchFailure("run() first")
        return max(self._f[-1].values())


class VectorizedTrellis(Trellis):
    """Log-domain matrix forward pass over batched per-step score matrices.

    Per layer it gathers every ``(prev, cur)`` candidate pair, fetches the
    whole transition matrix in one batched scorer call (one multi-source
    router query / one MLP batch, when the scorer implements
    :class:`BatchTrellisScorer`), and replaces the Python ``|prev|×|cur|``
    loop with a numpy max-plus update and integer backpointers.

    Decoding is bit-identical to :class:`Trellis`: ``W`` entries are the
    same floats, ``argmax`` keeps the reference's first-wins tie-breaking,
    all-unreachable columns leave no backpointer (the disconnected-lattice
    restart), and the shortcut pass ranks two-step predecessors directly
    off the retained per-step ``W`` matrices (one broadcast max instead of
    a triple Python loop), falling back to scalar ``W`` lookups only for
    candidates the shortcut pass itself inserted after the forward pass.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._capture_w = False
        # step index -> (prev seg -> row, cur seg -> col, W matrix), the
        # forward pass's own matrices retained for the shortcut pass.
        self._w_steps: dict[
            int, tuple[dict[int, int], dict[int, int], np.ndarray]
        ] = {}

    def _w(self, index: int, prev_segment: int, segment: int) -> float:
        """Step score served from the retained forward matrices when possible."""
        cached = self._w_cache.get((index, prev_segment, segment))
        if cached is not None:
            return cached
        step = self._w_steps.get(index)
        if step is not None:
            prev_pos, cur_pos, w = step
            j = prev_pos.get(prev_segment)
            k = cur_pos.get(segment)
            if j is not None and k is not None:
                return float(w[j, k])
        return super()._w(index, prev_segment, segment)

    def _closest_route_segment(
        self, route_segments: tuple[int, ...], index: int
    ) -> int:
        """Alg. 2 line 5 with one stacked distance pass.

        ``argmin`` returns the first minimum and the distances are the
        exact scalar ``distance_to`` floats, so the winner matches the
        reference's first-minimum ``min`` scan segment for segment.  Short
        routes (the common case) take the scalar scan directly — numpy
        setup costs more than a handful of ``distance_to`` calls — which
        is interchangeable because both compute identical distances.
        """
        n = len(route_segments)
        if n == 1:
            return route_segments[0]
        if n <= 16:
            return super()._closest_route_segment(route_segments, index)
        position = self.points[index].position
        distances = self.network.point_segment_distances(
            np.full(n, position.x),
            np.full(n, position.y),
            route_segments,
        )
        return route_segments[int(np.argmin(distances))]

    # ---------------------------------------------------------------- scoring
    def _observation_batch(self, index: int, segments: list[int]) -> np.ndarray:
        if isinstance(self.scorer, BatchTrellisScorer):
            return np.asarray(
                self.scorer.observation_batch(index, segments), dtype=np.float64
            )
        return np.array(
            [self.scorer.observation(index, seg) for seg in segments],
            dtype=np.float64,
        )

    def _step_matrix(self, index: int, prev: list[int], cur: list[int]) -> np.ndarray:
        """The step-score matrix ``W[j, k]`` (Eq. 13) for one trellis layer."""
        if isinstance(self.scorer, BatchTrellisScorer):
            trans = np.asarray(
                self.scorer.transition_batch(index, prev, cur), dtype=np.float64
            )
        else:
            trans = np.array(
                [[self.scorer.transition(index, p, c) for c in cur] for p in prev],
                dtype=np.float64,
            )
        obs = self._observation_batch(index, cur)
        reachable = trans > UNREACHABLE_SCORE
        w = np.where(reachable, trans * obs[np.newaxis, :], UNREACHABLE_SCORE)
        if self._capture_w:
            # Retain the matrix (plus id -> index maps) for the shortcut
            # pass; entries are the exact floats the scalar ``_w`` yields.
            self._w_steps[index] = (
                {p: j for j, p in enumerate(prev)},
                {c: k for k, c in enumerate(cur)},
                w,
            )
        return w

    # ---------------------------------------------------------------- viterbi
    def _forward(self) -> None:
        """Matrix max-plus forward pass, exactly mirroring the reference."""
        n = len(self.points)
        self._f = [dict() for _ in range(n)]
        self._pre = [dict() for _ in range(n)]
        first = self.candidate_sets[0]
        f_prev = self._observation_batch(0, first)
        self._f[0] = {seg: float(v) for seg, v in zip(first, f_prev)}
        for i in range(1, n):
            prev = self.candidate_sets[i - 1]
            cur = self.candidate_sets[i]
            w = self._step_matrix(i, prev, cur)
            scores = f_prev[:, np.newaxis] + w
            # argmax returns the first maximum, matching the reference's
            # strictly-greater scan over candidates in set order.
            best_rows = scores.argmax(axis=0)
            f_cur = scores[best_rows, np.arange(len(cur))]
            layer_f = self._f[i]
            layer_pre = self._pre[i]
            for k, seg in enumerate(cur):
                value = float(f_cur[k])
                layer_f[seg] = value
                # A column with no finite entry means every predecessor
                # scored -inf: the reference records no backpointer there
                # and the backtrack restarts from the best previous state.
                if value > -math.inf:
                    layer_pre[seg] = prev[int(best_rows[k])]
                else:
                    layer_f[seg] = -math.inf
            f_cur = np.array([layer_f[seg] for seg in cur], dtype=np.float64)
            f_prev = f_cur

    # -------------------------------------------------------------- shortcuts
    def _apply_shortcuts(self, shortcut_k: int) -> None:
        """Alg. 2 with the Eq. 20 ranking done as one broadcast max per layer.

        At layer ``i`` the one-hop candidates (``candidate_sets[i-1]``) are
        always the forward pass's originals — shortcut insertion appends to
        layer ``i-1`` only *while* processing layer ``i`` — so the stored
        ``W`` matrices of steps ``i-1`` and ``i`` cover every (j, l, seg)
        triple except two-hop predecessors ``j`` inserted during layer
        ``i-1``; those few get a scalar ``_w`` row.  The ranked list is
        assembled in candidate order and sorted exactly like the reference,
        and the shortcut application itself is the inherited loop body.
        """
        if any(i not in self._w_steps for i in range(1, len(self.points))):
            super()._apply_shortcuts(shortcut_k)
            return
        n = len(self.points)
        for i in range(2, n):
            prev_candidates = list(self.candidate_sets[i - 1])
            prev2_candidates = list(self.candidate_sets[i - 2])
            prev2_pos, prev1_pos, w1 = self._w_steps[i - 1]
            _, cur_pos, w2 = self._w_steps[i]
            # w1 columns and w2 rows are both indexed by the original layer
            # i-1 candidates, in the same order, so the two-step score of
            # (j, l, seg) is w1[j, l] + w2[l, seg].
            best_two_all = np.max(w1[:, :, None] + w2[None, :, :], axis=1)
            extra_rows: dict[int, np.ndarray] = {}
            for seg in list(self.candidate_sets[i]):
                s_col = cur_pos[seg]
                ranked: list[tuple[float, int]] = []
                for j_seg in prev2_candidates:
                    j_row = prev2_pos.get(j_seg)
                    if j_row is not None:
                        best_two_step = float(best_two_all[j_row, s_col])
                    else:
                        row = extra_rows.get(j_seg)
                        if row is None:
                            row = np.array(
                                [self._w(i - 1, j_seg, l) for l in prev_candidates],
                                dtype=np.float64,
                            )
                            extra_rows[j_seg] = row
                        best_two_step = float(np.max(row + w2[:, s_col]))
                    ranked.append((best_two_step, j_seg))
                ranked.sort(reverse=True)
                for _, j_seg in ranked[:shortcut_k]:
                    route = self.engine.route(j_seg, seg)
                    if route is None or len(route.segments) == 0:
                        continue
                    u_seg = self._closest_route_segment(route.segments, i - 1)
                    w_in = self._w(i - 1, j_seg, u_seg)
                    w_out = self._w(i, u_seg, seg)
                    if w_in <= UNREACHABLE_SCORE or w_out <= UNREACHABLE_SCORE:
                        continue
                    shortcut_score = self._f[i - 2][j_seg] + w_in + w_out
                    if shortcut_score > self._f[i][seg]:
                        self._f[i][seg] = shortcut_score
                        self._pre[i][seg] = u_seg
                        projected = self._f[i - 2][j_seg] + w_in
                        if projected > self._f[i - 1].get(u_seg, -math.inf):
                            self._f[i - 1][u_seg] = projected
                            self._pre[i - 1][u_seg] = j_seg
                        if u_seg not in self.candidate_sets[i - 1]:
                            self.candidate_sets[i - 1].append(u_seg)

    def run(self, shortcut_k: int = 0) -> list[int]:
        """Best candidate per point (Alg. 1 with optional Alg. 2 shortcuts)."""
        # Retain the step matrices only when the shortcut pass will read
        # them; the plain Viterbi skips that bookkeeping.
        self._capture_w = shortcut_k > 0 and len(self.points) >= 3
        return super().run(shortcut_k)


def make_trellis(
    candidate_sets: list[list[int]],
    scorer: TrellisScorer,
    network: RoadNetwork,
    engine: Router,
    points: list[TrajectoryPoint],
    impl: str = "vectorized",
) -> Trellis:
    """Build the trellis backend named by ``impl``.

    ``"vectorized"`` (the default) runs the batched matrix kernel;
    ``"reference"`` runs the dict-based oracle.  Both decode identical
    sequences — the differential suite enforces it.
    """
    if impl not in TRELLIS_IMPLS:
        raise ValueError(
            f"unknown trellis impl {impl!r}; choose from {list(TRELLIS_IMPLS)}"
        )
    cls = VectorizedTrellis if impl == "vectorized" else Trellis
    return cls(candidate_sets, scorer, network, engine, points)
