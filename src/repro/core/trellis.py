"""Candidate-graph path finding: Viterbi (Alg. 1) plus shortcuts (Alg. 2).

The trellis is deliberately matcher-agnostic: it consumes candidate sets and
a :class:`TrellisScorer` (observation and transition callbacks), so LHMM and
the heuristic HMM baselines — including the STM+S bolt-on of Table III —
share the same path-finding machinery.

Scores follow the paper exactly: the step score is
``W(c_{i-1} -> c_i) = P_T(c_{i-1} -> c_i) * P_O(c_i | x_i)`` (Eq. 13), path
scores are *sums* of step scores (Eq. 14), and unreachable transitions are
assigned a large negative penalty so they are chosen only when no
alternative exists.

Shortcut caveat: Algorithm 2 redirects ``pre[c_{i-1}^u]`` in place (line 10),
which can alter backtracks of other states passing through ``c_{i-1}^u``.
We reproduce the paper's behaviour verbatim; because updates apply only on
score improvement this is benign in practice.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.cellular.trajectory import TrajectoryPoint
from repro.errors import InvalidTrajectoryInput, MatchFailure
from repro.network.road_network import RoadNetwork
from repro.network.router import Router

UNREACHABLE_SCORE = -1e6


class TrellisScorer(Protocol):
    """Scoring interface the trellis drives.

    Implementations must be able to score *any* segment at any point index,
    because shortcut construction inserts candidates that were not in the
    original candidate sets.
    """

    def observation(self, index: int, segment_id: int) -> float:
        """``P_O(segment | x_index)`` in ``[0, 1]``."""
        ...

    def transition(self, index: int, prev_segment_id: int, segment_id: int) -> float:
        """``P_T`` for moving between points ``index-1`` and ``index``.

        Return :data:`UNREACHABLE_SCORE` when no route exists.
        """
        ...


class Trellis:
    """One map-matching instance over fixed candidate sets."""

    def __init__(
        self,
        candidate_sets: list[list[int]],
        scorer: TrellisScorer,
        network: RoadNetwork,
        engine: Router,
        points: list[TrajectoryPoint],
    ) -> None:
        if len(candidate_sets) != len(points):
            raise InvalidTrajectoryInput(
                "one candidate set per trajectory point required"
            )
        if any(not c for c in candidate_sets):
            raise InvalidTrajectoryInput(
                "every point needs at least one candidate road "
                "(a point may lie too far from the network)"
            )
        self.candidate_sets = [list(c) for c in candidate_sets]
        self.scorer = scorer
        self.network = network
        self.engine = engine
        self.points = points
        self._f: list[dict[int, float]] = []
        self._pre: list[dict[int, int]] = []
        self._w_cache: dict[tuple[int, int, int], float] = {}

    # ---------------------------------------------------------------- scoring
    def _w(self, index: int, prev_segment: int, segment: int) -> float:
        """Cached step score ``W`` (Eq. 13)."""
        key = (index, prev_segment, segment)
        cached = self._w_cache.get(key)
        if cached is not None:
            return cached
        trans = self.scorer.transition(index, prev_segment, segment)
        if trans <= UNREACHABLE_SCORE:
            score = UNREACHABLE_SCORE
        else:
            score = trans * self.scorer.observation(index, segment)
        self._w_cache[key] = score
        return score

    # ---------------------------------------------------------------- viterbi
    def _forward(self) -> None:
        """Fill ``f`` and ``pre`` tables (Alg. 1, lines 4–12)."""
        n = len(self.points)
        self._f = [dict() for _ in range(n)]
        self._pre = [dict() for _ in range(n)]
        for seg in self.candidate_sets[0]:
            self._f[0][seg] = self.scorer.observation(0, seg)
        for i in range(1, n):
            for seg in self.candidate_sets[i]:
                best_score = -math.inf
                best_prev: int | None = None
                for prev_seg in self.candidate_sets[i - 1]:
                    score = self._f[i - 1][prev_seg] + self._w(i, prev_seg, seg)
                    if score > best_score:
                        best_score = score
                        best_prev = prev_seg
                self._f[i][seg] = best_score
                if best_prev is not None:
                    self._pre[i][seg] = best_prev

    # -------------------------------------------------------------- shortcuts
    def _closest_route_segment(self, route_segments: tuple[int, ...], index: int) -> int:
        """The route segment closest to point ``index`` (Alg. 2, line 5)."""
        position = self.points[index].position
        return min(
            route_segments,
            key=lambda seg_id: self.network.segments[seg_id].distance_to(position),
        )

    def _apply_shortcuts(self, shortcut_k: int) -> None:
        """Insert skipping edges for every candidate (Alg. 2)."""
        n = len(self.points)
        for i in range(2, n):
            prev_candidates = list(self.candidate_sets[i - 1])
            prev2_candidates = list(self.candidate_sets[i - 2])
            for seg in list(self.candidate_sets[i]):
                # Eq. 20: rank one-hop predecessors by the best two-step score.
                ranked: list[tuple[float, int]] = []
                for j_seg in prev2_candidates:
                    best_two_step = max(
                        (
                            self._w(i - 1, j_seg, l_seg) + self._w(i, l_seg, seg)
                            for l_seg in prev_candidates
                        ),
                        default=-math.inf,
                    )
                    ranked.append((best_two_step, j_seg))
                ranked.sort(reverse=True)
                for _, j_seg in ranked[:shortcut_k]:
                    route = self.engine.route(j_seg, seg)
                    if route is None or len(route.segments) == 0:
                        continue
                    u_seg = self._closest_route_segment(route.segments, i - 1)
                    w_in = self._w(i - 1, j_seg, u_seg)
                    w_out = self._w(i, u_seg, seg)
                    if w_in <= UNREACHABLE_SCORE or w_out <= UNREACHABLE_SCORE:
                        continue
                    shortcut_score = self._f[i - 2][j_seg] + w_in + w_out
                    if shortcut_score > self._f[i][seg]:
                        self._f[i][seg] = shortcut_score
                        self._pre[i][seg] = u_seg
                        self._pre[i - 1][u_seg] = j_seg
                        # Keep layer i-1 self-consistent for later backtracks.
                        projected = self._f[i - 2][j_seg] + w_in
                        if projected > self._f[i - 1].get(u_seg, -math.inf):
                            self._f[i - 1][u_seg] = projected
                        if u_seg not in self.candidate_sets[i - 1]:
                            self.candidate_sets[i - 1].append(u_seg)

    # -------------------------------------------------------------- interface
    def run(self, shortcut_k: int = 0) -> list[int]:
        """Best candidate per point (Alg. 1 with optional Alg. 2 shortcuts)."""
        self._forward()
        if shortcut_k > 0 and len(self.points) >= 3:
            self._apply_shortcuts(shortcut_k)
        return self._backtrack()

    def _backtrack(self) -> list[int]:
        n = len(self.points)
        last_scores = self._f[-1]
        current = max(last_scores, key=last_scores.get)  # type: ignore[arg-type]
        sequence = [current]
        for i in range(n - 1, 0, -1):
            current = self._pre[i].get(current)
            if current is None:
                # Disconnected trellis: restart from the best state at i-1.
                layer = self._f[i - 1]
                current = max(layer, key=layer.get)  # type: ignore[arg-type]
            sequence.append(current)
        sequence.reverse()
        return sequence

    @property
    def best_score(self) -> float:
        """Score of the decoded path (valid after :meth:`run`)."""
        if not self._f:
            raise MatchFailure("run() first")
        return max(self._f[-1].values())
