"""The multi-relational tower/road graph (§IV-B, "Multi-relational Graph
Construction").

Nodes are all cell towers plus all road segments in one shared id space.
Three forward relations are mined, each with an inverse so messages flow
both ways during encoding (the R-GCN convention):

* ``CO`` — co-occurrence: a ground-truth road co-occurs with the trajectory
  point whose tower is closest to it; edge weights count occurrences.
* ``SQ`` — sequentiality: consecutive towers within training trajectories.
* ``TP`` — topology: road-to-road adjacency on the network.

The graph also exposes the co-occurrence *frequency* used as an explicit
observation feature (Eq. 8).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cellular.tower import TowerField
from repro.datasets.dataset import MatchingSample
from repro.network.road_network import RoadNetwork

RELATIONS = ("CO", "CO_inv", "SQ", "SQ_inv", "TP", "TP_inv")


@dataclass(slots=True)
class RelationEdges:
    """Edges of one relation as parallel source/target index arrays."""

    sources: np.ndarray
    targets: np.ndarray
    weights: np.ndarray

    @property
    def count(self) -> int:
        """Number of edges in this relation."""
        return int(self.sources.shape[0])


class RelationGraph:
    """Unified tower+road graph with typed edges and co-occurrence counts."""

    def __init__(self, network: RoadNetwork, towers: TowerField) -> None:
        self.network = network
        self.towers = towers
        # Towers occupy [0, T), road segments [T, T + R).
        self._tower_ids = sorted(towers.towers)
        self._segment_ids = sorted(network.segments)
        self._tower_index = {tid: i for i, tid in enumerate(self._tower_ids)}
        self._segment_index = {
            sid: len(self._tower_ids) + i for i, sid in enumerate(self._segment_ids)
        }
        self.num_towers = len(self._tower_ids)
        self.num_segments = len(self._segment_ids)
        self.num_nodes = self.num_towers + self.num_segments
        self._co_counts: Counter[tuple[int, int]] = Counter()
        self._sq_counts: Counter[tuple[int, int]] = Counter()
        self._tower_totals: Counter[int] = Counter()
        self._tower_roads: dict[int, set[int]] = defaultdict(set)
        self.edges: dict[str, RelationEdges] = {}
        # Per-tower co-occurrence extension tuples (see cooccurrence_extension)
        # and dense id -> node-index lookup arrays for np.take gathers; both
        # derived lazily, invalidated when mining state changes.
        self._extension_cache: dict[int, tuple[int, ...]] = {}
        self._tower_node_lookup: np.ndarray | None = None
        self._segment_node_lookup: np.ndarray | None = None
        # Bumped whenever mined state changes, so downstream caches (the
        # matcher's candidate-pool cache) know to invalidate.
        self.mining_version = 0

    # ---------------------------------------------------------------- indices
    def tower_node(self, tower_id: int) -> int:
        """Graph node index of a cell tower."""
        return self._tower_index[tower_id]

    def segment_node(self, segment_id: int) -> int:
        """Graph node index of a road segment."""
        return self._segment_index[segment_id]

    @staticmethod
    def _dense_lookup(index: dict[int, int]) -> np.ndarray:
        """Dense id -> node-index array (-1 marks unknown ids)."""
        size = (max(index) + 1) if index else 0
        lookup = np.full(size, -1, dtype=np.int64)
        for item_id, node in index.items():
            lookup[item_id] = node
        return lookup

    def _gather_nodes(
        self, lookup: np.ndarray, index: dict[int, int], ids: list[int]
    ) -> np.ndarray:
        ids_arr = np.asarray(ids, dtype=np.int64)
        if ids_arr.size == 0:
            return ids_arr
        if ids_arr.min() < 0 or ids_arr.max() >= lookup.size:
            # Out-of-range id: fall back to the dict for the exact KeyError.
            return np.array([index[i] for i in ids], dtype=np.int64)
        out = lookup.take(ids_arr)
        if (out < 0).any():
            missing = ids_arr[out < 0][0]
            raise KeyError(int(missing))
        return out

    def tower_nodes(self, tower_ids: list[int]) -> np.ndarray:
        """Vectorised :meth:`tower_node` (one ``np.take`` gather)."""
        if self._tower_node_lookup is None:
            self._tower_node_lookup = self._dense_lookup(self._tower_index)
        return self._gather_nodes(self._tower_node_lookup, self._tower_index, tower_ids)

    def segment_nodes(self, segment_ids: list[int]) -> np.ndarray:
        """Vectorised :meth:`segment_node` (one ``np.take`` gather)."""
        if self._segment_node_lookup is None:
            self._segment_node_lookup = self._dense_lookup(self._segment_index)
        return self._gather_nodes(
            self._segment_node_lookup, self._segment_index, segment_ids
        )

    # ----------------------------------------------------------------- mining
    def add_trajectory(self, sample: MatchingSample) -> None:
        """Mine CO and SQ edges from one training sample.

        CO follows the paper's definition: a path road ``e`` co-occurs with
        the trajectory point whose tower is *closest to e* among the
        trajectory's points.
        """
        towers_seq = [p.tower_id for p in sample.cellular.points if p.tower_id is not None]
        if not towers_seq:
            return
        self._extension_cache.clear()  # mined roads change the pool extensions
        self.mining_version += 1
        for earlier, later in zip(towers_seq, towers_seq[1:]):
            if earlier != later:
                self._sq_counts[(earlier, later)] += 1
        tower_positions = [self.towers.location(t) for t in towers_seq]
        for seg_id in sample.truth_path:
            seg = self.network.segments[seg_id]
            mid = seg.midpoint
            best = min(
                range(len(towers_seq)),
                key=lambda i: tower_positions[i].distance_to(mid),
            )
            tower_id = towers_seq[best]
            self._co_counts[(tower_id, seg_id)] += 1
            self._tower_totals[tower_id] += 1
            self._tower_roads[tower_id].add(seg_id)

    def build(self, samples: list[MatchingSample] | None = None) -> "RelationGraph":
        """Finalise edge arrays (optionally mining ``samples`` first)."""
        for sample in samples or []:
            self.add_trajectory(sample)

        co_src, co_dst, co_w = [], [], []
        for (tower_id, seg_id), count in self._co_counts.items():
            co_src.append(self.tower_node(tower_id))
            co_dst.append(self.segment_node(seg_id))
            co_w.append(float(count))
        sq_src, sq_dst, sq_w = [], [], []
        for (a, b), count in self._sq_counts.items():
            sq_src.append(self.tower_node(a))
            sq_dst.append(self.tower_node(b))
            sq_w.append(float(count))
        tp_src, tp_dst = [], []
        for seg_id in self._segment_ids:
            for succ in self.network.successors(seg_id):
                tp_src.append(self.segment_node(seg_id))
                tp_dst.append(self.segment_node(succ))
        tp_w = [1.0] * len(tp_src)

        def edges(src: list, dst: list, weights: list) -> RelationEdges:
            return RelationEdges(
                sources=np.asarray(src, dtype=np.int64),
                targets=np.asarray(dst, dtype=np.int64),
                weights=np.asarray(weights, dtype=np.float64),
            )

        self.edges = {
            "CO": edges(co_src, co_dst, co_w),
            "CO_inv": edges(co_dst, co_src, co_w),
            "SQ": edges(sq_src, sq_dst, sq_w),
            "SQ_inv": edges(sq_dst, sq_src, sq_w),
            "TP": edges(tp_src, tp_dst, tp_w),
            "TP_inv": edges(tp_dst, tp_src, tp_w),
        }
        return self

    # --------------------------------------------------------------- features
    def co_occurrence_frequency(self, tower_id: int, segment_id: int) -> float:
        """Fraction of the tower's co-occurrences landing on ``segment_id``.

        This is the explicit "co-occurrence frequency" feature of Eq. 8;
        zero for pairs never seen in training.
        """
        total = self._tower_totals.get(tower_id, 0)
        if not total:
            return 0.0
        return self._co_counts.get((tower_id, segment_id), 0) / total

    def roads_seen_with(self, tower_id: int) -> set[int]:
        """Road segments that historically co-occur with ``tower_id``."""
        return self._tower_roads.get(tower_id, set())

    def cooccurrence_extension(self, tower_id: int) -> tuple[int, ...]:
        """:meth:`roads_seen_with` as a cached, iteration-order-stable tuple.

        Candidate-pool construction appends these roads to every point's
        spatial pool; hoisting the set iteration into a per-tower tuple
        (computed once, invalidated when mining changes) removes that
        per-point re-derivation while preserving the exact enumeration
        order of the underlying set.
        """
        cached = self._extension_cache.get(tower_id)
        if cached is None:
            cached = tuple(self._tower_roads.get(tower_id, ()))
            self._extension_cache[tower_id] = cached
        return cached

    def co_occurrence_frequencies(
        self, tower_id: int, segment_ids: Sequence[int]
    ) -> np.ndarray:
        """Vectorised :meth:`co_occurrence_frequency` over one tower's pool.

        Same per-element division as the scalar call (counts and totals are
        exactly representable, so the float quotients are identical).
        """
        total = self._tower_totals.get(tower_id, 0)
        n = len(segment_ids)
        if not total:
            return np.zeros(n)
        co = self._co_counts
        counts = np.fromiter(
            (co.get((tower_id, s), 0) for s in segment_ids),
            dtype=np.float64,
            count=n,
        )
        return counts / total

    # ------------------------------------------------------------ persistence
    def mining_state(self) -> dict[str, np.ndarray]:
        """The mined counts as arrays (for persisting a trained matcher)."""
        co = np.array(
            [(t, s, c) for (t, s), c in self._co_counts.items()], dtype=np.int64
        ).reshape(-1, 3)
        sq = np.array(
            [(a, b, c) for (a, b), c in self._sq_counts.items()], dtype=np.int64
        ).reshape(-1, 3)
        return {"co_counts": co, "sq_counts": sq}

    def load_mining_state(self, state: dict[str, np.ndarray]) -> "RelationGraph":
        """Restore counts saved by :meth:`mining_state`, then re-build edges."""
        self._co_counts.clear()
        self._sq_counts.clear()
        self._tower_totals.clear()
        self._tower_roads.clear()
        self._extension_cache.clear()
        self.mining_version += 1
        for tower_id, seg_id, count in np.asarray(state["co_counts"]).reshape(-1, 3):
            self._co_counts[(int(tower_id), int(seg_id))] = int(count)
            self._tower_totals[int(tower_id)] += int(count)
            self._tower_roads[int(tower_id)].add(int(seg_id))
        for a, b, count in np.asarray(state["sq_counts"]).reshape(-1, 3):
            self._sq_counts[(int(a), int(b))] = int(count)
        return self.build()

    def merged_edges(self) -> RelationEdges:
        """All relations flattened into one homogeneous edge set (LHMM-H)."""
        if not self.edges:
            raise RuntimeError("call build() first")
        return RelationEdges(
            sources=np.concatenate([e.sources for e in self.edges.values()]),
            targets=np.concatenate([e.targets for e in self.edges.values()]),
            weights=np.concatenate([e.weights for e in self.edges.values()]),
        )
