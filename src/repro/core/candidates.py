"""Candidate road retrieval (Definition 4 / Step 1 of §IV-E)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.cellular.trajectory import TrajectoryPoint
from repro.errors import InvalidTrajectoryInput
from repro.network.road_network import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.relation_graph import RelationGraph


def spatial_candidate_pool(
    network: RoadNetwork,
    point: TrajectoryPoint,
    radius_m: float,
    limit: int,
) -> list[int]:
    """Roads within ``radius_m`` of the sample, nearest first, capped at ``limit``.

    Falls back to the nearest roads when the radius search comes back empty
    (points in network gaps must still receive candidates).  A point so far
    from the network that even the expanded nearest-road search finds
    nothing raises :class:`InvalidTrajectoryInput` — a structured rejection
    instead of an empty pool crashing deep inside the trellis.  This pool
    is what LHMM's learned observation probability re-ranks; distance-based
    baselines take their top-k directly from it.
    """
    pool = network.segments_near(point.position, radius_m)
    if not pool:
        pool = network.nearest_segments(point.position, count=limit)
    if not pool:
        raise InvalidTrajectoryInput(
            f"no candidate road anywhere near point "
            f"({point.position.x:.0f}, {point.position.y:.0f}) "
            f"(searched {radius_m:.0f}m radius, then nearest-road fallback)"
        )
    return pool[:limit]


def learned_candidate_pool(
    graph: "RelationGraph",
    point: TrajectoryPoint,
    radius_m: float,
    limit: int,
    include_cooccurrence: bool = True,
) -> list[int]:
    """Spatial pool plus the tower's historically co-occurring roads.

    Appending co-occurring roads realises LHMM's ability to reach "more
    relevant but farther roads" (Example 1): a road outside the spatial
    radius — or beyond the nearest-first cap in dense areas — still enters
    the pool when history says this tower serves it.  Training and
    inference must use the *same* pool builder so the pool-relative rank
    features stay distributionally consistent.
    """
    pool = spatial_candidate_pool(graph.network, point, radius_m, limit)
    if include_cooccurrence and point.tower_id is not None:
        # The per-tower extension tuple is cached on the graph; deriving it
        # from the co-occurrence set once per tower (instead of once per
        # point) preserves the set's enumeration order exactly.
        known = graph.cooccurrence_extension(point.tower_id)
        pool_set = set(pool)
        pool.extend(seg for seg in known if seg not in pool_set)
    return pool


class CandidatePoolCache:
    """Memoised learned candidate pools for the batched pipeline.

    Cellular points at the same tower (and simulated points share their
    tower's exact location) ask the same spatial question over and over;
    this cache answers each distinct ``(tower_id, x, y)`` key once.  Misses
    are resolved in bulk through the network's stacked spatial kernel
    (:meth:`RoadNetwork.segments_near_many`), so a cold trajectory costs one
    vectorised pass rather than one index round-trip per point.  Pools are
    returned as fresh lists, and equal exactly what
    :func:`learned_candidate_pool` returns for the same point — including
    the nearest-road fallback and the :class:`InvalidTrajectoryInput`
    raised at the *first* failing point in input order.
    """

    def __init__(
        self,
        graph: "RelationGraph",
        radius_m: float,
        limit: int,
        include_cooccurrence: bool = True,
        max_entries: int = 100_000,
    ) -> None:
        self.graph = graph
        self.radius_m = float(radius_m)
        self.limit = int(limit)
        self.include_cooccurrence = bool(include_cooccurrence)
        self.max_entries = int(max_entries)
        self._pools: dict[tuple[int | None, float, float], tuple[int, ...]] = {}
        # Per-key explicit observation features and graph-node index arrays.
        # Both depend only on the cache key (position, tower mining state),
        # so they are memoised next to the pool; keyed additionally by
        # ``include_ranks`` because ablations flip it per matcher config.
        self._features: dict[
            tuple[int | None, float, float, bool], np.ndarray
        ] = {}
        self._nodes: dict[tuple[int | None, float, float], np.ndarray] = {}

    def _key(self, point: TrajectoryPoint) -> tuple[int | None, float, float]:
        # Keyed by position *and* tower id: the protocol layer accepts
        # arbitrary (x, y) per tower, and the co-occurrence extension
        # depends on the tower alone.
        return (point.tower_id, point.position.x, point.position.y)

    def pools(self, points: Sequence[TrajectoryPoint]) -> list[list[int]]:
        """Candidate pools for all points, batch-resolving cache misses."""
        keys = [self._key(p) for p in points]
        miss_order: list[int] = []
        seen_miss: set[tuple[int | None, float, float]] = set()
        for i, key in enumerate(keys):
            if key not in self._pools and key not in seen_miss:
                seen_miss.add(key)
                miss_order.append(i)
        if miss_order:
            self._resolve_misses([points[i] for i in miss_order])
        return [list(self._pools[key]) for key in keys]

    def pool(self, point: TrajectoryPoint) -> list[int]:
        """Candidate pool for one point (streaming entry point)."""
        return self.pools([point])[0]

    def pools_features(
        self, points: Sequence[TrajectoryPoint], include_ranks: bool = True
    ) -> tuple[list[list[int]], np.ndarray, np.ndarray, np.ndarray]:
        """Pools plus the stacked explicit ``D_O`` block and node indices.

        Returns ``(pools, features, counts, node_idx)`` where ``features``
        row-stacks each point's explicit observation-feature block
        (distance, frequency and — when ``include_ranks`` — the pool-rank
        columns), ``counts[i] = len(pools[i])`` and ``node_idx`` holds the
        graph-node index of every stacked candidate (the embedding gather).
        The explicit block and node indices depend only on the cache key,
        so both are memoised per key: repeat towers skip the distance
        kernel, the frequency lookups and the rank argsorts entirely.
        Cached blocks are slices of a stacked computation whose per-pair
        values are bit-identical to per-point scalar calls, so assembling
        them per trajectory reproduces
        :func:`~repro.core.features.stacked_observation_features` exactly.
        """
        from repro.core.features import stacked_observation_features

        pools = self.pools(points)
        keys = [self._key(p) for p in points]
        miss_idx: list[int] = []
        seen: set[tuple[int | None, float, float, bool]] = set()
        for i, key in enumerate(keys):
            fkey = (*key, include_ranks)
            if fkey not in self._features and fkey not in seen:
                seen.add(fkey)
                miss_idx.append(i)
        if miss_idx:
            block, block_counts = stacked_observation_features(
                self.graph,
                [points[i] for i in miss_idx],
                [pools[i] for i in miss_idx],
                include_ranks=include_ranks,
            )
            offset = 0
            for i, count in zip(miss_idx, block_counts):
                m = int(count)
                if len(self._features) >= self.max_entries:
                    self._features.clear()
                self._features[(*keys[i], include_ranks)] = block[offset : offset + m]
                offset += m
        for i, key in enumerate(keys):
            if key not in self._nodes:
                if len(self._nodes) >= self.max_entries:
                    self._nodes.clear()
                self._nodes[key] = self.graph.segment_nodes(pools[i])
        counts = np.fromiter(
            (len(pool) for pool in pools), dtype=np.int64, count=len(pools)
        )
        blocks = [self._features[(*key, include_ranks)] for key in keys]
        node_parts = [self._nodes[key] for key in keys]
        if blocks:
            features = np.concatenate(blocks, axis=0)
            node_idx = np.concatenate(node_parts)
        else:
            from repro.core.features import (
                NUM_BASE_OBSERVATION_FEATURES,
                NUM_OBSERVATION_FEATURES,
            )

            width = (
                NUM_OBSERVATION_FEATURES
                if include_ranks
                else NUM_BASE_OBSERVATION_FEATURES
            )
            features = np.empty((0, width), dtype=np.float64)
            node_idx = np.empty(0, dtype=np.int64)
        return pools, features, counts, node_idx

    def _resolve_misses(self, points: list[TrajectoryPoint]) -> None:
        network = self.graph.network
        spatial = network.segments_near_many(
            [p.position for p in points], self.radius_m
        )
        for point, near in zip(points, spatial):
            pool = list(near)
            if not pool:
                pool = network.nearest_segments(point.position, count=self.limit)
            if not pool:
                raise InvalidTrajectoryInput(
                    f"no candidate road anywhere near point "
                    f"({point.position.x:.0f}, {point.position.y:.0f}) "
                    f"(searched {self.radius_m:.0f}m radius, then "
                    f"nearest-road fallback)"
                )
            pool = pool[: self.limit]
            if self.include_cooccurrence and point.tower_id is not None:
                known = self.graph.cooccurrence_extension(point.tower_id)
                pool_set = set(pool)
                pool.extend(seg for seg in known if seg not in pool_set)
            if len(self._pools) >= self.max_entries:
                self._pools.clear()
            self._pools[self._key(point)] = tuple(pool)
