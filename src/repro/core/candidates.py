"""Candidate road retrieval (Definition 4 / Step 1 of §IV-E)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cellular.trajectory import TrajectoryPoint
from repro.errors import InvalidTrajectoryInput
from repro.network.road_network import RoadNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.relation_graph import RelationGraph


def spatial_candidate_pool(
    network: RoadNetwork,
    point: TrajectoryPoint,
    radius_m: float,
    limit: int,
) -> list[int]:
    """Roads within ``radius_m`` of the sample, nearest first, capped at ``limit``.

    Falls back to the nearest roads when the radius search comes back empty
    (points in network gaps must still receive candidates).  A point so far
    from the network that even the expanded nearest-road search finds
    nothing raises :class:`InvalidTrajectoryInput` — a structured rejection
    instead of an empty pool crashing deep inside the trellis.  This pool
    is what LHMM's learned observation probability re-ranks; distance-based
    baselines take their top-k directly from it.
    """
    pool = network.segments_near(point.position, radius_m)
    if not pool:
        pool = network.nearest_segments(point.position, count=limit)
    if not pool:
        raise InvalidTrajectoryInput(
            f"no candidate road anywhere near point "
            f"({point.position.x:.0f}, {point.position.y:.0f}) "
            f"(searched {radius_m:.0f}m radius, then nearest-road fallback)"
        )
    return pool[:limit]


def learned_candidate_pool(
    graph: "RelationGraph",
    point: TrajectoryPoint,
    radius_m: float,
    limit: int,
    include_cooccurrence: bool = True,
) -> list[int]:
    """Spatial pool plus the tower's historically co-occurring roads.

    Appending co-occurring roads realises LHMM's ability to reach "more
    relevant but farther roads" (Example 1): a road outside the spatial
    radius — or beyond the nearest-first cap in dense areas — still enters
    the pool when history says this tower serves it.  Training and
    inference must use the *same* pool builder so the pool-relative rank
    features stay distributionally consistent.
    """
    pool = spatial_candidate_pool(graph.network, point, radius_m, limit)
    if include_cooccurrence and point.tower_id is not None:
        known = graph.roads_seen_with(point.tower_id)
        pool_set = set(pool)
        pool.extend(seg for seg in known if seg not in pool_set)
    return pool
