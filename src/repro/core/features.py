"""Explicit features for the learned probabilities (Eq. 8 and Eq. 12).

The observation features ``D_O`` are the normalised point–road Euclidean
distance and the historical co-occurrence frequency.  The transition
features ``D_T`` compare the moving path with the trajectory step: length
similarity and turn-count similarity (§IV-D, "Learned Transition
Probability").
"""

from __future__ import annotations

import numpy as np

from repro.cellular.trajectory import TrajectoryPoint
from repro.core.relation_graph import RelationGraph
from repro.geometry import heading_difference_deg
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import Route

NUM_OBSERVATION_FEATURES = 4
NUM_BASE_OBSERVATION_FEATURES = 2  # without the pool-rank columns
NUM_TRANSITION_FEATURES = 3

_DISTANCE_SCALE_M = 1000.0


def observation_features(
    graph: RelationGraph, point: TrajectoryPoint, segment_id: int
) -> np.ndarray:
    """``D_O`` base features: (normalised distance, co-occurrence frequency).

    Prefer :func:`observation_feature_matrix`, which adds the pool-relative
    rank features; this single-segment form exists for inspection.
    """
    seg = graph.network.segments[segment_id]
    distance = seg.distance_to(point.position) / _DISTANCE_SCALE_M
    frequency = 0.0
    if point.tower_id is not None:
        frequency = graph.co_occurrence_frequency(point.tower_id, segment_id)
    return np.array([distance, frequency], dtype=np.float64)


def _normalised_ranks(values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Rank of each value within its pool, scaled to ``[0, 1)``."""
    order = np.argsort(-values if descending else values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values))
    return ranks / max(1, len(values))


def observation_feature_matrix(
    graph: RelationGraph,
    point: TrajectoryPoint,
    segment_ids: list[int],
    include_ranks: bool = True,
) -> np.ndarray:
    """``D_O`` for a whole candidate pool, shape ``(m, 4)`` (or ``(m, 2)``).

    Columns: normalised distance, co-occurrence frequency, and — unless
    ``include_ranks`` is disabled (a design-choice ablation) — distance rank
    within the pool and co-occurrence rank within the pool.  The rank
    columns realise the "batch-normalised" explicit features of Eq. 8 in a
    pool-size-independent way: absolute distances mean little under 0.1–3 km
    positioning error, but *relative* standing within the pool is stable.
    """
    distances = np.array(
        [graph.network.segments[s].distance_to(point.position) for s in segment_ids]
    )
    if point.tower_id is not None:
        frequencies = np.array(
            [graph.co_occurrence_frequency(point.tower_id, s) for s in segment_ids]
        )
    else:
        frequencies = np.zeros(len(segment_ids))
    columns = [distances / _DISTANCE_SCALE_M, frequencies]
    if include_ranks:
        columns.append(_normalised_ranks(distances))
        columns.append(_normalised_ranks(frequencies, descending=True))
    return np.column_stack(columns)


def route_turn_sum_deg(network: RoadNetwork, route: Route) -> float:
    """Total turning along a route: inter-segment plus in-segment angles."""
    total = 0.0
    segments = [network.segments[s] for s in route.segments]
    for seg in segments:
        total += seg.polyline.turn_angle_sum_deg()
    for earlier, later in zip(segments, segments[1:]):
        total += heading_difference_deg(earlier.heading_deg(), later.heading_deg())
    return total


def transition_features(
    network: RoadNetwork,
    route: Route,
    prev_point: TrajectoryPoint,
    point: TrajectoryPoint,
) -> np.ndarray:
    """``D_T``: (length gap, detour ratio, turning intensity).

    * length gap — ``|straight - routed| / (straight + 100)``: the paper's
      "similar length" heuristic in relative form;
    * detour ratio — routed over straight distance, clipped, which exposes
      loops the absolute gap alone can miss;
    * turning intensity — total route turning in half-circles, clipped,
      standing in for the "similar number of turns" comparison (a straight
      trajectory step should not map to a zig-zag path).
    """
    straight = prev_point.position.distance_to(point.position)
    denominator = straight + 100.0
    length_gap = abs(straight - route.length) / denominator
    detour_ratio = min(5.0, route.length / denominator)
    turning = min(3.0, route_turn_sum_deg(network, route) / 180.0)
    return np.array([length_gap, detour_ratio, turning], dtype=np.float64)
