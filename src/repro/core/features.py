"""Explicit features for the learned probabilities (Eq. 8 and Eq. 12).

The observation features ``D_O`` are the normalised point–road Euclidean
distance and the historical co-occurrence frequency.  The transition
features ``D_T`` compare the moving path with the trajectory step: length
similarity and turn-count similarity (§IV-D, "Learned Transition
Probability").
"""

from __future__ import annotations

import numpy as np

from repro.cellular.trajectory import TrajectoryPoint
from repro.core.relation_graph import RelationGraph
from repro.geometry import heading_difference_deg
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import Route

NUM_OBSERVATION_FEATURES = 4
NUM_BASE_OBSERVATION_FEATURES = 2  # without the pool-rank columns
NUM_TRANSITION_FEATURES = 3

_DISTANCE_SCALE_M = 1000.0


def observation_features(
    graph: RelationGraph, point: TrajectoryPoint, segment_id: int
) -> np.ndarray:
    """``D_O`` base features: (normalised distance, co-occurrence frequency).

    Prefer :func:`observation_feature_matrix`, which adds the pool-relative
    rank features; this single-segment form exists for inspection.
    """
    seg = graph.network.segments[segment_id]
    distance = seg.distance_to(point.position) / _DISTANCE_SCALE_M
    frequency = 0.0
    if point.tower_id is not None:
        frequency = graph.co_occurrence_frequency(point.tower_id, segment_id)
    return np.array([distance, frequency], dtype=np.float64)


def _normalised_ranks(values: np.ndarray, descending: bool = False) -> np.ndarray:
    """Rank of each value within its pool, scaled to ``[0, 1)``."""
    order = np.argsort(-values if descending else values, kind="stable")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(len(values))
    return ranks / max(1, len(values))


def observation_feature_matrix(
    graph: RelationGraph,
    point: TrajectoryPoint,
    segment_ids: list[int],
    include_ranks: bool = True,
) -> np.ndarray:
    """``D_O`` for a whole candidate pool, shape ``(m, 4)`` (or ``(m, 2)``).

    Columns: normalised distance, co-occurrence frequency, and — unless
    ``include_ranks`` is disabled (a design-choice ablation) — distance rank
    within the pool and co-occurrence rank within the pool.  The rank
    columns realise the "batch-normalised" explicit features of Eq. 8 in a
    pool-size-independent way: absolute distances mean little under 0.1–3 km
    positioning error, but *relative* standing within the pool is stable.
    """
    distances = np.array(
        [graph.network.segments[s].distance_to(point.position) for s in segment_ids]
    )
    if point.tower_id is not None:
        frequencies = np.array(
            [graph.co_occurrence_frequency(point.tower_id, s) for s in segment_ids]
        )
    else:
        frequencies = np.zeros(len(segment_ids))
    columns = [distances / _DISTANCE_SCALE_M, frequencies]
    if include_ranks:
        columns.append(_normalised_ranks(distances))
        columns.append(_normalised_ranks(frequencies, descending=True))
    return np.column_stack(columns)


def stacked_observation_features(
    graph: RelationGraph,
    points: list[TrajectoryPoint],
    pools: list[list[int]],
    include_ranks: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """``D_O`` for every (point, candidate) pair of a trajectory at once.

    Returns ``(features, counts)`` where ``features`` stacks the per-point
    :func:`observation_feature_matrix` blocks row-wise (shape
    ``(sum(len(pool)), 4 or 2)``) and ``counts[i] = len(pools[i])`` gives the
    ragged layout.  Distances come from the network's vectorised
    exact-projection kernel and are bit-identical to per-pool scalar calls;
    the rank columns are computed per pool slice with the same stable
    argsort, so every row equals its scalar counterpart.
    """
    counts = np.fromiter((len(pool) for pool in pools), dtype=np.int64, count=len(pools))
    total = int(counts.sum())
    if total == 0:
        width = (
            NUM_OBSERVATION_FEATURES if include_ranks else NUM_BASE_OBSERVATION_FEATURES
        )
        return np.empty((0, width), dtype=np.float64), counts
    flat_ids: list[int] = []
    for pool in pools:
        flat_ids.extend(pool)
    xs = np.fromiter((p.position.x for p in points), dtype=np.float64, count=len(points))
    ys = np.fromiter((p.position.y for p in points), dtype=np.float64, count=len(points))
    px = np.repeat(xs, counts)
    py = np.repeat(ys, counts)
    distances = graph.network.point_segment_distances(px, py, flat_ids)
    frequencies = np.empty(total, dtype=np.float64)
    offset = 0
    for point, pool in zip(points, pools):
        m = len(pool)
        if point.tower_id is not None:
            frequencies[offset : offset + m] = graph.co_occurrence_frequencies(
                point.tower_id, pool
            )
        else:
            frequencies[offset : offset + m] = 0.0
        offset += m
    columns = [distances / _DISTANCE_SCALE_M, frequencies]
    if include_ranks:
        distance_ranks = np.empty(total, dtype=np.float64)
        frequency_ranks = np.empty(total, dtype=np.float64)
        offset = 0
        for count in counts:
            sl = slice(offset, offset + int(count))
            distance_ranks[sl] = _normalised_ranks(distances[sl])
            frequency_ranks[sl] = _normalised_ranks(frequencies[sl], descending=True)
            offset += int(count)
        columns.append(distance_ranks)
        columns.append(frequency_ranks)
    return np.column_stack(columns), counts


def route_turn_sum_deg(network: RoadNetwork, route: Route) -> float:
    """Total turning along a route: inter-segment plus in-segment angles."""
    total = 0.0
    segments = [network.segments[s] for s in route.segments]
    for seg in segments:
        total += seg.polyline.turn_angle_sum_deg()
    for earlier, later in zip(segments, segments[1:]):
        total += heading_difference_deg(earlier.heading_deg(), later.heading_deg())
    return total


def route_turn_sum_cached(network: RoadNetwork, segments: tuple[int, ...]) -> float:
    """:func:`route_turn_sum_deg` memoised by the route's segment tuple.

    The first visit accumulates cached per-segment turn sums and headings
    in exactly the scalar order (all in-segment angles first, then the
    inter-segment heading differences), so the float is bit-identical to
    :func:`route_turn_sum_deg`; repeat visits — the common case, since the
    same routes recur across trellis steps and trajectories — are a dict
    probe.
    """
    memo = network.route_turns()
    value = memo.get(segments)
    if value is None:
        turn_sums, headings = network.turn_geometry()
        value = 0.0
        for s in segments:
            value += turn_sums[s]
        for earlier, later in zip(segments, segments[1:]):
            value += heading_difference_deg(headings[earlier], headings[later])
        memo[segments] = value
    return value


def fill_route_turn_memo(network: RoadNetwork, missing: list[tuple[int, ...]]) -> None:
    """Compute and memoise turn sums for many routes at once.

    Routes are grouped by segment count; within a group the accumulation
    runs column by column — elementwise sequential adds in exactly the
    scalar order (all in-segment turn sums first, then the heading
    differences), and the vectorised heading difference uses ``np.mod`` /
    ``np.where``, which match Python's ``%`` and branch bit for bit on
    the non-negative operands involved.  The memoised floats therefore
    equal :func:`route_turn_sum_cached` / :func:`route_turn_sum_deg`.
    """
    memo = network.route_turns()
    turn_arr, heading_arr = network.turn_geometry_dense()
    by_len: dict[int, list[tuple[int, ...]]] = {}
    for segments in missing:
        by_len.setdefault(len(segments), []).append(segments)
    for seg_count, group in by_len.items():
        if seg_count == 0:
            for segments in group:
                memo[segments] = 0.0
            continue
        ids = np.array(group, dtype=np.int64)  # (G, seg_count)
        turns = turn_arr[ids]
        acc = 0.0 + turns[:, 0]
        for k in range(1, seg_count):
            acc = acc + turns[:, k]
        if seg_count > 1:
            headings = heading_arr[ids]
            for k in range(seg_count - 1):
                diff = np.abs(headings[:, k] - headings[:, k + 1]) % 360.0
                acc = acc + np.where(diff > 180.0, 360.0 - diff, diff)
        for segments, value in zip(group, acc.tolist()):
            memo[segments] = value


def transition_features(
    network: RoadNetwork,
    route: Route,
    prev_point: TrajectoryPoint,
    point: TrajectoryPoint,
) -> np.ndarray:
    """``D_T``: (length gap, detour ratio, turning intensity).

    * length gap — ``|straight - routed| / (straight + 100)``: the paper's
      "similar length" heuristic in relative form;
    * detour ratio — routed over straight distance, clipped, which exposes
      loops the absolute gap alone can miss;
    * turning intensity — total route turning in half-circles, clipped,
      standing in for the "similar number of turns" comparison (a straight
      trajectory step should not map to a zig-zag path).
    """
    straight = prev_point.position.distance_to(point.position)
    denominator = straight + 100.0
    length_gap = abs(straight - route.length) / denominator
    detour_ratio = min(5.0, route.length / denominator)
    turning = min(3.0, route_turn_sum_deg(network, route) / 180.0)
    return np.array([length_gap, detour_ratio, turning], dtype=np.float64)


def dense_relevance(network: RoadNetwork, relevance: dict[int, float]) -> np.ndarray:
    """The per-segment relevance dict as a dense array (default 0.5).

    Indexing this array by segment id yields exactly
    ``relevance.get(segment_id, 0.5)``, which lets the batched transition
    builder average a route's relevance with one gather + mean.
    """
    size = (max(network.segments) + 1) if network.segments else 0
    dense = np.full(size, 0.5, dtype=np.float64)
    for seg_id, value in relevance.items():
        dense[seg_id] = value
    return dense


def transition_feature_rows(
    network: RoadNetwork,
    routes: list[Route | None],
    prev_point: TrajectoryPoint,
    point: TrajectoryPoint,
    relevance_dense: np.ndarray | None = None,
) -> tuple[np.ndarray, list[int]]:
    """Stacked transition rows for one trellis step.

    Returns ``(rows, positions)``: ``rows[r]`` is the feature row for
    ``routes[positions[r]]`` (``None`` routes are skipped, order preserved).
    Without ``relevance_dense`` the rows are the 3 explicit ``D_T`` columns,
    bit-identical to per-route :func:`transition_features`.  With it, a
    leading implicit column carries the mean learned relevance over the
    route's segments, matching the scalar
    ``float(np.mean([relevance.get(s, 0.5) for s in route.segments]))``
    (same-length routes are grouped so ``np.mean(axis=1)`` reproduces the
    per-route reduction exactly).
    """
    positions = [i for i, route in enumerate(routes) if route is not None]
    n = len(positions)
    width = NUM_TRANSITION_FEATURES + (1 if relevance_dense is not None else 0)
    if n == 0:
        return np.empty((0, width), dtype=np.float64), positions
    kept = [routes[i] for i in positions]
    lengths = np.fromiter((r.length for r in kept), dtype=np.float64, count=n)
    memo = network.route_turns()
    missing = [r.segments for r in kept if r.segments not in memo]
    if missing:
        fill_route_turn_memo(network, list(dict.fromkeys(missing)))
    turns = np.fromiter(
        (memo[r.segments] for r in kept), dtype=np.float64, count=n
    )
    straight = prev_point.position.distance_to(point.position)
    denominator = straight + 100.0
    length_gap = np.abs(straight - lengths) / denominator
    detour_ratio = np.minimum(5.0, lengths / denominator)
    turning = np.minimum(3.0, turns / 180.0)
    explicit = np.column_stack([length_gap, detour_ratio, turning])
    if relevance_dense is None:
        return explicit, positions
    implicit = np.empty(n, dtype=np.float64)
    # Group routes by segment count: np.mean over the rows of a same-length
    # stack is bitwise identical to the scalar per-route np.mean.
    by_len: dict[int, list[int]] = {}
    for r, route in enumerate(kept):
        by_len.setdefault(len(route.segments), []).append(r)
    for seg_count, members in by_len.items():
        if seg_count == 0:
            implicit[members] = 0.5
            continue
        ids = np.array(
            [kept[r].segments for r in members], dtype=np.int64
        )  # (len(members), seg_count)
        implicit[members] = np.mean(relevance_dense[ids], axis=1)
    return np.column_stack([implicit, explicit]), positions
