"""A tiny wall-clock timer used by the evaluation harness."""

from __future__ import annotations

import time


class Timer:
    """Accumulating stopwatch.

    Use either as a context manager::

        timer = Timer()
        with timer:
            do_work()
        print(timer.elapsed)

    or via explicit :meth:`start` / :meth:`stop` calls.  Repeated timing
    accumulates into :attr:`elapsed`, and :attr:`count` tracks the number of
    completed intervals so callers can report means.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timing interval; raises if one is already open."""
        if self._started_at is not None:
            raise RuntimeError("Timer already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the current interval and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer not running")
        interval = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += interval
        self.count += 1
        return interval

    @property
    def mean(self) -> float:
        """Mean interval duration (0.0 before any interval completes)."""
        return self.elapsed / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
