"""Wall-clock timing primitives: an accumulating stopwatch and a
log-bucketed latency histogram (used by the serving layer's ``/metrics``
endpoint and the throughput benchmarks)."""

from __future__ import annotations

import math
import threading
import time


class Timer:
    """Accumulating stopwatch.

    Use either as a context manager::

        timer = Timer()
        with timer:
            do_work()
        print(timer.elapsed)

    or via explicit :meth:`start` / :meth:`stop` calls.  Repeated timing
    accumulates into :attr:`elapsed`, and :attr:`count` tracks the number of
    completed intervals so callers can report means.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timing interval; raises if one is already open."""
        if self._started_at is not None:
            raise RuntimeError("Timer already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Close the current interval and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Timer not running")
        interval = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += interval
        self.count += 1
        return interval

    @property
    def mean(self) -> float:
        """Mean interval duration (0.0 before any interval completes)."""
        return self.elapsed / self.count if self.count else 0.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class LatencyHistogram:
    """Thread-safe latency histogram with geometric buckets.

    Designed for long-lived services: memory is O(number of buckets)
    regardless of how many observations are recorded, and quantiles are
    answered by interpolating within the bucket that contains the requested
    rank.  Bucket boundaries grow geometrically from ``least`` to ``most``
    seconds, so relative resolution is constant (~``growth - 1``) across
    the microsecond-to-minute range a matching service spans.
    """

    def __init__(
        self,
        least: float = 1e-4,
        most: float = 120.0,
        growth: float = 1.25,
    ) -> None:
        if not 0 < least < most:
            raise ValueError("need 0 < least < most")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self._least = least
        self._log_growth = math.log(growth)
        num = int(math.ceil(math.log(most / least) / self._log_growth)) + 1
        # bucket i spans [least * growth**(i-1), least * growth**i);
        # bucket 0 is the underflow bucket [0, least).
        self._bounds = [least * growth**i for i in range(num)]
        self._counts = [0] * (num + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Record one observed duration (negative values clamp to 0)."""
        seconds = max(0.0, float(seconds))
        if seconds < self._least:
            index = 0
        else:
            index = 1 + int(math.log(seconds / self._least) / self._log_growth)
            index = min(index, len(self._counts) - 1)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total += seconds
            self.min = min(self.min, seconds)
            self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        """Mean observed duration (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) in seconds.

        Exact at the recorded min/max; elsewhere linearly interpolated
        within the containing bucket, so the error is bounded by the bucket
        width (~25% relative by default).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q / 100.0 * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    lower = 0.0 if index == 0 else self._bounds[index - 1]
                    upper = (
                        self._bounds[index]
                        if index < len(self._bounds)
                        else self.max
                    )
                    lower = max(lower, self.min)
                    upper = max(lower, min(upper, self.max))
                    fraction = (rank - cumulative) / bucket_count
                    return lower + (upper - lower) * fraction
                cumulative += bucket_count
            return self.max

    def snapshot(self) -> dict:
        """Counters and headline percentiles as one JSON-friendly dict."""
        with self._lock:
            count, total = self.count, self.total
        return {
            "count": count,
            "total_s": total,
            "mean_s": total / count if count else 0.0,
            "min_s": 0.0 if count == 0 else self.min,
            "max_s": self.max,
            "p50_s": self.percentile(50.0),
            "p95_s": self.percentile(95.0),
            "p99_s": self.percentile(99.0),
        }
