"""Shared utilities: seeded randomness, timing, and lightweight logging."""

from repro.utils.rng import derive_rng, ensure_rng
from repro.utils.timer import LatencyHistogram, Timer

__all__ = ["derive_rng", "ensure_rng", "LatencyHistogram", "Timer"]
