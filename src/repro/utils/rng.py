"""Seeded random-number-generator helpers.

Every stochastic component in this library accepts either an integer seed or
a ``numpy.random.Generator``.  These helpers normalise the two forms and
derive statistically independent child generators so that subsystems (tower
placement, vehicle simulation, model initialisation, ...) do not share a
stream and results stay reproducible when one subsystem changes how much
randomness it consumes.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    ``None`` yields a generator seeded from OS entropy; an integer seeds a
    fresh PCG64 generator; an existing generator is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def derive_rng(rng: int | np.random.Generator | None, *keys: object) -> np.random.Generator:
    """Derive an independent child generator keyed by ``keys``.

    The same parent seed and key sequence always produce the same child, so
    subsystems can be re-run independently without perturbing each other.
    """
    parent = ensure_rng(rng)
    # Fold the textual keys into a stable 64-bit value.
    digest = np.uint64(1469598103934665603)  # FNV-1a offset basis
    for key in keys:
        for byte in str(key).encode("utf-8"):
            digest = np.uint64((int(digest) ^ byte) * 1099511628211 % (1 << 64))
    child_seed = int(parent.integers(0, 2**63)) ^ int(digest)
    return np.random.default_rng(child_seed)
