"""Streaming sessions: many concurrent fixed-lag decoders over one matcher.

A *session* is one live trajectory being decoded by an
:class:`~repro.core.online.OnlineLHMM`.  The manager owns their lifecycle:

* ``create`` — admission-controlled (``max_sessions``); recycles decoder
  objects from closed sessions via :meth:`OnlineLHMM.reset` instead of
  constructing new ones.
* ``feed`` — appends points and returns the committed (fixed-lag) path.
* ``close`` — flushes the remaining lag window and returns the final path.
* idle eviction — sessions untouched for ``ttl_s`` are finalised and
  dropped on the next manager interaction (no background thread, so
  behaviour is deterministic and testable with an injected clock).

The fitted matcher is **not** thread-safe for concurrent inference (its
routing engine mutates LRU caches), so all decoding holds ``infer_lock``
— shared with the server's serial batch path.  Per-session locks keep a
single session's feeds ordered when a client pipelines requests.  Lock
order is always manager → session → infer; the manager lock is never
acquired while a session lock is held.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field

from repro.cellular.trajectory import TrajectoryPoint
from repro.core.matcher import LHMM
from repro.core.online import OnlineLHMM


class UnknownSessionError(KeyError):
    """The session id does not exist (expired, closed, or never created)."""


class SessionLimitError(RuntimeError):
    """``max_sessions`` live sessions already exist (server answers 429)."""


@dataclass(slots=True)
class Session:
    """One live streaming-decode session."""

    session_id: str
    decoder: OnlineLHMM
    created_at: float
    last_touched: float
    points_fed: int = 0
    closed: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


class SessionManager:
    """Creates, feeds, evicts, and closes streaming sessions."""

    def __init__(
        self,
        matcher: LHMM,
        *,
        default_lag: int = 4,
        default_context_window: int = 12,
        max_sessions: int = 256,
        ttl_s: float = 300.0,
        infer_lock: threading.RLock | None = None,
        clock=time.monotonic,
        recycle_limit: int = 32,
    ) -> None:
        matcher._require_fit()
        self.matcher = matcher
        self.default_lag = default_lag
        self.default_context_window = default_context_window
        self.max_sessions = max_sessions
        self.ttl_s = ttl_s
        self.infer_lock = infer_lock or threading.RLock()
        self._clock = clock
        self._sessions: dict[str, Session] = {}
        self._lock = threading.RLock()
        # Closed decoders, keyed by (lag, context_window), ready for reuse.
        self._recycled: dict[tuple[int, int], list[OnlineLHMM]] = {}
        self._recycle_limit = recycle_limit
        self._ids = itertools.count()
        self.created_total = 0
        self.closed_total = 0
        self.evicted_total = 0
        self.recycled_total = 0

    # ------------------------------------------------------------- lifecycle
    def create(
        self,
        lag: int | None = None,
        context_window: int | None = None,
        session_id: str | None = None,
    ) -> Session:
        """Open a new session; raises :class:`SessionLimitError` when full.

        ``session_id`` lets an upstream tier (the cluster gateway) assign
        ids itself — required for deterministic session handoff, where a
        respawned worker must rebuild a session under its original id.
        Omitted, the manager generates one.
        """
        lag = self.default_lag if lag is None else int(lag)
        context_window = (
            self.default_context_window if context_window is None else int(context_window)
        )
        self.evict_idle()
        now = self._clock()
        with self._lock:
            if session_id is not None and session_id in self._sessions:
                raise ValueError(f"session id {session_id!r} already live")
            if len(self._sessions) >= self.max_sessions:
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions} live sessions)"
                )
            decoder = self._checkout_decoder(lag, context_window)
            if session_id is None:
                session_id = f"s{next(self._ids)}-{uuid.uuid4().hex[:8]}"
            session = Session(
                session_id=session_id,
                decoder=decoder,
                created_at=now,
                last_touched=now,
            )
            self._sessions[session_id] = session
            self.created_total += 1
            return session

    def _checkout_decoder(self, lag: int, context_window: int) -> OnlineLHMM:
        pool = self._recycled.get((lag, context_window))
        if pool:
            decoder = pool.pop()
            decoder.reset()
            self.recycled_total += 1
            return decoder
        return OnlineLHMM(self.matcher, lag=lag, context_window=context_window)

    def _recycle_decoder(self, decoder: OnlineLHMM) -> None:
        decoder.reset()
        with self._lock:
            key = (decoder.lag, decoder.context_window)
            pool = self._recycled.setdefault(key, [])
            if len(pool) < self._recycle_limit:
                pool.append(decoder)

    def get(self, session_id: str) -> Session:
        """Look up a live session; raises :class:`UnknownSessionError`."""
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        return session

    # ------------------------------------------------------------- streaming
    def feed(self, session_id: str, points: list[TrajectoryPoint]) -> dict:
        """Append ``points`` and return the committed state so far.

        Returns ``{"committed": [...], "pending": n, "points": total}`` —
        ``committed`` is the stitched path fixed so far (it only ever
        grows), ``pending`` the points still inside the lag window.
        """
        session = self.get(session_id)
        with session.lock:
            if session.closed:
                raise UnknownSessionError(session_id)
            with self.infer_lock:
                for point in points:
                    session.decoder.add_point(point)
                committed = session.decoder.committed_path
                pending = session.decoder.pending_points()
            session.points_fed += len(points)
            session.last_touched = self._clock()
            return {
                "committed": committed,
                "pending": pending,
                "points": session.points_fed,
            }

    def close(self, session_id: str) -> dict:
        """Finalise a session: flush the lag window, return the full path."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
        if session is None:
            raise UnknownSessionError(session_id)
        with session.lock:
            if session.closed:  # pragma: no cover - double close race
                raise UnknownSessionError(session_id)
            session.closed = True
            with self.infer_lock:
                path = session.decoder.finish()
        self._recycle_decoder(session.decoder)
        with self._lock:
            self.closed_total += 1
        return {"path": path, "points": session.points_fed}

    # -------------------------------------------------------------- eviction
    def evict_idle(self, now: float | None = None) -> list[str]:
        """Finalise and drop sessions idle for longer than ``ttl_s``."""
        now = self._clock() if now is None else now
        with self._lock:
            expired = [
                session
                for session in self._sessions.values()
                if now - session.last_touched > self.ttl_s
            ]
            for session in expired:
                del self._sessions[session.session_id]
        evicted: list[str] = []
        for session in expired:
            with session.lock:
                if session.closed:  # pragma: no cover - close/evict race
                    continue
                session.closed = True
            self._recycle_decoder(session.decoder)
            evicted.append(session.session_id)
            with self._lock:
                self.evicted_total += 1
        return evicted

    def close_all(self) -> dict[str, list[int]]:
        """Finalise every live session (graceful shutdown); returns paths."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        finished: dict[str, list[int]] = {}
        for session in sessions:
            with session.lock:
                if session.closed:  # pragma: no cover - close/shutdown race
                    continue
                session.closed = True
                with self.infer_lock:
                    finished[session.session_id] = session.decoder.finish()
            with self._lock:
                self.closed_total += 1
        return finished

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict:
        """Session counters for ``/metrics``."""
        with self._lock:
            return {
                "active": len(self._sessions),
                "created_total": self.created_total,
                "closed_total": self.closed_total,
                "evicted_total": self.evicted_total,
                "recycled_total": self.recycled_total,
            }
