"""JSON wire format of the matching service.

The protocol is deliberately plain: every body is a JSON object, every
coordinate is metres in the dataset's local frame (the same frame
:class:`~repro.geometry.Point` uses), and every timestamp is seconds.  A
trajectory point travels as::

    {"x": 1250.0, "y": 830.5, "t": 42.0, "tower_id": 17}

``tower_id`` may be ``null``/absent (e.g. GPS points).  A trajectory is a
list of such points with non-decreasing ``t``.  Decoding failures raise
:class:`ProtocolError`, which the server maps to HTTP 400 with the message
in the body — malformed input must never take the daemon down.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Iterable

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.geometry import Point

#: Wire protocol version, reported by ``GET /healthz``.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """Malformed request payload (server answers 400)."""


def _require_number(obj: dict, key: str, context: str) -> float:
    value = obj.get(key)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{context}: field {key!r} must be a number")
    # Python's json parses the non-standard NaN/Infinity literals; a
    # non-finite coordinate must be a 400 here, not a crash downstream.
    if not math.isfinite(value):
        raise ProtocolError(f"{context}: field {key!r} must be finite, got {value!r}")
    return float(value)


def encode_point(point: TrajectoryPoint) -> dict:
    """One trajectory point as a JSON-ready dict."""
    payload: dict[str, Any] = {
        "x": point.position.x,
        "y": point.position.y,
        "t": point.timestamp,
    }
    if point.tower_id is not None:
        payload["tower_id"] = point.tower_id
    return payload


def decode_point(obj: Any, context: str = "point") -> TrajectoryPoint:
    """Parse one point object; raises :class:`ProtocolError` when invalid."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"{context}: expected an object, got {type(obj).__name__}")
    x = _require_number(obj, "x", context)
    y = _require_number(obj, "y", context)
    t = _require_number(obj, "t", context)
    tower_id = obj.get("tower_id")
    if tower_id is not None and (isinstance(tower_id, bool) or not isinstance(tower_id, int)):
        raise ProtocolError(f"{context}: field 'tower_id' must be an integer or null")
    return TrajectoryPoint(position=Point(x, y), timestamp=t, tower_id=tower_id)


def decode_points(obj: Any, context: str = "points") -> list[TrajectoryPoint]:
    """Parse a list of point objects (must be non-empty)."""
    if not isinstance(obj, list) or not obj:
        raise ProtocolError(f"{context}: expected a non-empty list of points")
    return [decode_point(item, f"{context}[{i}]") for i, item in enumerate(obj)]


def encode_trajectory(trajectory: Trajectory | Iterable[TrajectoryPoint]) -> list[dict]:
    """A trajectory (or plain point iterable) as a JSON-ready list."""
    points = trajectory.points if isinstance(trajectory, Trajectory) else list(trajectory)
    return [encode_point(p) for p in points]


def decode_trajectory(obj: Any, trajectory_id: int = 0, context: str = "trajectory") -> Trajectory:
    """Parse a trajectory from a list of point objects."""
    points = decode_points(obj, context)
    try:
        return Trajectory(points=points, trajectory_id=trajectory_id)
    except ValueError as error:  # non-decreasing timestamp check
        raise ProtocolError(f"{context}: {error}") from error


def decode_deadline_ms(obj: Any, context: str = "request") -> float | None:
    """Parse an optional ``deadline_ms`` budget into an absolute deadline.

    Returns ``time.monotonic() + deadline_ms/1000`` — the moment the
    client stops caring about the answer — or ``None`` when the field is
    absent.  The absolute form rides IPC frames unchanged: on Linux
    ``CLOCK_MONOTONIC`` is system-wide, so forked workers compare against
    the same clock the gateway stamped.
    """
    value = obj.get("deadline_ms") if isinstance(obj, dict) else None
    if value is None:
        return None
    if (
        isinstance(value, bool)
        or not isinstance(value, (int, float))
        or not math.isfinite(value)
        or value <= 0
    ):
        raise ProtocolError(
            f"{context}: field 'deadline_ms' must be a positive number of milliseconds"
        )
    return time.monotonic() + float(value) / 1000.0


def encode_match_result(result) -> dict:
    """A :class:`~repro.core.matcher.MatchResult` as a JSON-ready dict.

    ``provenance`` tells the caller which pipeline stage answered
    (``"lhmm"``, or a degradation-cascade fallback — see
    ``docs/robustness.md``).
    """
    return {
        "path": list(result.path),
        "matched_sequence": list(result.matched_sequence),
        "score": result.score,
        "provenance": getattr(result, "provenance", "lhmm"),
    }


def dumps(payload: Any) -> bytes:
    """Serialise a response body (compact separators, UTF-8)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def loads(body: bytes, context: str = "request body") -> Any:
    """Parse a request body; raises :class:`ProtocolError` on bad JSON."""
    if not body:
        return {}
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"{context}: invalid JSON ({error})") from error
