"""Publish-once / attach-many numpy arrays over POSIX shared memory.

The cluster gateway loads every heavy artifact exactly once — road-network
geometry tables, CSR adjacency, the structured UBODT table, model
embedding matrices — packs them into one
:class:`multiprocessing.shared_memory.SharedMemory` segment per shard,
and hands workers a small JSON-able *layout* describing where each array
lives.  Workers attach read-only views over the same physical pages, so N
worker processes cost one copy of the artifacts instead of N.

Ownership is asymmetric and explicit:

* the **publisher** (gateway) creates the segment and is the only side
  that ever calls :meth:`SharedArrayPack.unlink`;
* an **attacher** (worker) maps the existing segment *without* letting
  its ``multiprocessing.resource_tracker`` see it — otherwise a worker
  dying (or being SIGKILLed and its tracker winding down) could unlink a
  segment the rest of the fleet is still serving from.  This is the
  standard workaround for `bpo-38119`; Python 3.13 grew a ``track=False``
  argument for the same purpose, but this tree targets 3.11.

Layouts are plain dicts (array name → dtype/shape/offset) so they can
ride the IPC protocol or a fork; offsets are 64-byte aligned, which keeps
every attached array suitably aligned for its dtype.  All views are
marked read-only on both sides — the artifacts are immutable by design,
and an accidental in-place write in one worker must not corrupt its
siblings.
"""

from __future__ import annotations

import os
import secrets
import signal
from pathlib import Path

import numpy as np

#: Byte alignment of every array inside a segment.
ALIGNMENT = 64

#: Prefix of every segment this module creates (leak scans key on it).
SEGMENT_PREFIX = "repro-shm-"


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments with ``prefix`` (Linux only).

    The chaos suite calls this after killing workers to prove nothing
    leaked; on platforms without a visible ``/dev/shm`` it returns ``[]``
    (no way to scan, nothing to assert).
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in root.glob(f"{prefix}*"))


class SegmentJanitor:
    """A tiny forked process that unlinks segments when its parent dies.

    Shared-memory segments outlive their creator: a gateway that is
    SIGKILLed (OOM killer, ``kill -9``) never runs its atexit hooks, and
    its workers — mere attachers — must *never* unlink.  The janitor
    closes that hole.  It is forked at publish time holding only the read
    end of a pipe; the publisher (and, via fork, every worker) holds the
    write end.  While any of them lives, the pipe stays open and the
    janitor blocks.  When the *whole* fleet is gone — however it died —
    the kernel closes the last write end, the janitor reads EOF, unlinks
    every segment it was told about, and exits.

    The protocol over the pipe is newline-delimited text: ``ADD name`` /
    ``DEL name`` keep the janitor's segment set in sync as generations
    are published and retired; ``QUIT`` makes it exit *without* unlinking
    (graceful shutdown already unlinked everything — and unlink is
    idempotent anyway, so even a race here is harmless).

    **Remote-transport deployments**: when workers talk to the gateway
    over TCP (:mod:`repro.serve.transport`) instead of an inherited
    socketpair, holding the pipe in every worker is wrong — a TCP worker
    may be on another host entirely, and even a local one must not keep
    segments alive past gateway death (the gateway could die before any
    worker forked at all).  Such workers close their fork-inherited copy
    of the write end immediately (see :meth:`guard_fd` and
    ``ShardRegistry.guard_fds``), keying cleanup on the *gateway process
    alone*: live attachments survive the unlink (POSIX shm semantics),
    and the names vanish the moment the owner is gone.
    """

    def __init__(self) -> None:
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - separate process, untraceable
            os.close(write_fd)
            self._child_main(read_fd)  # never returns
        os.close(read_fd)
        self.pid = pid
        self._write_fd: int | None = write_fd

    @staticmethod
    def _child_main(read_fd: int) -> None:  # pragma: no cover - child process
        # A Ctrl+C against the process group must not kill the janitor
        # before it can clean up after the (also-interrupted) gateway.
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        names: set[str] = set()
        buffer = b""
        quit_clean = False
        while True:
            try:
                chunk = os.read(read_fd, 4096)
            except OSError:
                break
            if not chunk:
                break  # every write end closed: the fleet is gone
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                command, _, name = line.decode("utf-8", "replace").partition(" ")
                if command == "ADD":
                    names.add(name)
                elif command == "DEL":
                    names.discard(name)
                elif command == "QUIT":
                    quit_clean = True
            if quit_clean:
                break
        if not quit_clean:
            for name in names:
                try:
                    # The direct /dev/shm path sidesteps SharedMemory's
                    # resource tracker, which a bare cleanup process must
                    # not spawn; on non-Linux there is nothing to scan and
                    # nothing leaks visibly, matching leaked_segments().
                    Path("/dev/shm", name).unlink()
                except OSError:
                    pass
        os._exit(0)

    @property
    def guard_fd(self) -> int | None:
        """The pipe write fd whose closure arms the janitor's EOF trigger.

        A fork child that must *not* pin the segments (remote-transport
        workers) closes its inherited copy of this fd right after fork;
        the parent's fd — and therefore the guard — is unaffected.
        """
        return self._write_fd

    def release_inherited(self) -> None:
        """Child-side: drop a fork-inherited copy of the write end.

        Never call this in the publishing process — it would disarm the
        guard entirely.  In a fork child it only closes *this process's*
        duplicate, so the janitor still outlives exactly the processes
        that are supposed to hold it.
        """
        if self._write_fd is None:
            return
        try:
            os.close(self._write_fd)
        except OSError:  # pragma: no cover - already closed
            pass
        self._write_fd = None

    def _send(self, line: str) -> None:
        if self._write_fd is None:
            return
        try:
            os.write(self._write_fd, (line + "\n").encode("utf-8"))
        except OSError:  # janitor already gone; nothing left to guard
            pass

    def add(self, name: str) -> None:
        """Start guarding ``name`` (unlinked if the fleet dies uncleanly)."""
        self._send(f"ADD {name}")

    def remove(self, name: str) -> None:
        """Stop guarding ``name`` (it was retired and unlinked in-line)."""
        self._send(f"DEL {name}")

    def quit(self) -> None:
        """Graceful shutdown: the janitor exits without unlinking."""
        if self._write_fd is None:
            return
        self._send("QUIT")
        try:
            os.close(self._write_fd)
        except OSError:  # pragma: no cover
            pass
        self._write_fd = None
        try:
            os.waitpid(self.pid, 0)
        except (ChildProcessError, OSError):  # pragma: no cover - reaped
            pass


class SharedArrayPack:
    """A named set of numpy arrays living in one shared-memory segment.

    Construct via :meth:`publish` (owner side) or :meth:`attach` (worker
    side); access arrays through the :attr:`arrays` mapping.  The pack is
    a context manager that closes its local mapping on exit; the segment
    itself survives until the owner calls :meth:`unlink`.
    """

    def __init__(self, shm, arrays: dict[str, np.ndarray], meta: dict, owner: bool) -> None:
        self._shm = shm
        self.arrays = arrays
        self.meta = meta
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------- creation
    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray], name: str | None = None) -> "SharedArrayPack":
        """Copy ``arrays`` into a fresh segment and return the owner pack.

        Array dtypes and shapes are preserved exactly (no casting), so an
        attached view is bitwise-equal to — and drop-in compatible with —
        the source array.  Insertion order is kept in the layout.
        """
        from multiprocessing import shared_memory

        contiguous = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        layout: dict[str, dict] = {}
        offset = 0
        for key, value in contiguous.items():
            offset = _align(offset)
            layout[key] = {
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "offset": offset,
            }
            offset += value.nbytes
        size = max(offset, 1)  # zero-size segments are not allowed
        segment = name or SEGMENT_PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(name=segment, create=True, size=size)
        views: dict[str, np.ndarray] = {}
        for key, value in contiguous.items():
            spec = layout[key]
            view = np.ndarray(
                value.shape, dtype=value.dtype, buffer=shm.buf, offset=spec["offset"]
            )
            view[...] = value
            view.flags.writeable = False
            views[key] = view
        meta = {"segment": shm.name, "size": size, "arrays": layout}
        return cls(shm, views, meta, owner=True)

    @classmethod
    def attach(cls, meta: dict) -> "SharedArrayPack":
        """Map an existing segment described by a :meth:`publish` layout."""
        from multiprocessing import resource_tracker, shared_memory

        # Keep the attach invisible to the resource tracker: attachers
        # must never unlink a segment they do not own (see module
        # docstring).  Suppressing the registration beats the usual
        # register-then-unregister dance because forked workers share the
        # parent's tracker daemon, whose name cache is a *set* — two
        # workers registering and unregistering the same segment would
        # make the second unregister die with a KeyError in the tracker.
        original_register = resource_tracker.register
        def _skip_shm(name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original_register(name, rtype)
        resource_tracker.register = _skip_shm
        try:
            shm = shared_memory.SharedMemory(name=meta["segment"])
        finally:
            resource_tracker.register = original_register
        views: dict[str, np.ndarray] = {}
        for key, spec in meta["arrays"].items():
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=spec["offset"],
            )
            view.flags.writeable = False
            views[key] = view
        return cls(shm, views, meta, owner=False)

    # ------------------------------------------------------------ lifecycle
    @property
    def segment_name(self) -> str:
        """OS-level name of the backing segment."""
        return self.meta["segment"]

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all packed arrays."""
        return sum(
            int(np.prod(spec["shape"]) * np.dtype(spec["dtype"]).itemsize)
            for spec in self.meta["arrays"].values()
        )

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays).

        Only call when nothing references the pack's arrays anymore —
        closing can unmap the pages under any still-live numpy view.
        Workers therefore keep their pack for their whole life and let
        process exit release the mapping; a pinned buffer that refuses to
        unmap is not an error for the same reason.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # views still alive; freed at process exit
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (owner only; idempotent)."""
        if not self.owner:
            raise RuntimeError(
                f"refusing to unlink {self.segment_name}: this pack only "
                "attached the segment, it does not own it"
            )
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return key in self.arrays

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]
