"""Publish-once / attach-many numpy arrays over POSIX shared memory.

The cluster gateway loads every heavy artifact exactly once — road-network
geometry tables, CSR adjacency, the structured UBODT table, model
embedding matrices — packs them into one
:class:`multiprocessing.shared_memory.SharedMemory` segment per shard,
and hands workers a small JSON-able *layout* describing where each array
lives.  Workers attach read-only views over the same physical pages, so N
worker processes cost one copy of the artifacts instead of N.

Ownership is asymmetric and explicit:

* the **publisher** (gateway) creates the segment and is the only side
  that ever calls :meth:`SharedArrayPack.unlink`;
* an **attacher** (worker) maps the existing segment *without* letting
  its ``multiprocessing.resource_tracker`` see it — otherwise a worker
  dying (or being SIGKILLed and its tracker winding down) could unlink a
  segment the rest of the fleet is still serving from.  This is the
  standard workaround for `bpo-38119`; Python 3.13 grew a ``track=False``
  argument for the same purpose, but this tree targets 3.11.

Layouts are plain dicts (array name → dtype/shape/offset) so they can
ride the IPC protocol or a fork; offsets are 64-byte aligned, which keeps
every attached array suitably aligned for its dtype.  All views are
marked read-only on both sides — the artifacts are immutable by design,
and an accidental in-place write in one worker must not corrupt its
siblings.
"""

from __future__ import annotations

import secrets
from pathlib import Path

import numpy as np

#: Byte alignment of every array inside a segment.
ALIGNMENT = 64

#: Prefix of every segment this module creates (leak scans key on it).
SEGMENT_PREFIX = "repro-shm-"


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Names of live ``/dev/shm`` segments with ``prefix`` (Linux only).

    The chaos suite calls this after killing workers to prove nothing
    leaked; on platforms without a visible ``/dev/shm`` it returns ``[]``
    (no way to scan, nothing to assert).
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux
        return []
    return sorted(p.name for p in root.glob(f"{prefix}*"))


class SharedArrayPack:
    """A named set of numpy arrays living in one shared-memory segment.

    Construct via :meth:`publish` (owner side) or :meth:`attach` (worker
    side); access arrays through the :attr:`arrays` mapping.  The pack is
    a context manager that closes its local mapping on exit; the segment
    itself survives until the owner calls :meth:`unlink`.
    """

    def __init__(self, shm, arrays: dict[str, np.ndarray], meta: dict, owner: bool) -> None:
        self._shm = shm
        self.arrays = arrays
        self.meta = meta
        self.owner = owner
        self._closed = False

    # ------------------------------------------------------------- creation
    @classmethod
    def publish(cls, arrays: dict[str, np.ndarray], name: str | None = None) -> "SharedArrayPack":
        """Copy ``arrays`` into a fresh segment and return the owner pack.

        Array dtypes and shapes are preserved exactly (no casting), so an
        attached view is bitwise-equal to — and drop-in compatible with —
        the source array.  Insertion order is kept in the layout.
        """
        from multiprocessing import shared_memory

        contiguous = {
            key: np.ascontiguousarray(value) for key, value in arrays.items()
        }
        layout: dict[str, dict] = {}
        offset = 0
        for key, value in contiguous.items():
            offset = _align(offset)
            layout[key] = {
                "dtype": value.dtype.str,
                "shape": list(value.shape),
                "offset": offset,
            }
            offset += value.nbytes
        size = max(offset, 1)  # zero-size segments are not allowed
        segment = name or SEGMENT_PREFIX + secrets.token_hex(8)
        shm = shared_memory.SharedMemory(name=segment, create=True, size=size)
        views: dict[str, np.ndarray] = {}
        for key, value in contiguous.items():
            spec = layout[key]
            view = np.ndarray(
                value.shape, dtype=value.dtype, buffer=shm.buf, offset=spec["offset"]
            )
            view[...] = value
            view.flags.writeable = False
            views[key] = view
        meta = {"segment": shm.name, "size": size, "arrays": layout}
        return cls(shm, views, meta, owner=True)

    @classmethod
    def attach(cls, meta: dict) -> "SharedArrayPack":
        """Map an existing segment described by a :meth:`publish` layout."""
        from multiprocessing import resource_tracker, shared_memory

        # Keep the attach invisible to the resource tracker: attachers
        # must never unlink a segment they do not own (see module
        # docstring).  Suppressing the registration beats the usual
        # register-then-unregister dance because forked workers share the
        # parent's tracker daemon, whose name cache is a *set* — two
        # workers registering and unregistering the same segment would
        # make the second unregister die with a KeyError in the tracker.
        original_register = resource_tracker.register
        def _skip_shm(name: str, rtype: str) -> None:
            if rtype != "shared_memory":  # pragma: no cover - not hit here
                original_register(name, rtype)
        resource_tracker.register = _skip_shm
        try:
            shm = shared_memory.SharedMemory(name=meta["segment"])
        finally:
            resource_tracker.register = original_register
        views: dict[str, np.ndarray] = {}
        for key, spec in meta["arrays"].items():
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=spec["offset"],
            )
            view.flags.writeable = False
            views[key] = view
        return cls(shm, views, meta, owner=False)

    # ------------------------------------------------------------ lifecycle
    @property
    def segment_name(self) -> str:
        """OS-level name of the backing segment."""
        return self.meta["segment"]

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all packed arrays."""
        return sum(
            int(np.prod(spec["shape"]) * np.dtype(spec["dtype"]).itemsize)
            for spec in self.meta["arrays"].values()
        )

    def close(self) -> None:
        """Drop this process's mapping (the segment itself stays).

        Only call when nothing references the pack's arrays anymore —
        closing can unmap the pages under any still-live numpy view.
        Workers therefore keep their pack for their whole life and let
        process exit release the mapping; a pinned buffer that refuses to
        unmap is not an error for the same reason.
        """
        if self._closed:
            return
        self._closed = True
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # views still alive; freed at process exit
            pass

    def unlink(self) -> None:
        """Remove the segment from the OS (owner only; idempotent)."""
        if not self.owner:
            raise RuntimeError(
                f"refusing to unlink {self.segment_name}: this pack only "
                "attached the segment, it does not own it"
            )
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink race
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, key: str) -> bool:
        return key in self.arrays

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]
