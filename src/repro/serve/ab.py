"""Deterministic A/B traffic splitting between two model generations.

A challenger generation earns promotion from *live* traffic, not only
the golden-corpus canary.  The split must be deterministic — the same
trajectory always lands on the same generation — so that results stay
reproducible under retries and the observed split ratio over a known
trace is an exact function of the trace, not a statistical estimate.

The routing key is the canonical JSON encoding of the trajectory
payload (same canonicalisation the cluster response cache uses), hashed
with ``blake2b``; the 64-bit digest divided by ``2**64`` yields a
uniform fraction in ``[0, 1)`` and a trajectory routes to the
challenger iff that fraction is below the configured split.  Both the
threaded server and the cluster gateway route through these helpers,
and the chaos suite recomputes expected assignments with them — exact,
not approximate.

:class:`ABState` is the shared bookkeeping object: split + challenger
provenance + one :class:`GenerationStats` per side (request, degraded,
failed counters and a latency window), surfaced per-generation on
``/metrics``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from typing import Any

from repro.serve.metrics import RollingWindow


def canonical_key(item: Any) -> str:
    """Canonical JSON for one trajectory payload (the routing key)."""
    return json.dumps(item, sort_keys=True, separators=(",", ":"))


def split_fraction(key: str) -> float:
    """Deterministic uniform fraction in ``[0, 1)`` for a routing key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


def routes_to_challenger(key: str, split: float) -> bool:
    """Whether a routing key lands on the challenger at ``split``."""
    return split_fraction(key) < split


class GenerationStats:
    """Thread-safe per-generation serving counters + latency window."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.degraded = 0
        self.failed = 0
        self.latency = RollingWindow()

    def record(
        self, requests: int = 1, degraded: int = 0, failed: int = 0,
        seconds: float | None = None,
    ) -> None:
        """Account served trajectories (and optionally one latency sample)."""
        with self._lock:
            self.requests += requests
            self.degraded += degraded
            self.failed += failed
            if seconds is not None:
                self.latency.record(seconds)

    def snapshot(self) -> dict:
        """Counters plus the windowed latency percentiles, JSON-ready."""
        with self._lock:
            return {
                "requests": self.requests,
                "degraded": self.degraded,
                "failed": self.failed,
                "latency": {
                    "count": self.latency.count(),
                    "p50_ms": round(self.latency.percentile(50.0) * 1000.0, 3),
                    "p95_ms": round(self.latency.percentile(95.0) * 1000.0, 3),
                },
            }


class ABState:
    """One live A/B test: split, challenger provenance, per-side stats."""

    def __init__(
        self,
        split: float,
        champion_generation: int,
        challenger_generation: int,
        challenger_model: str,
        challenger_weights: str = "raw",
    ) -> None:
        if not 0.0 < float(split) <= 1.0:
            raise ValueError(f"split must be in (0, 1], got {split!r}")
        self.split = float(split)
        self.champion_generation = int(champion_generation)
        self.challenger_generation = int(challenger_generation)
        self.challenger_model = challenger_model
        self.challenger_weights = challenger_weights
        self.started = time.monotonic()
        self.champion = GenerationStats()
        self.challenger = GenerationStats()

    def assign(self, key: str) -> bool:
        """True iff the routing key goes to the challenger."""
        return routes_to_challenger(key, self.split)

    def stats_for(self, challenger: bool) -> GenerationStats:
        """The stats bucket of the side an assignment landed on."""
        return self.challenger if challenger else self.champion

    def snapshot(self) -> dict:
        """The ``/metrics`` ``"ab"`` payload: split + both generations."""
        return {
            "split": self.split,
            "challenger_model": self.challenger_model,
            "challenger_weights": self.challenger_weights,
            "age_s": round(time.monotonic() - self.started, 3),
            "generations": {
                str(self.champion_generation): {
                    "role": "champion", **self.champion.snapshot()
                },
                str(self.challenger_generation): {
                    "role": "challenger", **self.challenger.snapshot()
                },
            },
        }
