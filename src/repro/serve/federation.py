"""Gateway-to-gateway federation: multi-host routing, replication, fencing.

One :class:`FederationRuntime` rides on each cluster gateway
(:class:`~repro.serve.cluster.ClusterServer`) and turns N single-host
clusters into one partition-tolerant serving federation:

* **Region routing** — every gateway owns the regions in its own
  :class:`~repro.serve.shards.ShardRegistry` and advertises them in the
  handshake of every peer connection (a registry-style gossip: adverts
  refresh on each reconnect).  A request for a region served elsewhere is
  proxied over the peer frame link (``route_mode="proxy"``) or answered
  with ``307 Temporary Redirect`` to the owner's HTTP address
  (``route_mode="redirect"``); streaming sessions always redirect, since
  they must stay sticky to the owning host.

* **Replicated session journals** — the owner of a streaming session
  ships its point journal to one peer (chosen by a consistent-hash ring
  over peer names, so the replica assignment is stable across the
  federation).  Replication is *semi-synchronous*: the owner waits up to
  ``replication_timeout_s`` per feed while the link is up, but never
  refuses client traffic because a replica is unreachable — per the
  partition semantics below, an isolated gateway keeps serving its own
  regions.  When the owner dies, the peer *adopts* the session: the
  journal replays into a fresh worker and — ``OnlineLHMM`` decoding
  being deterministic — the committed path is bit-identical to the
  uninterrupted run.

* **Fencing** — two generations of fences prevent split-brain.  Gateway
  *boot epochs* (nanosecond timestamps) fence handshakes: a restarted
  gateway supersedes its previous incarnation, and a stale one is
  refused at hello time.  Per-session *fencing tokens* (monotonic
  integers bumped on every adoption) fence journal shipping and close
  commits: after a partition heals, the old owner's replication and
  close attempts carry a stale fence, are rejected with ``fenced``, and
  the old owner drops its record — the adopted copy is the only one
  that ever commits a path.

* **Partition awareness** — peer liveness is measured by the transport
  heartbeats (:class:`~repro.serve.transport.PeerLink`), so a half-open
  TCP connection to a SIGSTOPped host trips ``heartbeat_timeout_s``
  rather than hanging callers.  A gateway that loses a peer serves its
  own regions normally, answers for the lost peer's regions with ``503``
  + ``Retry-After`` (``region_partitioned``), and surfaces the partition
  on ``/healthz`` (status ``degraded``, ``federation.partitioned``) and
  ``/metrics``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.errors import ClusterUnavailable, UnknownRegion
from repro.serve.cluster import (
    ConsistentHashRing,
    SessionFenced,
    _error_payload,
    _HttpError,
    _SessionRecord,
    _WorkerOpError,
)
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import UnknownSessionError
from repro.serve.shards import DEFAULT_REGION
from repro.serve.transport import (
    FenceRegistry,
    FrameListener,
    PeerDown,
    PeerLink,
    TransportConfig,
)


@dataclass(slots=True)
class PeerSpec:
    """One federated peer gateway: its name and frame-listener address."""

    name: str
    host: str
    port: int

    @classmethod
    def parse(cls, text: str) -> "PeerSpec":
        """Parse the CLI form ``NAME=HOST:PORT``."""
        name, sep, address = text.partition("=")
        host, sep2, port = address.rpartition(":")
        if not sep or not sep2 or not name or not host:
            raise ValueError(
                f"invalid peer spec {text!r} (expected NAME=HOST:PORT)"
            )
        try:
            port_num = int(port)
        except ValueError:
            raise ValueError(f"invalid peer port in {text!r}") from None
        return cls(name=name, host=host, port=port_num)


@dataclass(slots=True)
class FederationConfig:
    """Tunables of one gateway's federation runtime."""

    #: This gateway's unique node name (ring identity + fence key).
    node: str
    listen_host: str = "127.0.0.1"
    #: Frame-listener port (0 binds ephemeral; read ``fed_port`` after start).
    listen_port: int = 0
    peers: tuple = ()
    #: HTTP address advertised to peers for redirects (defaults to the
    #: gateway's own bound address — override behind NAT/LB).
    advertise_host: str | None = None
    advertise_port: int | None = None
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 3.0
    connect_timeout_s: float = 5.0
    backoff_base_s: float = 0.2
    backoff_max_s: float = 5.0
    #: Ship session journals to one peer (replica chosen on the ring).
    replicate: bool = True
    #: Per-feed wait for the replica's ack while its link is up.
    replication_timeout_s: float = 2.0
    #: Misrouted ``/v1/match``: ``"proxy"`` over the peer link, or
    #: ``"redirect"`` with 307 + ``Location`` (sessions always redirect).
    route_mode: str = "proxy"
    #: Timeout for one proxied match call.
    call_timeout_s: float = 60.0
    ring_replicas: int = 64


@dataclass(slots=True)
class _PeerState:
    """Everything this gateway knows about one peer."""

    spec: PeerSpec
    link: PeerLink | None = None
    regions: tuple = ()
    http: str = ""
    epoch: int = 0
    last_hello: float = 0.0


@dataclass(slots=True)
class _ReplicaRecord:
    """A peer-owned session's journal held here as the failover replica."""

    session_id: str
    region: str
    lag: int
    context_window: int
    owner: str
    fence: int
    last_seq: int = -1
    journal: list = field(default_factory=list)
    received_at: float = 0.0
    closing: bool = False


class FederationRuntime:
    """The federation side of one gateway; lives on the gateway's loop."""

    def __init__(self, server, config: FederationConfig) -> None:
        if config.route_mode not in ("proxy", "redirect"):
            raise ValueError(
                f"route_mode must be 'proxy' or 'redirect', got {config.route_mode!r}"
            )
        self.server = server
        self.config = config
        self.node = config.node
        #: Boot-epoch fence: strictly increases across restarts of this
        #: node, so a superseded incarnation can never re-handshake.
        self.epoch = time.time_ns()
        self._peers: dict[str, _PeerState] = {
            spec.name: _PeerState(spec=spec) for spec in config.peers
        }
        if self.node in self._peers:
            raise ValueError(f"node {self.node!r} cannot be its own peer")
        self._ring = ConsistentHashRing(
            tuple(sorted(self._peers)), replicas=config.ring_replicas
        )
        self._hello_fences = FenceRegistry()
        #: sid -> fence minted when *we* adopted it (rejects the old owner).
        self._session_fences: dict[str, int] = {}
        self._replicas: dict[str, _ReplicaRecord] = {}
        self._listener: FrameListener | None = None
        self._tasks: set[asyncio.Task] = set()
        self._OPS = {
            "fed.ping": FederationRuntime._op_ping,
            "fed.match": FederationRuntime._op_match,
            "fed.session.open": FederationRuntime._op_session_open,
            "fed.session.feed": FederationRuntime._op_session_feed,
            "fed.session.close": FederationRuntime._op_session_close,
            "fed.session.drop": FederationRuntime._op_session_drop,
        }

    # ------------------------------------------------------------- lifecycle
    def _transport_config(self) -> TransportConfig:
        return TransportConfig(
            connect_timeout_s=self.config.connect_timeout_s,
            handshake_timeout_s=self.config.connect_timeout_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            backoff_base_s=self.config.backoff_base_s,
            backoff_max_s=self.config.backoff_max_s,
        )

    async def start(self) -> None:
        """Bind the frame listener and start dialing every peer."""
        self._listener = FrameListener(self._on_hello, config=self._transport_config())
        await self._listener.start(self.config.listen_host, self.config.listen_port)
        for state in self._peers.values():
            link = PeerLink(
                state.spec.name,
                state.spec.host,
                state.spec.port,
                self._advert,
                config=self._transport_config(),
                on_up=self._peer_up,
                on_down=self._peer_down,
            )
            state.link = link
            link.start()
        self.server._journal.record(
            "fed_started",
            node=self.node,
            epoch=self.epoch,
            port=self.fed_port,
            peers=sorted(self._peers),
        )

    async def stop(self) -> None:
        """Cancel background tasks and close the listener and every peer link."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks.clear()
        for state in self._peers.values():
            if state.link is not None:
                await state.link.stop()
        if self._listener is not None:
            await self._listener.stop()
            self._listener = None

    @property
    def fed_port(self) -> int:
        """The bound frame-listener port (after :meth:`start`)."""
        return self._listener.port if self._listener is not None else 0

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _count(self, name: str, amount: int = 1) -> None:
        self.server.metrics.increment(name, amount)

    # ----------------------------------------------------- adverts/handshake
    def http_address(self) -> str:
        """The HTTP URL peers should advertise for this node (``--advertise``)."""
        host = self.config.advertise_host or self.server.host
        port = self.config.advertise_port or self.server.port
        return f"http://{host}:{port}"

    def _advert(self) -> dict:
        """This node's handshake payload (sent on every dial + hello ack)."""
        return {
            "node": self.node,
            "epoch": self.epoch,
            "regions": list(self.server.registry.regions),
            "http": self.http_address(),
        }

    def _absorb_advert(self, payload: dict) -> None:
        state = self._peers.get(payload.get("node"))
        if state is None:
            return
        epoch = payload.get("epoch")
        if isinstance(epoch, int) and not isinstance(epoch, bool):
            state.epoch = epoch
        regions = payload.get("regions")
        if isinstance(regions, list):
            state.regions = tuple(str(region) for region in regions)
        http = payload.get("http")
        if isinstance(http, str):
            state.http = http
        state.last_hello = time.monotonic()

    async def _on_hello(self, payload: dict, reader, writer):
        node = payload.get("node")
        epoch = payload.get("epoch")
        if not isinstance(node, str) or isinstance(epoch, bool) or not isinstance(epoch, int):
            return (
                "reject",
                {
                    "ok": False,
                    "error": {
                        "code": "protocol_error",
                        "message": "hello requires 'node' (str) and 'epoch' (int)",
                    },
                },
            )
        if not self._hello_fences.admit(node, epoch):
            self._count("fed_fenced_hellos_total")
            self.server._journal.record("fed_hello_fenced", peer=node, epoch=epoch)
            return (
                "reject",
                {
                    "ok": False,
                    "error": {
                        "code": "stale_epoch",
                        "message": f"node {node!r} epoch {epoch} is superseded",
                    },
                },
            )
        self._absorb_advert(payload)
        return ("serve", {"ok": True, **self._advert()}, self._dispatch_frame)

    async def _peer_up(self, link: PeerLink, ack: dict) -> None:
        self._absorb_advert(ack)
        self._count("fed_peer_up_total")
        self.server._journal.record("fed_peer_up", peer=link.name)
        state = self._peers.get(link.name)
        if state is not None and self.config.replicate:
            # The peer may be a fresh process with empty replica state:
            # re-ship every session whose replica routes to it.
            self._spawn(self._resync_peer(state))

    async def _peer_down(self, link: PeerLink) -> None:
        self._count("fed_peer_down_total")
        self.server._journal.record("fed_peer_down", peer=link.name)

    async def _resync_peer(self, state: _PeerState) -> None:
        for record in list(self.server._records.values()):
            if self.replica_for(record.session_id) is not state:
                continue
            try:
                if await self.replicate_open(record):
                    self._count("fed_resyncs_total")
            except SessionFenced:
                continue  # the record was popped; the peer owns it now
            except Exception:  # noqa: BLE001 - resync is best-effort
                return

    # ------------------------------------------------------------ peer state
    def peer_up(self, state: _PeerState) -> bool:
        """Whether the peer link is connected and heartbeats are flowing."""
        return state.link is not None and state.link.up

    def owner_for_region(self, region: str) -> _PeerState | None:
        """The peer advertising ``region`` (name order breaks ties)."""
        for name in sorted(self._peers):
            if region in self._peers[name].regions:
                return self._peers[name]
        return None

    def partitioned_peers(self) -> list[str]:
        """Names of configured peers currently unreachable (sorted)."""
        return sorted(name for name, s in self._peers.items() if not self.peer_up(s))

    def _redirect(self, state: _PeerState, path: str) -> _HttpError:
        location = state.http + path
        return _HttpError(
            307,
            f"resource is owned by peer {state.spec.name!r}",
            headers={"Location": location},
            extra={
                "code": "federation_redirect",
                "peer": state.spec.name,
                "location": location,
            },
        )

    def _partition_error(self, region: str, state: _PeerState) -> _HttpError:
        retry_after = self.server.config.retry_after_s
        self._count("fed_partition_503_total")
        return _HttpError(
            503,
            f"region {region!r} is owned by peer {state.spec.name!r}, "
            "which is unreachable (partition)",
            headers={"Retry-After": str(max(1, round(retry_after)))},
            extra={
                "code": "region_partitioned",
                "peer": state.spec.name,
                "retry_after_s": retry_after,
            },
        )

    # -------------------------------------------------------- remote routing
    async def handle_remote_match(
        self, region: str, payload: dict, deadline: float | None
    ) -> tuple[int, dict]:
        """A ``/v1/match`` for a region another gateway owns."""
        state = self.owner_for_region(region)
        if state is None:
            raise UnknownRegion(
                f"region {region!r} is not served by this node or any federated peer"
            )
        body = payload.get("trajectories")
        single = False
        if body is None:
            body = [payload.get("points")]
            single = True
        if not isinstance(body, list) or not body:
            raise ProtocolError(
                "expected 'trajectories' (list of point lists) or 'points'"
            )
        if self.config.route_mode == "redirect":
            self._count("fed_redirects_total")
            raise self._redirect(state, "/v1/match")
        if not self.peer_up(state):
            raise self._partition_error(region, state)
        message: dict = {"op": "fed.match", "region": region, "trajectories": body}
        if deadline is not None:
            # Absolute monotonic deadlines do not cross hosts; ship the
            # remaining budget and let the owner re-anchor it.
            message["budget_ms"] = max(0.0, (deadline - time.monotonic()) * 1000.0)
        try:
            reply = await state.link.call(message, timeout=self.config.call_timeout_s)
        except (PeerDown, TimeoutError, asyncio.TimeoutError) as error:
            raise self._partition_error(region, state) from error
        if not reply.get("ok", False):
            raise _WorkerOpError(reply.get("error") or {})
        self._count("fed_proxied_matches_total")
        for name, key in (
            ("trajectories_matched", "matched"),
            ("match_degraded_total", "degraded"),
            ("match_failed_total", "failed"),
        ):
            amount = reply.get(key, 0)
            if amount:
                self.server.metrics.increment(name, amount)
        return self.server._encode_match_slots(reply["results"], single)

    def remote_session_error(self, region: str, path: str) -> Exception:
        """The error for a session op targeting a region owned elsewhere."""
        state = self.owner_for_region(region)
        if state is None:
            return UnknownRegion(
                f"region {region!r} is not served by this node or any federated peer"
            )
        if self.peer_up(state):
            self._count("fed_redirects_total")
            return self._redirect(state, path)
        return self._partition_error(region, state)

    # ------------------------------------------------------------ replication
    def replica_for(self, session_id: str) -> _PeerState | None:
        """The peer holding ``session_id``'s journal replica (ring-stable)."""
        if not self._peers or not self.config.replicate:
            return None
        try:
            name = self._ring.route(session_id)
        except ClusterUnavailable:  # pragma: no cover - peers imply a ring
            return None
        return self._peers.get(name)

    def _fence_local(self, record: _SessionRecord) -> None:
        """A peer rejected our fence: we were superseded.  Drop + 409."""
        self.server._records.pop(record.session_id, None)
        self._count("fed_fenced_total")
        self.server._journal.record(
            "fed_session_fenced", session=record.session_id, fence=record.fence
        )
        raise SessionFenced(record.session_id)

    async def replicate_open(self, record: _SessionRecord) -> bool:
        """Ship a session's full journal to its replica peer.

        Returns ``True`` when the replica acked; ``False`` when there is
        no reachable replica (the session keeps serving — availability
        over replication, see the partition semantics).  Raises
        :class:`SessionFenced` when the peer holds a higher fence: this
        gateway no longer owns the session.
        """
        state = self.replica_for(record.session_id)
        if state is None:
            return False
        if not self.peer_up(state):
            record.replica_synced = False
            return False
        message = {
            "op": "fed.session.open",
            "session_id": record.session_id,
            "region": record.region,
            "lag": record.lag,
            "context_window": record.context_window,
            "owner": self.node,
            "fence": record.fence,
            "last_seq": record.last_seq,
            "journal": list(record.journal),
        }
        try:
            reply = await state.link.call(
                message, timeout=self.config.replication_timeout_s
            )
        except (PeerDown, TimeoutError, asyncio.TimeoutError):
            record.replica_synced = False
            self._count("fed_replication_failures_total")
            return False
        if reply.get("ok", False):
            record.replica_synced = True
            self._count("fed_replications_total")
            return True
        if (reply.get("error") or {}).get("code") == "fenced":
            self._fence_local(record)
        record.replica_synced = False
        self._count("fed_replication_failures_total")
        return False

    async def replicate_feed(self, record: _SessionRecord, points: list) -> bool:
        """Ship one accepted feed to the replica (semi-synchronous).

        ``record.journal`` already contains ``points``, so a resync after
        a missed delta simply re-ships the full journal.  Raises
        :class:`SessionFenced` when the replica adopted the session while
        we were unreachable — the caller must answer 409, never commit.
        """
        state = self.replica_for(record.session_id)
        if state is None:
            return False
        if not self.peer_up(state):
            record.replica_synced = False
            self._count("fed_replication_failures_total")
            return False
        if not record.replica_synced:
            return await self.replicate_open(record)
        message = {
            "op": "fed.session.feed",
            "session_id": record.session_id,
            "region": record.region,
            "points": points,
            "seq": record.last_seq,
            "fence": record.fence,
        }
        try:
            reply = await state.link.call(
                message, timeout=self.config.replication_timeout_s
            )
        except (PeerDown, TimeoutError, asyncio.TimeoutError):
            record.replica_synced = False
            self._count("fed_replication_failures_total")
            return False
        if reply.get("ok", False):
            self._count("fed_replications_total")
            return True
        code = (reply.get("error") or {}).get("code")
        if code == "fenced":
            self._fence_local(record)
        if code == "unknown_replica":
            # The peer restarted and lost the replica: full resync.
            return await self.replicate_open(record)
        record.replica_synced = False
        self._count("fed_replication_failures_total")
        return False

    async def confirm_close(self, record: _SessionRecord) -> bool:
        """Ask the replica to approve a close commit (fence check).

        ``False`` means the replica adopted the session — the commit must
        be refused.  An unreachable replica approves by default: the
        partition rules make the *isolated owner* keep serving its own
        sessions, and a concurrent adoption on the other side is resolved
        at heal time by the fence (whichever close landed first wins; the
        loser's next op is rejected).
        """
        state = self.replica_for(record.session_id)
        if state is None or not self.peer_up(state):
            return True
        try:
            reply = await state.link.call(
                {
                    "op": "fed.session.close",
                    "session_id": record.session_id,
                    "fence": record.fence,
                },
                timeout=self.config.replication_timeout_s,
            )
        except (PeerDown, TimeoutError, asyncio.TimeoutError):
            return True
        if reply.get("ok", False):
            return True
        if (reply.get("error") or {}).get("code") == "fenced":
            self._count("fed_fenced_total")
            self.server._journal.record(
                "fed_close_fenced", session=record.session_id, fence=record.fence
            )
            return False
        return True

    def drop_replica(self, record: _SessionRecord) -> None:
        """Fire-and-forget: tell the replica the session committed."""
        state = self.replica_for(record.session_id)
        if state is None or not self.peer_up(state):
            return

        async def _send() -> None:
            try:
                await state.link.call(
                    {
                        "op": "fed.session.drop",
                        "session_id": record.session_id,
                        "fence": record.fence,
                    },
                    timeout=self.config.replication_timeout_s,
                )
            except Exception:  # noqa: BLE001 - best effort
                pass

        self._spawn(_send())

    # --------------------------------------------------------------- adoption
    def resolve_session(self, session_id: str, path: str) -> _SessionRecord:
        """Place an unknown session id: redirect to a live owner, or adopt.

        Called when a session op arrives for an id this gateway does not
        own.  If we hold its replica and the owner is *up*, the client is
        misrouted — 307 to the owner.  If the owner is down (heartbeat
        timeout), we adopt: mint a higher fence, rebuild a gateway record
        from the replicated journal, and let the normal replay machinery
        commit the bit-identical path.  No replica → the id is unknown.
        """
        replica = self._replicas.get(session_id)
        if replica is None:
            raise UnknownSessionError(session_id)
        owner_state = self._peers.get(replica.owner)
        if owner_state is not None and self.peer_up(owner_state):
            self._count("fed_redirects_total")
            raise self._redirect(owner_state, path)
        if replica.region not in self.server.registry.regions:
            raise ClusterUnavailable(
                f"session {session_id} belongs to region {replica.region!r}, "
                "which is not served on this node"
            )
        fence = max(replica.fence, self._session_fences.get(session_id, -1)) + 1
        self._session_fences[session_id] = fence
        self._replicas.pop(session_id, None)
        record = _SessionRecord(
            session_id=session_id,
            region=replica.region,
            lag=replica.lag,
            context_window=replica.context_window,
            worker_name="",
            generation=-1,  # forces a journal replay on the first op
            journal=list(replica.journal),
            last_touched=time.monotonic(),
        )
        record.fence = fence
        record.last_seq = replica.last_seq
        self._count("fed_adoptions_total")
        self.server._journal.record(
            "fed_session_adopted",
            session=session_id,
            owner=replica.owner,
            fence=fence,
            points=len(record.journal),
        )
        return record

    # --------------------------------------------------------- inbound frames
    async def _dispatch_frame(self, message: dict) -> dict:
        op = str(message.get("op") or "")
        base = {"id": message.get("id")}
        handler = self._OPS.get(op)
        if handler is None:
            return {
                **base,
                "ok": False,
                "error": {
                    "code": "protocol_error",
                    "message": f"unknown federation op {op!r}",
                    "status": 400,
                },
            }
        try:
            result = await handler(self, message)
        except Exception as error:  # noqa: BLE001 - answer, don't drop the link
            return {**base, "ok": False, "error": _error_payload(error)}
        return {**base, "ok": True, **result}

    async def _op_ping(self, message: dict) -> dict:
        return {"pong": True, "node": self.node, "epoch": self.epoch}

    async def _op_match(self, message: dict) -> dict:
        """Serve a proxied match for a region we own (gated like HTTP)."""
        region = message.get("region", DEFAULT_REGION)
        server = self.server
        server._check_draining()
        deadline = None
        budget = message.get("budget_ms")
        if isinstance(budget, (int, float)) and not isinstance(budget, bool):
            deadline = time.monotonic() + max(0.0, float(budget)) / 1000.0
        if region not in server.registry.regions:
            raise UnknownRegion(f"region {region!r} is not served here")
        await server._gate.acquire(deadline)
        try:
            reply = await server._match_on_worker(
                region, message.get("trajectories") or [], deadline
            )
        finally:
            server._gate.release()
        return {
            "results": reply["results"],
            "matched": reply.get("matched", 0),
            "degraded": reply.get("degraded", 0),
            "failed": reply.get("failed", 0),
        }

    def _effective_fence(self, session_id: str) -> int:
        fence = -1
        replica = self._replicas.get(session_id)
        if replica is not None:
            fence = max(fence, replica.fence)
        owned = self.server._records.get(session_id)
        if owned is not None:
            fence = max(fence, owned.fence)
        adopted = self._session_fences.get(session_id)
        if adopted is not None:
            fence = max(fence, adopted)
        return fence

    @staticmethod
    def _fenced_error(session_id: str, fence) -> dict:
        return {
            "error": {
                "code": "fenced",
                "message": f"fence {fence!r} for session {session_id} is stale",
                "status": 409,
            }
        }

    def _prune_replicas(self) -> None:
        ttl = self.server.config.session_ttl_s * 4.0
        now = time.monotonic()
        stale = [
            sid
            for sid, rec in self._replicas.items()
            if now - rec.received_at > ttl
        ]
        for sid in stale:
            self._replicas.pop(sid, None)

    async def _op_session_open(self, message: dict) -> dict:
        sid = str(message.get("session_id"))
        fence = message.get("fence", 0)
        if isinstance(fence, bool) or not isinstance(fence, int):
            raise ProtocolError("field 'fence' must be an integer")
        if fence < self._effective_fence(sid):
            return {"ok": False, **self._fenced_error(sid, fence)}
        owned = self.server._records.get(sid)
        if owned is not None:
            if fence <= owned.fence:
                return {"ok": False, **self._fenced_error(sid, fence)}
            # We believed we owned this session but a peer holds a higher
            # fence: we were superseded while unreachable (resumed after a
            # stop/partition).  Cede ownership; we are the replica now.
            self.server._records.pop(sid, None)
            self._count("fed_fenced_total")
            self.server._journal.record(
                "fed_ownership_ceded", session=sid, fence=fence
            )
        self._replicas[sid] = _ReplicaRecord(
            session_id=sid,
            region=str(message.get("region", DEFAULT_REGION)),
            lag=int(message.get("lag", 0)),
            context_window=int(message.get("context_window", 0)),
            owner=str(message.get("owner", "")),
            fence=fence,
            last_seq=int(message.get("last_seq", -1)),
            journal=list(message.get("journal") or []),
            received_at=time.monotonic(),
        )
        self._prune_replicas()
        return {"accepted": True}

    async def _op_session_feed(self, message: dict) -> dict:
        sid = str(message.get("session_id"))
        fence = message.get("fence", 0)
        replica = self._replicas.get(sid)
        if replica is None:
            return {
                "ok": False,
                "error": {
                    "code": "unknown_replica",
                    "message": f"no replica for session {sid}",
                    "status": 404,
                },
            }
        if self.server._records.get(sid) is not None or fence < self._effective_fence(sid):
            return {"ok": False, **self._fenced_error(sid, fence)}
        seq = message.get("seq")
        if isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0:
            if seq <= replica.last_seq:
                return {"accepted": True, "duplicate": True}
            replica.last_seq = seq
        points = message.get("points")
        if isinstance(points, list):
            replica.journal.extend(points)
        replica.received_at = time.monotonic()
        return {"accepted": True, "points": len(replica.journal)}

    async def _op_session_close(self, message: dict) -> dict:
        sid = str(message.get("session_id"))
        fence = message.get("fence", 0)
        owned = self.server._records.get(sid)
        if owned is not None and fence <= owned.fence:
            return {"ok": False, **self._fenced_error(sid, fence)}
        if fence < self._effective_fence(sid):
            return {"ok": False, **self._fenced_error(sid, fence)}
        replica = self._replicas.get(sid)
        if replica is not None:
            replica.closing = True
        return {"approved": True}

    async def _op_session_drop(self, message: dict) -> dict:
        sid = str(message.get("session_id"))
        fence = message.get("fence", 0)
        if isinstance(fence, int) and fence >= self._effective_fence(sid):
            self._replicas.pop(sid, None)
        return {"dropped": True}

    # --------------------------------------------------------- observability
    def snapshot(self) -> dict:
        """Federation state for ``/healthz`` and ``/metrics`` (peers, replicas)."""
        now = time.monotonic()
        peers = {}
        for name in sorted(self._peers):
            state = self._peers[name]
            link = state.link
            peers[name] = {
                "up": self.peer_up(state),
                "regions": sorted(state.regions),
                "http": state.http,
                "connects": link.connects if link is not None else 0,
                "last_seen_age_s": (
                    round(now - link.last_seen, 3)
                    if link is not None and link.last_seen
                    else None
                ),
            }
        return {
            "node": self.node,
            "epoch": self.epoch,
            "listen": {
                "host": self._listener.host if self._listener else self.config.listen_host,
                "port": self.fed_port,
            },
            "route_mode": self.config.route_mode,
            "replicate": self.config.replicate,
            "peers": peers,
            "partitioned": self.partitioned_peers(),
            "replica_sessions": len(self._replicas),
            "adopted_fences": len(self._session_fences),
        }
