"""Control-plane primitives of the serving cluster.

The gateway's supervision loop (``repro.serve.cluster``) is deliberately
thin: every *decision* it makes lives here, in four small, independently
testable pieces —

* :class:`ControlJournal` — an append-only record of every control
  action (respawn, breaker trip, scale up/down, rollout step).  The
  journal is the flight recorder: chaos tests and operators reconstruct
  *why* the fleet looks the way it does from it, and CI uploads it as an
  artifact when a chaos run fails.
* :class:`AdmissionGate` — a bounded asyncio admission queue in front of
  the worker fleet.  It converts "too busy" from an instant hard bounce
  into a short, deadline-aware wait: requests queue up to
  ``queue_limit``, overflow is shed with
  :class:`~repro.errors.ServerOverloaded` (503), and waiters whose
  client deadline expires are shed at the queue head with
  :class:`~repro.errors.DeadlineExceeded` (504) *before* any matching
  work is wasted on them.  Recent wait times feed the autoscaler.
* :class:`CrashTracker` — per-worker crash bookkeeping behind the
  crash-loop breaker: a worker that keeps dying faster than it can warm
  up gets its ring slot ejected instead of being respawned forever.
* :class:`AutoscalerPolicy` — the pure scale-up/scale-down decision
  function.  It owns the thresholds and cooldowns; the cluster owns the
  mechanics (forking and draining workers).  Keeping it pure makes the
  hysteresis unit-testable with synthetic clocks.

Everything here is either loop-confined (the gate: only the gateway's
event loop touches it) or internally locked (the journal: worker probe
callbacks may fire from executor threads), so the cluster can compose
them without its own locking discipline.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import DeadlineExceeded, ServerOverloaded
from repro.serve.metrics import RollingWindow


class ControlJournal:
    """Append-only, thread-safe record of control-plane decisions.

    Events are dicts with a wall-clock ``ts`` and an ``event`` name plus
    free-form fields.  The newest ``keep`` events stay in memory for the
    ``/metrics`` tail; with a ``path`` every event is also appended as a
    JSON line (flushed per event — the journal must survive the process
    being SIGKILLed an instant later, that is its whole point).
    """

    def __init__(self, path: str | None = None, keep: int = 256) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._recent: deque[dict] = deque(maxlen=keep)
        self._file = open(path, "a", encoding="utf-8") if path else None

    def record(self, event: str, **fields: object) -> dict:
        """Append one event; returns the recorded dict."""
        entry = {"ts": round(time.time(), 3), "event": event, **fields}
        with self._lock:
            self._recent.append(entry)
            if self._file is not None:
                try:
                    self._file.write(json.dumps(entry, sort_keys=True) + "\n")
                    self._file.flush()
                except (OSError, ValueError):  # closed file / full disk
                    pass
        return entry

    def tail(self, count: int = 50) -> list[dict]:
        """The newest ``count`` events, oldest first."""
        with self._lock:
            entries = list(self._recent)
        return entries[-count:]

    def close(self) -> None:
        """Close the journal file (idempotent); events still accumulate in memory."""
        with self._lock:
            if self._file is not None:
                try:
                    self._file.close()
                except OSError:  # pragma: no cover
                    pass
                self._file = None


@dataclass(slots=True)
class _Waiter:
    future: asyncio.Future
    deadline: float | None
    enqueued_at: float


class AdmissionGate:
    """Bounded admission queue with deadline-aware load shedding.

    At most ``max_inflight`` requests hold a slot at once; up to
    ``queue_limit`` more wait in FIFO order.  Beyond that the deployment
    is overloaded by definition and arrivals are shed immediately with
    :class:`ServerOverloaded` — a bounded queue is what keeps overload
    latency bounded.  A waiter whose (absolute, ``time.monotonic``)
    deadline expires is shed with :class:`DeadlineExceeded` the moment it
    would reach the head — doing the match anyway would burn a worker on
    an answer nobody is waiting for.

    Loop-confined: every method must run on the gateway's event loop.
    """

    def __init__(
        self,
        max_inflight: int,
        queue_limit: int,
        window_s: float = 30.0,
    ) -> None:
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.inflight = 0
        self.wait_window = RollingWindow(window_s=window_s)
        self.admitted_total = 0
        self.shed_overflow_total = 0
        self.shed_deadline_total = 0
        self._waiters: deque[_Waiter] = deque()

    @property
    def depth(self) -> int:
        """Requests currently queued (excludes in-flight holders)."""
        return len(self._waiters)

    async def acquire(self, deadline: float | None = None) -> None:
        """Wait for an execution slot; raises instead of queueing forever.

        Raises :class:`ServerOverloaded` when the queue is full and
        :class:`DeadlineExceeded` when ``deadline`` expires first (or
        already has).  On success the caller *must* pair with
        :meth:`release` (use ``try/finally``).
        """
        now = time.monotonic()
        if deadline is not None and now >= deadline:
            self.shed_deadline_total += 1
            raise DeadlineExceeded("deadline expired before admission")
        if self.inflight < self.max_inflight and not self._waiters:
            self.inflight += 1
            self.admitted_total += 1
            self.wait_window.record(0.0, now=now)
            return
        if len(self._waiters) >= self.queue_limit:
            self.shed_overflow_total += 1
            raise ServerOverloaded(
                f"admission queue full ({self.queue_limit} waiting, "
                f"{self.inflight} in flight)"
            )
        waiter = _Waiter(
            future=asyncio.get_running_loop().create_future(),
            deadline=deadline,
            enqueued_at=now,
        )
        self._waiters.append(waiter)
        timeout = None if deadline is None else max(0.0, deadline - now)
        try:
            # shield: an expiring wait_for must not cancel the future out
            # from under a racing grant (we would leak the slot it gave us).
            await asyncio.wait_for(asyncio.shield(waiter.future), timeout)
        except asyncio.TimeoutError:
            if waiter.future.done() and not waiter.future.cancelled():
                if waiter.future.exception() is None:
                    # The grant won the race: we own a slot after all, but
                    # our caller is about to see 504 — hand the slot on.
                    self.release()
            else:
                waiter.future.cancel()
                self.shed_deadline_total += 1
            raise DeadlineExceeded("deadline expired while queued") from None
        except asyncio.CancelledError:
            # The *request task* was cancelled (client gone, shutdown).
            if waiter.future.done() and not waiter.future.cancelled():
                if waiter.future.exception() is None:
                    self.release()
                else:
                    waiter.future.exception()  # retrieved: no loop warning
            else:
                waiter.future.cancel()
            raise
        wait = time.monotonic() - waiter.enqueued_at
        self.admitted_total += 1
        self.wait_window.record(wait)

    def release(self) -> None:
        """Give a slot back; grants it to the first live, unexpired waiter."""
        self.inflight -= 1
        self._grant()

    def _shed(self, waiter: _Waiter) -> None:
        self.shed_deadline_total += 1
        waiter.future.set_exception(
            DeadlineExceeded("deadline expired while queued")
        )

    def _grant(self) -> None:
        now = time.monotonic()
        while self._waiters and self.inflight < self.max_inflight:
            waiter = self._waiters.popleft()
            if waiter.future.done():  # cancelled / already shed
                continue
            if waiter.deadline is not None and now >= waiter.deadline:
                self._shed(waiter)
                continue
            self.inflight += 1
            waiter.future.set_result(None)

    def sweep(self) -> int:
        """Drop expired waiters without waiting for a release; returns count.

        The supervision loop calls this each tick so queued work whose
        client has already given up cannot occupy queue slots during a
        long stall (e.g. every worker busy on slow matches).
        """
        now = time.monotonic()
        shed = 0
        for waiter in self._waiters:
            if (
                waiter.deadline is not None
                and now >= waiter.deadline
                and not waiter.future.done()
            ):
                self._shed(waiter)
                shed += 1
        if shed:
            self._waiters = deque(w for w in self._waiters if not w.future.done())
        return shed

    def snapshot(self) -> dict:
        """Gate state for ``/metrics``."""
        return {
            "inflight": self.inflight,
            "depth": self.depth,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "admitted_total": self.admitted_total,
            "shed_overflow_total": self.shed_overflow_total,
            "shed_deadline_total": self.shed_deadline_total,
            "wait_p95_s": round(self.wait_window.percentile(95.0), 6),
        }


class CrashTracker:
    """Per-worker crash history behind the crash-loop breaker.

    A worker that crashes ``threshold`` times within ``window_s`` is
    *flapping* — most likely poisoned by its environment (bad page in the
    shared segment, cgroup OOM ceiling) rather than unlucky — and
    respawning it only converts the fault into a fork bomb.  The breaker
    opens instead: the supervision loop ejects the ring slot and degrades
    ``/healthz``.  An open breaker stays open (operators restart the
    deployment to clear it; automatic half-open probing is not worth its
    complexity at this fleet size).
    """

    def __init__(self, threshold: int = 3, window_s: float = 30.0) -> None:
        self.threshold = threshold
        self.window_s = window_s
        self._crashes: dict[str, list[float]] = {}
        self._open: set[str] = set()

    def record(self, name: str, now: float | None = None) -> bool:
        """Count one crash; returns ``True`` if the breaker just opened."""
        stamp = time.monotonic() if now is None else now
        history = self._crashes.setdefault(name, [])
        history.append(stamp)
        horizon = stamp - self.window_s
        self._crashes[name] = history = [t for t in history if t >= horizon]
        if name not in self._open and len(history) >= self.threshold:
            self._open.add(name)
            return True
        return False

    def recent(self, name: str, now: float | None = None) -> int:
        """In-window crash count (drives the respawn backoff exponent)."""
        stamp = time.monotonic() if now is None else now
        horizon = stamp - self.window_s
        return sum(1 for t in self._crashes.get(name, []) if t >= horizon)

    def is_open(self, name: str) -> bool:
        """Whether ``name``'s breaker has tripped."""
        return name in self._open

    def open_breakers(self) -> list[str]:
        """Names with tripped breakers, sorted."""
        return sorted(self._open)

    def forget(self, name: str) -> None:
        """Drop all state for a retired worker (scale-down cleanup)."""
        self._crashes.pop(name, None)
        self._open.discard(name)


@dataclass(slots=True)
class AutoscalerPolicy:
    """Pure scale-up/scale-down decision logic with hysteresis.

    The cluster calls :meth:`decide` once per supervision tick with the
    observed state; the policy answers ``"up"``, ``"down"``, or ``None``.
    Scale **up** when the admission queue is visibly backed up — queue
    depth at/over ``high_water_depth`` or recent p95 admission wait over
    ``high_water_wait_s`` — and the up-cooldown has passed.  Scale
    **down** only after ``idle_ticks_needed`` *consecutive* idle ticks
    (empty queue, negligible wait, fleet mostly idle) and a longer
    cooldown, so a brief lull between bursts does not thrash workers.
    Bounds always win: never above ``max_workers``, never below
    ``min_workers``.
    """

    min_workers: int
    max_workers: int
    high_water_depth: int = 4
    high_water_wait_s: float = 0.5
    low_water_wait_s: float = 0.05
    up_cooldown_s: float = 2.0
    down_cooldown_s: float = 10.0
    idle_ticks_needed: int = 3
    _last_scale_at: float = field(default=float("-inf"), repr=False)
    _idle_ticks: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")

    def decide(
        self,
        now: float,
        workers: int,
        depth: int,
        p95_wait_s: float,
        inflight: int,
    ) -> str | None:
        """One tick's verdict: ``"up"``, ``"down"``, or ``None`` (hold)."""
        busy = depth > 0 or p95_wait_s > self.low_water_wait_s or inflight >= workers
        if busy:
            self._idle_ticks = 0
        else:
            self._idle_ticks += 1
        pressured = depth >= self.high_water_depth or p95_wait_s >= self.high_water_wait_s
        if (
            pressured
            and workers < self.max_workers
            and now - self._last_scale_at >= self.up_cooldown_s
        ):
            self._last_scale_at = now
            self._idle_ticks = 0
            return "up"
        if (
            workers > self.min_workers
            and self._idle_ticks >= self.idle_ticks_needed
            and now - self._last_scale_at >= self.down_cooldown_s
        ):
            self._last_scale_at = now
            self._idle_ticks = 0
            return "down"
        return None
