"""Sharded serving cluster: asyncio gateway + matcher worker fleet.

This is the scale-out tier above :class:`~repro.serve.server.MatchingServer`:

* a single-threaded **gateway** (one asyncio loop) owns HTTP parsing,
  admission control, the response cache, and session affinity — no
  per-request threads;
* N forked **worker processes** each run the full ``LHMM`` /
  ``OnlineLHMM`` machinery over shared-memory artifacts
  (:mod:`repro.serve.shards`) and speak the length-prefixed IPC protocol
  of :mod:`repro.serve.ipc` over a ``socketpair`` — one socket per
  worker, many in-flight operations multiplexed by message id;
* **consistent-hash routing** pins each streaming session to one worker
  so its fixed-lag decoder stays sticky across requests.  Worker names
  (``w0`` … ``wN-1``) are the ring nodes: a respawned worker keeps its
  name and therefore its ring position, so recovery is deterministic.

Failure semantics (mirroring PR 3's pool respawn machinery): when a
worker dies, its in-flight operations fail over to siblings, the
supervisor forks a replacement under the same name (bounded by
``respawn_limit``), and its streaming sessions are *replayed* — the
gateway journals every accepted point per session and feeds the journal
back into the new owner before the next operation.  ``OnlineLHMM``
decoding is deterministic, so a replayed session commits exactly the
path the lost one would have.  Once the respawn budget is exhausted a
worker's name leaves the ring; only ~1/N of sessions re-route (the
consistent-hash property, covered by a hypothesis test).

On top of the data plane sits a **control plane** (primitives in
:mod:`repro.serve.control`):

* a **supervision loop** probes every worker over IPC on a miss budget,
  SIGKILLs stalled-but-alive workers so the normal death path recovers
  them, respawns crashed workers with exponential backoff, and ejects a
  crash-looping worker's ring slot via a per-worker breaker instead of
  fork-bombing forever;
* a **queue-depth autoscaler** forks extra workers when the admission
  queue backs up and drains + retires them when load subsides, bounded
  by ``min_workers``/``max_workers``, every decision journaled;
* **zero-downtime rollout** (``POST /v1/admin/rollout`` or SIGHUP via
  the CLI): a new artifact generation is staged into fresh shared
  memory, canaried on a throwaway probe worker, committed, and the
  fleet is swapped one worker at a time — streaming sessions replay
  deterministically onto the new generation, in-flight requests finish
  on the old one, and a failed canary unlinks the staged segments with
  the old generation never disturbed;
* **live A/B traffic splitting** (``POST /v1/admin/ab``): a challenger
  generation is staged and canaried exactly like a rollout, then served
  by one dedicated worker receiving a deterministic hash-based fraction
  of ``/v1/match`` traffic (:mod:`repro.serve.ab`); per-generation
  counters ride ``/metrics``, and ``promote``/``abort`` finalise the
  test through the same stage→canary→swap machinery;
* **deadline propagation + load shedding**: a client ``deadline_ms``
  becomes an absolute monotonic deadline riding the IPC frames; expired
  work is shed at the admission-queue head (and at op start in the
  worker) with HTTP 504, while queue overflow answers 503 +
  ``Retry-After``.

The HTTP surface is the same JSON protocol as the single-process server
(``/v1/match``, ``/v1/sessions``, ``/healthz``, ``/metrics``) plus an
optional ``region`` field that selects a shard; responses are
byte-identical to direct ``LHMM.match`` / ``OnlineLHMM`` calls — the
existing parity oracle runs against the gateway unchanged.
"""

from __future__ import annotations

import asyncio
import atexit
import bisect
import hashlib
import itertools
import json
import os
import re
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    ClusterUnavailable,
    DeadlineExceeded,
    InvalidTrajectoryInput,
    MatchError,
    ModelReloadFailed,
    ReproError,
    ServerOverloaded,
    UnknownRegion,
    WorkerCrash,
)
from repro.serve import ipc, protocol
from repro.serve.ab import ABState, canonical_key
from repro.serve.control import (
    AdmissionGate,
    AutoscalerPolicy,
    ControlJournal,
    CrashTracker,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import SessionLimitError, SessionManager, UnknownSessionError
from repro.serve.shards import DEFAULT_REGION, ShardRegistry
from repro.testing import faults


# =====================================================================
# consistent-hash ring
# =====================================================================
class ConsistentHashRing:
    """Deterministic consistent hashing with virtual nodes.

    Each node is planted at ``replicas`` pseudo-random points on a 64-bit
    ring (blake2b of ``"{node}#{i}"`` — stable across processes and
    Python runs, unlike ``hash()``); a key routes to the first node
    clockwise from its own hash.  Removing a node re-routes only the keys
    that landed on its points (~1/N of them); every other key keeps its
    owner — exactly the property session stickiness needs across worker
    fleet changes.
    """

    def __init__(self, nodes: tuple[str, ...] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add(self, node: str) -> None:
        """Plant ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend(
            (self._hash(f"{node}#{i}"), node) for i in range(self.replicas)
        )
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove ``node``; keys it owned re-route to their successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._rebuild()

    def route(self, key: str) -> str:
        """The node owning ``key``; raises when the ring is empty."""
        if not self._points:
            raise ClusterUnavailable("no workers available (empty routing ring)")
        pos = bisect.bisect_right(self._hashes, self._hash(key))
        if pos == len(self._points):
            pos = 0
        return self._points[pos][1]

    @property
    def nodes(self) -> set[str]:
        """The live node names."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


# =====================================================================
# configuration
# =====================================================================
@dataclass(slots=True)
class ClusterConfig:
    """Tunables of the cluster gateway and its worker fleet."""

    host: str = "127.0.0.1"
    port: int = 8080
    num_workers: int = 2
    default_lag: int = 4
    default_context_window: int = 12
    max_sessions: int = 256
    session_ttl_s: float = 300.0
    #: Concurrent worker operations the gateway runs at once; arrivals
    #: beyond this wait in the admission queue (see ``queue_limit``).
    max_inflight: int = 64
    #: Admission-queue waiters beyond ``max_inflight`` before arrivals
    #: are shed with 503 + ``Retry-After`` (``server_overloaded``).
    queue_limit: int = 128
    retry_after_s: float = 1.0
    op_timeout_s: float = 120.0
    max_body_bytes: int = 8 * 1024 * 1024
    #: Response-cache entries for ``/v1/match`` (0 disables).  Keys are
    #: the canonicalised (region, trajectory) payload, so a cache hit
    #: returns the byte-identical body a worker would compute.
    cache_size: int = 1024
    #: Worker respawns allowed across the fleet before a dead worker's
    #: name permanently leaves the ring (PR 3 semantics).
    respawn_limit: int = 3
    ring_replicas: int = 64
    shutdown_timeout_s: float = 30.0
    # ---- control plane -------------------------------------------------
    #: Autoscaler floor/ceiling; ``None`` pins both to ``num_workers``
    #: (autoscaling effectively off, the pre-control-plane behaviour).
    min_workers: int | None = None
    max_workers: int | None = None
    #: Supervision tick (gate sweep, probe scheduling, autoscale check).
    control_interval_s: float = 0.25
    #: Health-probe cadence/timeout and how many consecutive unanswered
    #: probes mark an alive-but-unresponsive worker as stalled (SIGKILL).
    probe_interval_s: float = 5.0
    probe_timeout_s: float = 2.0
    probe_miss_budget: int = 3
    #: Per-worker crash-loop breaker: this many crashes inside the window
    #: ejects the worker's ring slot and degrades ``/healthz``.
    breaker_threshold: int = 5
    breaker_window_s: float = 30.0
    #: Respawn backoff: ``base * 2**(recent_crashes-1)`` capped at max.
    backoff_base_s: float = 0.1
    backoff_max_s: float = 5.0
    #: Autoscaler thresholds (see :class:`~repro.serve.control.AutoscalerPolicy`).
    scale_up_depth: int = 4
    scale_up_wait_s: float = 0.5
    scale_up_cooldown_s: float = 1.0
    scale_down_cooldown_s: float = 5.0
    scale_down_idle_ticks: int = 8
    #: How long a retiring/replaced worker may finish in-flight ops.
    drain_timeout_s: float = 10.0
    #: Golden-corpus trajectories the rollout canary must match.
    canary_count: int = 5
    #: Control-journal JSONL path (falls back to ``$REPRO_CLUSTER_JOURNAL``;
    #: ``None`` keeps the journal in memory only).
    journal_path: str | None = None
    # ---- worker transport ----------------------------------------------
    #: ``"socketpair"`` (inherited fd, the default) or ``"tcp"`` — workers
    #: dial back to a gateway frame listener with a generation-fenced
    #: handshake (:mod:`repro.serve.transport`), so a stale worker from a
    #: superseded fork can never serve after its replacement checked in.
    worker_transport: str = "socketpair"
    worker_listen_host: str = "127.0.0.1"
    #: How long the gateway waits for a freshly forked TCP worker to dial
    #: back and complete its handshake before declaring the fork dead.
    worker_connect_timeout_s: float = 15.0
    #: TCP-worker idle read timeout: a worker that hears nothing (not
    #: even a probe ping) for this long assumes a half-open gateway link
    #: and exits, instead of pinning resources forever.
    worker_idle_timeout_s: float = 120.0
    # ---- federation -----------------------------------------------------
    #: A :class:`repro.serve.federation.FederationConfig` joining this
    #: gateway to peer gateways on other hosts; ``None`` = standalone.
    federation: object | None = None
    extra_metrics: dict = field(default_factory=dict)


@dataclass(slots=True)
class _SessionRecord:
    """Gateway-side truth about one streaming session."""

    session_id: str
    region: str
    lag: int
    context_window: int
    worker_name: str
    generation: int
    journal: list[dict] = field(default_factory=list)
    last_touched: float = 0.0
    #: Federation fencing token: bumped each time a replica gateway
    #: adopts the session, so a superseded owner's ops are rejectable.
    fence: int = 0
    #: Highest client ``seq`` accepted (idempotent feed retries) and the
    #: state returned for it (replayed verbatim on a duplicate).
    last_seq: int = -1
    last_state: dict | None = None
    #: Whether the replica peer holds the full journal (federation).
    replica_synced: bool = False
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


@dataclass(slots=True)
class _ABRecord:
    """One live A/B test in the cluster: staged shard + its worker.

    The challenger generation stays *staged* (never committed) for the
    whole test: it is served by one dedicated worker forked against a
    staged registry view, held outside the handles map and the ring so
    neither the supervisor, the autoscaler, nor session routing ever
    see it.  ``promote`` commits the shard and runs the normal fleet
    swap; ``abort`` unlinks it with the champion never disturbed.
    """

    region: str
    state: object  # ABState
    staged: object  # LoadedShard
    handle: "_WorkerHandle"


class SessionFenced(Exception):
    """A federated session op lost a fencing race (HTTP 409).

    Raised when this gateway's fence for a session turns out to be stale
    — a replica peer adopted the session while this gateway was
    partitioned or stopped.  The local record is already dropped by the
    time this propagates; the adopted copy is the only one that commits.
    """


class _HttpError(Exception):
    """Internal: carry status + payload up to the HTTP dispatcher."""

    def __init__(
        self, status: int, message: str, headers: dict | None = None, extra: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.extra = extra or {}


class _WorkerOpError(Exception):
    """A structured error slot returned by a worker for a whole op."""

    def __init__(self, payload: dict) -> None:
        super().__init__(payload.get("message", "worker error"))
        self.code = payload.get("code", "internal_error")
        self.status = int(payload.get("status", 500))
        self.payload = payload


class _ResponseCache:
    """LRU cache of encoded ``/v1/match`` result slots."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: dict) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (a new generation was committed); keep stats."""
        self._entries.clear()

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


# =====================================================================
# worker process
# =====================================================================
def _process_memory() -> dict:
    """This process's memory split (kB) from ``/proc`` (Linux).

    ``private_kb`` approximates USS — the pages this worker uniquely
    owns.  With artifacts in shared memory it stays near-constant as the
    fleet grows; that is the number the benchmark reports as proof the
    artifacts are loaded once, not per-process.
    """
    fields = {"rss_kb": 0, "private_kb": 0, "shared_kb": 0}
    wanted = {
        "Rss": "rss_kb",
        "Private_Clean": "private_kb",
        "Private_Dirty": "private_kb",
        "Shared_Clean": "shared_kb",
        "Shared_Dirty": "shared_kb",
    }
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:  # pragma: no cover - non-Linux
        return fields
    for line in text.splitlines():
        key, _, rest = line.partition(":")
        target = wanted.get(key.strip())
        if target is None:
            continue
        parts = rest.split()
        if parts and parts[0].isdigit():
            fields[target] += int(parts[0])
    return fields


def _error_payload(error: BaseException) -> dict:
    """Map an exception onto the wire ``{code, message, status}`` form."""
    if isinstance(error, ProtocolError):
        return {"code": "protocol_error", "message": str(error), "status": 400}
    if isinstance(error, UnknownSessionError):
        return {
            "code": "unknown_session",
            "message": f"unknown session {error.args[0]!r}",
            "status": 404,
        }
    if isinstance(error, SessionLimitError):
        return {"code": "session_limit", "message": str(error), "status": 429}
    if isinstance(error, ReproError):
        return {
            "code": error.code,
            "message": str(error),
            "status": error.http_status,
        }
    if isinstance(error, ValueError):
        return {"code": "protocol_error", "message": str(error), "status": 400}
    return {"code": "internal_error", "message": f"internal error: {error}", "status": 500}


class _WorkerRuntime:
    """Everything one worker process keeps between operations."""

    def __init__(self, registry: ShardRegistry, options: dict) -> None:
        self.options = options
        self.registry = registry
        self.matched_total = 0
        self._matchers = {}
        self._packs = {}
        self._managers: dict[str, SessionManager] = {}
        # Attach every region up front: startup is the cheap moment to
        # pay mapping costs, and a worker that cannot attach must die
        # *before* it is offered traffic.
        for region in registry.regions:
            matcher, pack = registry.attach_matcher(region)
            self._matchers[region] = matcher
            self._packs[region] = pack

    def _matcher(self, region: str):
        try:
            return self._matchers[region]
        except KeyError:
            raise UnknownRegion(f"region {region!r} is not served here") from None

    def _manager(self, region: str) -> SessionManager:
        manager = self._managers.get(region)
        if manager is None:
            manager = SessionManager(
                self._matcher(region),
                default_lag=self.options["default_lag"],
                default_context_window=self.options["default_context_window"],
                max_sessions=self.options["max_sessions"],
                # The gateway is the authority on session lifetime; the
                # worker-side TTL is a backstop against orphaned state.
                ttl_s=self.options["session_ttl_s"] * 4.0,
            )
            self._managers[region] = manager
        return manager

    # --------------------------------------------------------------- ops
    def handle(self, message: dict) -> dict:
        op = message.get("op")
        try:
            faults.fire("cluster.op", op=op, worker=self.options.get("name"))
            # Deadline propagation: the gateway stamps ops with the
            # client's absolute CLOCK_MONOTONIC deadline (system-wide on
            # Linux, so fork children share the clock).  Work whose
            # caller has already given up is shed here, before any
            # matching runs.
            deadline = message.get("deadline")
            if isinstance(deadline, (int, float)) and time.monotonic() >= float(deadline):
                raise DeadlineExceeded(
                    f"deadline expired before the {op!r} op could run"
                )
            handler = getattr(self, "_op_" + str(op).replace(".", "_"), None)
            if handler is None:
                raise ProtocolError(f"unknown ipc op {op!r}")
            result = handler(message)
            return {"id": message.get("id"), "ok": True, **result}
        except Exception as error:  # noqa: BLE001 - a worker must not die on input
            return {"id": message.get("id"), "ok": False, "error": _error_payload(error)}

    def _op_match(self, message: dict) -> dict:
        matcher = self._matcher(message.get("region", DEFAULT_REGION))
        raw = message.get("trajectories")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("expected 'trajectories' (list of point lists)")
        trajectories = [
            protocol.decode_trajectory(item, trajectory_id=i, context=f"trajectories[{i}]")
            for i, item in enumerate(raw)
        ]
        for i, trajectory in enumerate(trajectories):
            matcher.validate_trajectory(trajectory, context=f"trajectories[{i}]")
        slots = matcher.match_many(trajectories, return_errors=True)
        results: list[dict] = []
        matched = degraded = failed = 0
        for slot in slots:
            if isinstance(slot, MatchError):
                failed += 1
                results.append(
                    {
                        "ok": False,
                        "error": {
                            **slot.to_payload(),
                            "status": slot.http_status,
                        },
                    }
                )
            else:
                matched += 1
                if getattr(slot, "provenance", "lhmm") != "lhmm":
                    degraded += 1
                results.append({"ok": True, "result": protocol.encode_match_result(slot)})
        self.matched_total += matched
        return {
            "results": results,
            "matched": matched,
            "degraded": degraded,
            "failed": failed,
        }

    def _op_session_open(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        session = self._manager(region).create(
            lag=message.get("lag"),
            context_window=message.get("context_window"),
            session_id=message["session_id"],
        )
        return {
            "session_id": session.session_id,
            "lag": session.decoder.lag,
            "context_window": session.decoder.context_window,
        }

    def _op_session_feed(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        points = protocol.decode_points(message.get("points"), "points")
        state = self._manager(region).feed(message["session_id"], points)
        return {"state": state}

    def _op_session_close(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        final = self._manager(region).close(message["session_id"])
        return {"final": final}

    def _op_stats(self, message: dict) -> dict:
        return {
            "memory": _process_memory(),
            "sessions": {
                region: manager.stats() for region, manager in self._managers.items()
            },
            "matched_total": self.matched_total,
        }

    def _op_ping(self, message: dict) -> dict:
        return {"pong": True}

    def _op_canary(self, message: dict) -> dict:
        """Golden-corpus smoke check of this worker's attached artifacts.

        Run by the rollout's throwaway probe worker, which is the only
        process attached to a *staged* generation: a non-empty problem
        list vetoes the rollout before any serving worker is touched.
        """
        from repro.testing.golden import canary_trajectories, run_canary

        region = message.get("region", DEFAULT_REGION)
        count = message.get("count", 5)
        if isinstance(count, bool) or not isinstance(count, int) or count < 1:
            raise ProtocolError("field 'count' must be a positive integer")
        matcher = self._matcher(region)
        shard = self.registry.shard(region)
        # The one shared canary-set definition (repro.testing.golden):
        # regenerating the corpus or re-cutting the dataset can never
        # desync this probe from the threaded server's reload gate.
        trajectories = canary_trajectories(shard.dataset, count)
        return {
            "problems": run_canary(matcher, trajectories),
            "checked": len(trajectories),
        }

    def _op_shutdown(self, message: dict) -> dict:
        finished = {}
        for manager in self._managers.values():
            finished.update(manager.close_all())
        return {"closed_sessions": len(finished)}


def _drop_inherited(inherited_socks: tuple) -> None:
    """Close fork-inherited gateway-side sockets (see ``_worker_main``).

    TCP-transport siblings are ``asyncio.trsock.TransportSocket`` views
    (no ``close()`` since 3.11) — close those by file descriptor.
    """
    for stale in inherited_socks:
        try:
            stale.close()
        except OSError:  # pragma: no cover - already closed
            pass
        except AttributeError:
            try:
                os.close(stale.fileno())
            except (OSError, ValueError):  # pragma: no cover - already closed
                pass


def _worker_signals() -> None:
    """Detach from the gateway's signal fate (see ``_worker_main``)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        signal.signal(signal.SIGHUP, signal.SIG_IGN)
    except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
        pass


def _worker_loop(sock: socket.socket, registry: ShardRegistry, options: dict) -> int:
    """The worker's request loop over an established socket; exit code."""
    idle_timeout = options.get("idle_timeout_s")
    try:
        runtime = _WorkerRuntime(registry, options)
        while True:
            message = ipc.recv_message(sock, timeout=idle_timeout)
            if message is None:
                break
            ipc.send_message(sock, runtime.handle(message))
            if message.get("op") == "shutdown":
                break
    except TimeoutError:
        # Half-open gateway link (TCP only): nothing — not even a probe
        # ping — arrived within the idle window.  Exit; respawn machinery
        # on a live gateway replaces us, a dead gateway needs no workers.
        return 1
    except (ipc.IpcError, OSError, BrokenPipeError):  # gateway went away
        return 1
    except Exception:  # pragma: no cover - startup failure (bad artifact)
        return 2
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
    return 0


def _worker_main(
    sock: socket.socket,
    registry: ShardRegistry,
    options: dict,
    inherited_socks: tuple = (),
) -> None:
    """Entry point of one forked matcher worker (blocking loop)."""
    # Drop fork-inherited copies of the *gateway-side* IPC sockets — our
    # own and every sibling's.  Holding them would mean no worker ever
    # reads EOF after the gateway is SIGKILLed (each keeps the others'
    # write ends alive), leaving an orphan fleet pinning the janitor
    # pipe and therefore the shared segments.
    _drop_inherited(inherited_socks)
    # The gateway's signals are not ours: a Ctrl+C against the CLI lands
    # on the whole process group, but workers must only exit on a
    # shutdown op (or gateway death = socket EOF) so drains stay orderly.
    _worker_signals()
    exit_code = _worker_loop(sock, registry, options)
    # Skip interpreter teardown: a fork child sharing the gateway's
    # state must not run its atexit hooks (resource tracker, etc.).
    os._exit(exit_code)


def _worker_main_tcp(
    address: tuple[str, int],
    hello: dict,
    registry: ShardRegistry,
    options: dict,
    inherited_socks: tuple = (),
    guard_fds: tuple = (),
) -> None:
    """Entry point of a TCP-transport worker: dial back, handshake, serve.

    Unlike the socketpair path the worker holds *no* inherited IPC fd:
    it connects to the gateway's worker frame listener and identifies
    itself with a generation-fenced hello ``{node, generation, token}``.
    A stale fork (its name already respawned under a newer generation)
    is rejected at handshake time and exits with code 3 — it can never
    serve a single op.  The worker also closes the fork-inherited
    janitor guard fd(s): with remote transport, segment cleanup keys on
    the gateway process alone (see :class:`repro.serve.shm.SegmentJanitor`).
    """
    from repro.serve import transport

    _drop_inherited(inherited_socks)
    for fd in guard_fds:
        try:
            os.close(fd)
        except OSError:  # pragma: no cover - already closed
            pass
    _worker_signals()
    try:
        sock, _ack = transport.dial_blocking(
            address[0],
            address[1],
            hello,
            deadline_s=float(options.get("connect_timeout_s", 15.0)),
        )
    except transport.HandshakeRejected:
        os._exit(3)  # fenced: a newer generation of this name checked in
    except Exception:  # noqa: BLE001 - gateway gone before we dialed
        os._exit(1)
    exit_code = _worker_loop(sock, registry, options)
    os._exit(exit_code)


# =====================================================================
# gateway-side worker handle
# =====================================================================
class _WorkerHandle:
    """One worker process as seen from the gateway's event loop."""

    def __init__(
        self,
        name: str,
        generation: int,
        process,
        sock: socket.socket | None,
        token: str = "",
    ) -> None:
        self.name = name
        self.generation = generation
        self.process = process
        #: Gateway-side socketpair end; ``None`` for TCP-transport
        #: workers, which dial back instead of inheriting an fd.
        self.sock = sock
        #: Handshake fencing token (TCP transport): the dial-back hello
        #: must present the exact (generation, token) this fork was given.
        self.token = token
        self.alive = True
        self.requests_total = 0
        self.inflight = 0
        #: Scale-down/rollout drain flag: no new work routes here.
        self.retiring = False
        #: Consecutive unanswered health probes (supervision loop).
        self.probe_misses = 0
        self.next_probe_at = time.monotonic()
        self.probe_task: asyncio.Task | None = None
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock: asyncio.Lock | None = None
        self._reader_task: asyncio.Task | None = None

    async def connect(self, on_down) -> None:
        """Wrap the socketpair end in asyncio streams; start the reader."""
        reader, writer = await asyncio.open_connection(sock=self.sock)
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop(reader, on_down))

    def adopt_streams(self, reader, writer, on_down) -> None:
        """Take over an accepted dial-back connection (TCP transport).

        The frame listener already read and answered the worker's hello;
        from here the streams behave exactly like a connected socketpair.
        ``self.sock`` is set to the underlying socket so sibling-fd
        bookkeeping (``_fork_worker``'s inherited list) keeps working.
        """
        self.sock = writer.get_extra_info("socket")
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop(reader, on_down))

    async def _read_loop(self, reader: asyncio.StreamReader, on_down) -> None:
        try:
            while True:
                message = await ipc.read_message(reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ipc.IpcError, ConnectionResetError, OSError):
            pass
        finally:
            self.alive = False
            self.fail_pending(WorkerCrash(f"worker {self.name} connection lost"))
            await on_down(self)

    def fail_pending(self, error: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def call(self, op: dict, timeout: float) -> dict:
        """Send one op and await its response (raises on worker death)."""
        if not self.alive or self._writer is None:
            raise WorkerCrash(f"worker {self.name} is not available")
        message_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[message_id] = future
        self.requests_total += 1
        self.inflight += 1
        try:
            async with self._write_lock:
                await ipc.write_message(self._writer, {**op, "id": message_id})
            response = await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError) as error:
            self._pending.pop(message_id, None)
            raise WorkerCrash(
                f"worker {self.name} did not answer a {op.get('op')!r} op ({error!r})"
            ) from error
        finally:
            self.inflight -= 1
            self._pending.pop(message_id, None)
        if not response.get("ok", False):
            raise _WorkerOpError(response.get("error") or {})
        return response

    def reap(self, timeout: float = 5.0) -> None:
        """Blocking: join the process, escalating to terminate/kill."""
        process = self.process
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(2.0)
        if process.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            process.kill()
            process.join(2.0)

    def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()


# =====================================================================
# the gateway
# =====================================================================
_ROUTES = (
    ("POST", re.compile(r"^/v1/sessions$"), "create_session"),
    ("POST", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)/points$"), "feed_session"),
    ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)$"), "close_session"),
    ("POST", re.compile(r"^/v1/match$"), "match"),
    ("POST", re.compile(r"^/v1/admin/rollout$"), "rollout"),
    ("POST", re.compile(r"^/v1/admin/ab$"), "ab_start"),
    ("POST", re.compile(r"^/v1/admin/ab/promote$"), "ab_promote"),
    ("POST", re.compile(r"^/v1/admin/ab/abort$"), "ab_abort"),
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
)


def _canonical_key(region: str, item) -> tuple:
    """Cache/singleflight key: region + canonical JSON of one trajectory."""
    return (region, json.dumps(item, sort_keys=True, separators=(",", ":")))


class ClusterServer:
    """The sharded serving cluster (gateway + worker fleet).

    Args:
        registry: A *published* :class:`ShardRegistry`.  The server owns
            it: shutdown unlinks the shared segments.
        config: Fleet/gateway tunables; ``port=0`` binds an ephemeral
            port (read :attr:`port` after :meth:`start`).

    Use as a context manager, or :meth:`start` / :meth:`shutdown`.  The
    event loop runs on a dedicated background thread; :meth:`start`
    forks the initial workers *before* that thread exists, which keeps
    the first fork single-threaded (respawns later fork from the loop
    thread — the child only ever runs :func:`_worker_main` and execs
    nothing, so that is safe).
    """

    def __init__(self, registry: ShardRegistry, config: ClusterConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ClusterConfig()
        if self.config.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._min_workers = self.config.min_workers or self.config.num_workers
        self._max_workers = self.config.max_workers or self.config.num_workers
        if not (1 <= self._min_workers <= self.config.num_workers <= self._max_workers):
            raise ValueError(
                f"need 1 <= min_workers ({self._min_workers}) <= num_workers "
                f"({self.config.num_workers}) <= max_workers ({self._max_workers})"
            )
        self.metrics = ServeMetrics()
        self._cache = _ResponseCache(self.config.cache_size)
        self._ring = ConsistentHashRing(replicas=self.config.ring_replicas)
        self._handles: dict[str, _WorkerHandle] = {}
        self._records: dict[str, _SessionRecord] = {}
        self._connections: set[asyncio.Task] = set()
        self._inflight_keys: dict[tuple, asyncio.Future] = {}
        self._session_ids = itertools.count()
        self._respawns_used = 0
        self._draining = False
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._bound: tuple[str, int] | None = None
        self._start_error: BaseException | None = None
        self._mp_context = None
        # ---- control plane ---------------------------------------------
        self._gate = AdmissionGate(self.config.max_inflight, self.config.queue_limit)
        self._journal = ControlJournal(
            self.config.journal_path or os.environ.get("REPRO_CLUSTER_JOURNAL") or None
        )
        self._crash_tracker = CrashTracker(
            threshold=self.config.breaker_threshold,
            window_s=self.config.breaker_window_s,
        )
        self._policy = AutoscalerPolicy(
            min_workers=self._min_workers,
            max_workers=self._max_workers,
            high_water_depth=self.config.scale_up_depth,
            high_water_wait_s=self.config.scale_up_wait_s,
            up_cooldown_s=self.config.scale_up_cooldown_s,
            down_cooldown_s=self.config.scale_down_cooldown_s,
            idle_ticks_needed=self.config.scale_down_idle_ticks,
        )
        self._worker_seq = itertools.count(self.config.num_workers)
        self._workers_target = self.config.num_workers
        self._control_task: asyncio.Task | None = None
        self._rollout_lock = asyncio.Lock()
        #: Live A/B tests, keyed by region (see :class:`_ABRecord`).
        self._ab: dict[str, _ABRecord] = {}
        # ---- worker transport ------------------------------------------
        if self.config.worker_transport not in ("socketpair", "tcp"):
            raise ValueError(
                "worker_transport must be 'socketpair' or 'tcp', got "
                f"{self.config.worker_transport!r}"
            )
        #: Pre-bound listening socket for TCP worker dial-back (bound in
        #: :meth:`start`, *before* the first fork — the ephemeral port
        #: must be known when the worker's hello address is built).
        self._worker_listen_sock: socket.socket | None = None
        self._worker_listener = None  # transport.FrameListener
        #: name -> (generation, token) the next dial-back hello must
        #: present; anything else is a stale fork and is fenced out.
        self._worker_expect: dict[str, tuple[int, str]] = {}
        #: name -> future resolved with (reader, writer) at check-in.
        self._worker_checkin: dict[str, asyncio.Future] = {}
        # ---- federation -------------------------------------------------
        if self.config.federation is not None:
            from repro.serve.federation import FederationRuntime

            self._fed = FederationRuntime(self, self.config.federation)
        else:
            self._fed = None

    # ------------------------------------------------------------- lifecycle
    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral port)."""
        return self._bound[1] if self._bound else self.config.port

    @property
    def address(self) -> str:
        """``http://host:port`` of the running gateway."""
        return f"http://{self.host}:{self.port}"

    @property
    def min_workers(self) -> int:
        """The autoscaler's floor (defaults to ``num_workers``)."""
        return self._min_workers

    @property
    def max_workers(self) -> int:
        """The autoscaler's ceiling (defaults to ``num_workers``)."""
        return self._max_workers

    def _fork_worker(
        self,
        name: str,
        generation: int,
        registry: ShardRegistry | None = None,
        register: bool = True,
    ) -> _WorkerHandle:
        """Fork one worker; with ``register`` it joins the handles + ring.

        ``register=False`` keeps the worker private (rollout canary
        probes, and replacements that only join once they answer a ping).
        ``registry`` overrides the snapshot the child inherits (the
        canary probe forks against a staged view).
        """
        import multiprocessing

        if self._mp_context is None:
            self._mp_context = multiprocessing.get_context("fork")
        options = {
            "name": name,
            "default_lag": self.config.default_lag,
            "default_context_window": self.config.default_context_window,
            "max_sessions": self.config.max_sessions,
            "session_ttl_s": self.config.session_ttl_s,
        }
        # The forked child inherits every gateway-side IPC fd open right
        # now — each sibling's socketpair end or accepted dial-back
        # connection (and, on the socketpair path, its own parent end).
        # It must close them all or gateway death never EOFs any worker's
        # socket (the fleet would keep itself alive, see ``_worker_main``).
        siblings = tuple(
            h.sock
            for h in (*self._handles.values(), *(r.handle for r in self._ab.values()))
            if h.sock is not None
        )
        if self.config.worker_transport == "tcp":
            # Dial-back transport: the child gets no IPC fd at all — it
            # connects to the worker listener and presents a one-time
            # fenced hello.  It also drops the janitor guard fd(s): with
            # remote transport, segment cleanup keys on the gateway alone.
            token = os.urandom(8).hex()
            self._worker_expect[name] = (generation, token)
            stale = self._worker_checkin.pop(name, None)
            if stale is not None and not stale.done():
                stale.cancel()
            options["connect_timeout_s"] = self.config.worker_connect_timeout_s
            options["idle_timeout_s"] = self.config.worker_idle_timeout_s
            assert self._worker_listen_sock is not None
            address = self._worker_listen_sock.getsockname()[:2]
            hello = {
                "node": name,
                "generation": generation,
                "token": token,
                "role": "worker",
            }
            process = self._mp_context.Process(
                target=_worker_main_tcp,
                args=(
                    address,
                    hello,
                    registry if registry is not None else self.registry,
                    options,
                    (self._worker_listen_sock, *siblings),
                    self.registry.guard_fds(),
                ),
                name=f"repro-cluster-{name}",
                daemon=True,
            )
            process.start()
            handle = _WorkerHandle(name, generation, process, None, token=token)
        else:
            parent_sock, child_sock = socket.socketpair()
            process = self._mp_context.Process(
                target=_worker_main,
                args=(
                    child_sock,
                    registry if registry is not None else self.registry,
                    options,
                    (parent_sock, *siblings),
                ),
                name=f"repro-cluster-{name}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            parent_sock.setblocking(False)
            handle = _WorkerHandle(name, generation, process, parent_sock)
        if register:
            self._handles[name] = handle
            self._ring.add(name)
        return handle

    def _cleanup_at_exit(self) -> None:
        """atexit backstop: unlink segments if :meth:`shutdown` never ran.

        Idempotent (``ShardRegistry.close`` guards itself), so the normal
        shutdown path and this hook can both fire.  A SIGKILLed gateway
        runs neither — that hole is covered by the
        :class:`~repro.serve.shm.SegmentJanitor` forked at publish time.
        """
        try:
            self.registry.close(unlink=True)
        except Exception:  # noqa: BLE001 - interpreter is tearing down
            pass

    def start(self) -> "ClusterServer":
        """Fork the fleet, bind the gateway, serve on a background thread."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        atexit.register(self._cleanup_at_exit)
        if self.config.worker_transport == "tcp":
            # Bind the dial-back listener *before* the first fork: the
            # workers' hello address (with its resolved ephemeral port)
            # must exist when their Process args are built.  The asyncio
            # FrameListener adopts this already-bound socket later.
            listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listen.bind((self.config.worker_listen_host, 0))
            listen.listen(128)
            listen.setblocking(False)
            self._worker_listen_sock = listen
        for i in range(self.config.num_workers):
            self._fork_worker(f"w{i}", generation=1)
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="repro-cluster-gateway", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=30.0)
        if self._start_error is not None:
            raise self._start_error
        if self._bound is None:
            raise RuntimeError("gateway failed to start within 30s")
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._async_start())
        except BaseException as error:  # surface bind/connect failures
            self._start_error = error
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _async_start(self) -> None:
        if self._worker_listen_sock is not None:
            from repro.serve.transport import FrameListener, TransportConfig

            self._worker_listener = FrameListener(
                self._on_worker_hello,
                config=TransportConfig(
                    handshake_timeout_s=self.config.worker_connect_timeout_s
                ),
            )
            await self._worker_listener.start(sock=self._worker_listen_sock)
        for handle in self._handles.values():
            await self._connect_worker(handle, self._on_worker_down)
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._bound = self._server.sockets[0].getsockname()[:2]
        if self._fed is not None:
            await self._fed.start()
        self._control_task = asyncio.create_task(self._control_loop())
        self._journal.record(
            "cluster_started",
            workers=self.config.num_workers,
            min_workers=self._min_workers,
            max_workers=self._max_workers,
        )

    async def _on_worker_hello(self, payload: dict, reader, writer):
        """Frame-listener callback: a TCP worker dialed back with a hello.

        The handshake is the fencing point: only the exact
        ``(generation, token)`` pair minted by the *latest* fork of a
        name is admitted.  A stale fork — e.g. one that was wedged while
        its replacement was forked and checked in — is rejected here and
        exits before it can serve a single op.
        """
        name = payload.get("node")
        expected = self._worker_expect.get(name) if isinstance(name, str) else None
        presented = (payload.get("generation"), payload.get("token"))
        if expected is None or presented != expected:
            self.metrics.increment("workers_fenced_total")
            self._journal.record(
                "worker_fenced",
                worker=name,
                generation=payload.get("generation"),
            )
            return (
                "reject",
                {
                    "ok": False,
                    "error": {
                        "code": "stale_worker",
                        "message": f"worker {name!r} handshake is stale "
                        "(a newer generation was forked)",
                    },
                },
            )
        future = self._worker_checkin.get(name)
        if future is None or future.done():
            future = asyncio.get_running_loop().create_future()
            self._worker_checkin[name] = future
        future.set_result((reader, writer))
        # "detach": the listener hands the streams over; the worker
        # handle adopts them in _connect_worker.
        return ("detach", {"ok": True, "node": name})

    async def _connect_worker(self, handle: _WorkerHandle, on_down) -> None:
        """Attach a freshly forked worker's IPC streams to its handle.

        Socketpair transport wraps the inherited fd; TCP transport waits
        (bounded) for the worker's fenced dial-back and adopts the
        accepted streams.  Raises :class:`WorkerCrash` when a TCP worker
        never checks in — callers treat that like any other fork death.
        """
        if handle.sock is not None:
            await handle.connect(on_down)
            return
        future = self._worker_checkin.get(handle.name)
        if future is None or (future.done() and future.cancelled()):
            future = asyncio.get_running_loop().create_future()
            self._worker_checkin[handle.name] = future
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.shield(future), timeout=self.config.worker_connect_timeout_s
            )
        except asyncio.TimeoutError as error:
            handle.alive = False
            raise WorkerCrash(
                f"worker {handle.name} never dialed back within "
                f"{self.config.worker_connect_timeout_s}s"
            ) from error
        except asyncio.CancelledError:
            if future.cancelled():  # superseded by a newer fork of the name
                handle.alive = False
                raise WorkerCrash(
                    f"worker {handle.name} check-in superseded by a newer fork"
                ) from None
            raise
        finally:
            if self._worker_checkin.get(handle.name) is future:
                self._worker_checkin.pop(handle.name, None)
        handle.adopt_streams(reader, writer, on_down)

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown` (CLI mode)."""
        if self._thread is None:
            raise RuntimeError("call start() first")
        while self._thread.is_alive():
            self._thread.join(timeout=0.5)

    def shutdown(self, drain: bool = True) -> dict:
        """Graceful stop: 503 new work, close sessions, stop the fleet.

        Returns ``{"sessions": {id: path}}`` with the paths of sessions
        finalised during the drain, mirroring the single-process server.
        """
        if self._loop is None or self._thread is None or not self._thread.is_alive():
            if self._worker_listen_sock is not None:
                try:
                    self._worker_listen_sock.close()
                except OSError:  # pragma: no cover
                    pass
                self._worker_listen_sock = None
            self.registry.close(unlink=True)
            self._journal.close()
            atexit.unregister(self._cleanup_at_exit)
            return {"sessions": {}, "drained": drain}
        future = asyncio.run_coroutine_threadsafe(self._async_shutdown(drain), self._loop)
        try:
            summary = future.result(timeout=self.config.shutdown_timeout_s)
        except Exception:  # pragma: no cover - drain stuck; force down
            summary = {"sessions": {}, "drained": False}
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        for handle in self._handles.values():
            handle.reap()
        for record in self._ab.values():
            record.handle.reap()
        self.registry.close(unlink=True)
        self._journal.record("cluster_stopped")
        self._journal.close()
        atexit.unregister(self._cleanup_at_exit)
        return summary

    async def _async_shutdown(self, drain: bool) -> dict:
        self._draining = True
        if self._fed is not None:
            try:
                await self._fed.stop()
            except Exception:  # noqa: BLE001 - peers may already be gone
                pass
        if self._control_task is not None:
            self._control_task.cancel()
            await asyncio.gather(self._control_task, return_exceptions=True)
            self._control_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections would otherwise outlive the loop;
        # in-flight requests get a short grace period first.
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=2.0)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        finished: dict[str, list] = {}
        if drain:
            for record in list(self._records.values()):
                try:
                    final = await self._session_op(record, "session.close", {})
                    finished[record.session_id] = final["final"]["path"]
                except Exception:  # noqa: BLE001 - best effort during drain
                    pass
        self._records.clear()
        ab_handles = [record.handle for record in self._ab.values()]
        for handle in list(self._handles.values()) + ab_handles:
            if not handle.alive:
                continue
            handle.retiring = True
            try:
                await handle.call({"op": "shutdown"}, timeout=5.0)
            except Exception:  # noqa: BLE001
                pass
            handle.close()
        if self._worker_listener is not None:
            await self._worker_listener.stop()
            self._worker_listener = None
            self._worker_listen_sock = None
        return {"sessions": finished, "drained": drain}

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ----------------------------------------------------------- supervision
    async def _on_worker_down(self, handle: _WorkerHandle) -> None:
        """Reader-loop callback: a worker's socket went away.

        The full lifecycle decision lives here: a *retiring* worker's
        death is the expected end of a drain; otherwise the crash-loop
        breaker is consulted first (a flapping worker loses its ring slot
        for good), then the global respawn budget (PR 3 semantics), and
        only then is a replacement forked — after an exponential backoff
        sized by the worker's recent crash count so a fast crash loop
        cannot saturate the gateway with forks.
        """
        if self._handles.get(handle.name) is not handle:
            return  # already swapped out (rollout) or retired
        if handle.retiring:
            self._handles.pop(handle.name, None)
            await asyncio.get_running_loop().run_in_executor(None, handle.reap)
            return
        if self._draining:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.reap)
        self.metrics.increment("worker_deaths_total")
        self._journal.record(
            "worker_down", worker=handle.name, generation=handle.generation
        )
        if self._crash_tracker.record(handle.name):
            # Breaker open: eject the ring slot instead of cycling the
            # fork-crash loop forever; /healthz degrades until an
            # operator restarts the deployment.
            self._ring.remove(handle.name)
            self._handles.pop(handle.name, None)
            self.metrics.increment("breakers_open_total")
            self._journal.record(
                "breaker_open",
                worker=handle.name,
                crashes=self._crash_tracker.recent(handle.name),
                window_s=self.config.breaker_window_s,
            )
            return
        if self._respawns_used >= self.config.respawn_limit:
            # Budget exhausted: the name leaves the ring for good and its
            # sessions re-route (~1/N of all sessions move — consistent
            # hashing keeps the rest where they were).
            self._ring.remove(handle.name)
            self._handles.pop(handle.name, None)
            self._journal.record(
                "worker_ejected", worker=handle.name, reason="respawn_budget"
            )
            return
        self._respawns_used += 1
        recent = self._crash_tracker.recent(handle.name)
        backoff = min(
            self.config.backoff_max_s,
            self.config.backoff_base_s * (2 ** max(0, recent - 1)),
        )
        if backoff > 0:
            await asyncio.sleep(backoff)
        if self._draining or self._handles.get(handle.name) is not handle:
            return
        replacement = self._fork_worker(
            handle.name, handle.generation + 1, register=False
        )
        try:
            await self._connect_worker(replacement, self._on_worker_down)
        except WorkerCrash:
            replacement.alive = False  # restart the cycle below
        self._handles[handle.name] = replacement
        self._ring.add(handle.name)  # no-op unless something removed it
        self.metrics.increment("worker_respawns_total")
        self._journal.record(
            "worker_respawn",
            worker=handle.name,
            generation=replacement.generation,
            backoff_s=round(backoff, 3),
        )
        if not replacement.alive:  # died during connect: restart the cycle
            asyncio.create_task(self._on_worker_down(replacement))

    def _alive_handles(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.alive]

    def _serving_handles(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.alive and not h.retiring]

    def _pick_match_worker(self) -> _WorkerHandle:
        serving = self._serving_handles()
        if not serving:
            raise ClusterUnavailable("no live matcher workers")
        return min(serving, key=lambda h: (h.inflight, h.name))

    # ----------------------------------------------------------- control loop
    async def _control_loop(self) -> None:
        """The supervision tick: shed, probe, autoscale — forever."""
        interval = self.config.control_interval_s
        while not self._draining:
            await asyncio.sleep(interval)
            if self._draining:
                break
            try:
                self._gate.sweep()
                now = time.monotonic()
                self._schedule_probes(now)
                await self._autoscale_tick(now)
                self.metrics.set_gauge("admission_queue_depth", self._gate.depth)
                self.metrics.set_gauge("admission_inflight", self._gate.inflight)
                self.metrics.set_gauge("workers_alive", len(self._alive_handles()))
                self.metrics.set_gauge("workers_target", self._workers_target)
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception as error:  # noqa: BLE001 - the loop must survive
                self._journal.record("control_error", error=repr(error))

    def _schedule_probes(self, now: float) -> None:
        for handle in list(self._handles.values()):
            if not handle.alive or handle.retiring:
                continue
            if handle.probe_task is not None and not handle.probe_task.done():
                continue
            if now < handle.next_probe_at:
                continue
            handle.next_probe_at = now + self.config.probe_interval_s
            handle.probe_task = asyncio.create_task(self._probe_worker(handle))

    async def _probe_worker(self, handle: _WorkerHandle) -> None:
        """One health probe; escalates a stall (alive, unresponsive) to SIGKILL.

        Killing the stalled process turns "wedged" into "dead", and the
        normal :meth:`_on_worker_down` path — respawn with backoff,
        breaker, session replay — takes over.  One recovery path, not two.
        """
        try:
            await handle.call({"op": "ping"}, timeout=self.config.probe_timeout_s)
            handle.probe_misses = 0
            return
        except WorkerCrash:
            if not handle.alive:
                return  # a real death; the reader loop is handling it
        except _WorkerOpError:
            handle.probe_misses = 0  # it answered, however oddly
            return
        handle.probe_misses += 1
        self._journal.record(
            "probe_miss", worker=handle.name, misses=handle.probe_misses
        )
        if (
            handle.probe_misses >= self.config.probe_miss_budget
            and handle.process.is_alive()
            and not handle.retiring
        ):
            self.metrics.increment("worker_stalls_total")
            self._journal.record(
                "worker_stall", worker=handle.name, misses=handle.probe_misses
            )
            try:
                handle.process.kill()
            except Exception:  # noqa: BLE001 - racing its own exit
                pass

    async def _autoscale_tick(self, now: float) -> None:
        if self._rollout_lock.locked():
            return  # never resize the fleet mid-rollout
        serving = self._serving_handles()
        decision = self._policy.decide(
            now,
            workers=len(serving),
            depth=self._gate.depth,
            p95_wait_s=self._gate.wait_window.percentile(95.0),
            inflight=self._gate.inflight,
        )
        if decision == "up":
            await self._scale_up()
        elif decision == "down":
            await self._scale_down(serving)

    async def _scale_up(self) -> None:
        name = f"w{next(self._worker_seq)}"
        self._journal.record(
            "scale_up",
            worker=name,
            depth=self._gate.depth,
            p95_wait_s=round(self._gate.wait_window.percentile(95.0), 4),
        )
        handle = self._fork_worker(name, generation=1, register=False)
        try:
            await self._connect_worker(handle, self._on_worker_down)
            await handle.call({"op": "ping"}, timeout=10.0)
        except (WorkerCrash, _WorkerOpError) as error:
            self._journal.record("scale_up_failed", worker=name, error=str(error))
            handle.close()
            await asyncio.get_running_loop().run_in_executor(None, handle.reap)
            return
        # Register only once it answers: the ring must never route to a
        # worker that cannot take the traffic yet.
        self._handles[name] = handle
        self._ring.add(name)
        self._workers_target += 1
        self.metrics.increment("scale_ups_total")

    async def _scale_down(self, serving: list[_WorkerHandle]) -> None:
        def _seq(handle: _WorkerHandle) -> int:
            try:
                return int(handle.name.lstrip("w"))
            except ValueError:  # pragma: no cover - non-standard name
                return -1

        victim = max(serving, key=_seq)
        victim.retiring = True
        self._ring.remove(victim.name)
        self._workers_target -= 1
        self._journal.record("scale_down", worker=victim.name)
        # Sessions the victim owned re-route (ring changed) and replay
        # deterministically on their new owners; in-flight ops finish.
        drain_deadline = time.monotonic() + self.config.drain_timeout_s
        while victim.inflight > 0 and time.monotonic() < drain_deadline:
            await asyncio.sleep(0.02)
        try:
            await victim.call({"op": "shutdown"}, timeout=5.0)
        except (WorkerCrash, _WorkerOpError):
            pass
        victim.close()
        await asyncio.get_running_loop().run_in_executor(None, victim.reap)
        if self._handles.get(victim.name) is victim:
            self._handles.pop(victim.name, None)
        self._crash_tracker.forget(victim.name)
        self.metrics.increment("scale_downs_total")
        self._journal.record("scale_down_done", worker=victim.name)

    # --------------------------------------------------------------- rollout
    async def _ignore_down(self, handle: _WorkerHandle) -> None:
        """on_down callback for throwaway probe workers: not supervised."""

    def rollout(self, region: str = DEFAULT_REGION, model: str | None = None) -> dict:
        """Thread-safe zero-downtime rollout (SIGHUP handler / tests).

        See :meth:`handle_rollout` for semantics; raises the same errors.
        """
        return self._run_on_loop(self._rollout_async(region, model))

    async def _stage_and_canary(
        self,
        region: str,
        model: str | None,
        weights: str | None = None,
        event: str = "rollout",
    ) -> tuple:
        """Stage a candidate generation and canary it on a probe worker.

        Shared by the rollout and A/B-start paths.  On success the
        candidate is left *staged* (caller commits or keeps serving it
        aside) and ``(staged_shard, canary_checked)`` returns; on any
        failure the staged segments are unlinked with the serving
        generation never touched, and the error propagates (wrapped in
        :class:`ModelReloadFailed` unless it already is one).
        """
        loop = asyncio.get_running_loop()
        # 1) Stage: load + validate the candidate into its own fresh
        # segment.  Artifact taxonomy errors propagate as-is (422/500
        # on the wire) and nothing was staged.
        try:
            staged = await loop.run_in_executor(
                None, self.registry.stage_model, region, model, weights
            )
        except BaseException as error:
            self.metrics.increment("rollout_failures_total")
            self._journal.record(
                f"{event}_rejected", region=region, error=str(error)
            )
            raise
        self._journal.record(
            f"{event}_staged",
            region=region,
            generation=staged.generation,
            segment=staged.pack.segment_name,
        )
        # 2) Canary: a throwaway probe worker forked against a staged
        # *view* of the registry smoke-checks the candidate.  No
        # serving worker is touched yet.
        try:
            view = self.registry.staged_view(region)
            probe = self._fork_worker(
                f"probe-{region}-g{staged.generation}",
                staged.generation,
                registry=view,
                register=False,
            )
            try:
                await self._connect_worker(probe, self._ignore_down)
                result = await probe.call(
                    {
                        "op": "canary",
                        "region": region,
                        "count": self.config.canary_count,
                    },
                    timeout=self.config.op_timeout_s,
                )
            finally:
                try:
                    await probe.call({"op": "shutdown"}, timeout=5.0)
                except (WorkerCrash, _WorkerOpError):
                    pass
                probe.close()
                await loop.run_in_executor(None, probe.reap)
            problems = result.get("problems") or []
            if problems:
                raise ModelReloadFailed(
                    f"candidate generation {staged.generation} for region "
                    f"{region!r} failed the canary ({len(problems)} "
                    "problem(s)): " + "; ".join(problems[:3])
                )
        except BaseException as error:
            # Rollback: unlink the staged segments; the serving
            # generation was never touched.
            await loop.run_in_executor(None, self.registry.abort_staged, region)
            self.metrics.increment("rollout_failures_total")
            self._journal.record(
                f"{event}_rolled_back",
                region=region,
                generation=staged.generation,
                error=str(error),
            )
            if isinstance(error, (ModelReloadFailed, asyncio.CancelledError)):
                raise
            raise ModelReloadFailed(
                f"canary probe for region {region!r} generation "
                f"{staged.generation} failed: {error}"
            ) from error
        return staged, result.get("checked", 0)

    async def _swap_fleet(self, event: str = "rollout") -> tuple[int, int]:
        """Swap every serving worker onto the committed generation.

        One worker at a time: fork a replacement, let it answer a ping,
        put it in the old worker's ring slot, drain the old worker's
        in-flight ops, shut it down.  Returns ``(swapped, failed)``; a
        worker whose replacement cannot start keeps serving its old
        (still-mapped) generation and is counted as failed.
        """
        loop = asyncio.get_running_loop()
        swapped = failed_swaps = 0
        for name in sorted(self._handles):
            old = self._handles.get(name)
            if old is None or not old.alive or old.retiring:
                continue
            try:
                replacement = self._fork_worker(
                    name, old.generation + 1, register=False
                )
                await self._connect_worker(replacement, self._on_worker_down)
                await replacement.call({"op": "ping"}, timeout=10.0)
            except (WorkerCrash, _WorkerOpError) as error:
                # The old worker keeps serving the old generation (its
                # mapping stays valid until retire() below — and even
                # that only unlinks the name, not live mappings).
                failed_swaps += 1
                self._journal.record(
                    f"{event}_swap_failed", worker=name, error=str(error)
                )
                continue
            self._handles[name] = replacement
            # Drain: let the old worker finish its in-flight ops; new
            # work is already routing to the replacement (same ring
            # slot, same name — sessions replay on generation drift).
            drain_deadline = time.monotonic() + self.config.drain_timeout_s
            while old.inflight > 0 and time.monotonic() < drain_deadline:
                await asyncio.sleep(0.02)
            try:
                await old.call({"op": "shutdown"}, timeout=5.0)
            except (WorkerCrash, _WorkerOpError):
                pass
            old.close()
            await loop.run_in_executor(None, old.reap)
            swapped += 1
            self._journal.record(
                f"{event}_swapped", worker=name, generation=replacement.generation
            )
        return swapped, failed_swaps

    async def _rollout_async(self, region: str, model: str | None = None) -> dict:
        if self._rollout_lock.locked():
            raise _HttpError(
                409,
                "a rollout is already in progress",
                extra={"code": "rollout_in_progress"},
            )
        if region in self._ab:
            raise _HttpError(
                409,
                f"an A/B test is live for region {region!r}; promote or "
                "abort it before rolling out",
                extra={"code": "ab_in_progress"},
            )
        async with self._rollout_lock:
            self._check_draining()
            self.registry.shard(region)  # 404 early on unknown regions
            loop = asyncio.get_running_loop()
            started = time.monotonic()
            self._journal.record(
                "rollout_start", region=region, model=model or "<configured>"
            )
            staged, checked = await self._stage_and_canary(region, model)
            # Commit, then swap the fleet one worker at a time.  New
            # forks (including respawns) now inherit the new generation.
            old_shard = self.registry.commit_staged(region)
            # Cached responses belong to the replaced generation now.
            self._cache.clear()
            self._journal.record(
                "rollout_committed", region=region, generation=staged.generation
            )
            swapped, failed_swaps = await self._swap_fleet()
            # Retire the replaced generation's segment.  Workers that
            # failed to swap keep their private mapping alive; the name
            # disappears so nothing new can attach.
            await loop.run_in_executor(None, self.registry.retire, old_shard)
            self.metrics.increment("rollouts_total")
            summary = {
                "region": region,
                "generation": staged.generation,
                "workers_swapped": swapped,
                "workers_failed": failed_swaps,
                "canary_checked": checked,
                "duration_s": round(time.monotonic() - started, 3),
            }
            self._journal.record("rollout_done", **summary)
            return summary

    # ------------------------------------------------------------ A/B testing
    def _run_on_loop(self, coro) -> dict:
        """Run a control-plane coroutine on the gateway loop (tests/CLI)."""
        if self._loop is None or self._thread is None or not self._thread.is_alive():
            coro.close()
            raise RuntimeError("cluster is not running")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def start_ab(
        self,
        region: str = DEFAULT_REGION,
        model: str | None = None,
        split: float = 0.1,
        weights: str | None = None,
    ) -> dict:
        """Thread-safe A/B start (tests / direct callers).

        See :meth:`handle_ab_start` for semantics; raises the same errors.
        """
        return self._run_on_loop(self._ab_start_async(region, model, split, weights))

    def promote_ab(self, region: str = DEFAULT_REGION) -> dict:
        """Thread-safe A/B promote; see :meth:`handle_ab_promote`."""
        return self._run_on_loop(self._ab_promote_async(region))

    def abort_ab(self, region: str = DEFAULT_REGION) -> dict:
        """Thread-safe A/B abort; see :meth:`handle_ab_abort`."""
        return self._run_on_loop(self._ab_abort_async(region))

    async def _on_ab_worker_down(self, handle: _WorkerHandle) -> None:
        """A challenger worker died: the champion absorbs its share.

        No respawn — a challenger that cannot stay up has failed its
        audition; the test stays live (counters keep their history) and
        routing falls back to the champion until promote/abort resolves.
        """
        if not handle.retiring:
            for record in self._ab.values():
                if record.handle is handle:
                    self.metrics.increment("ab_challenger_deaths_total")
                    self._journal.record(
                        "ab_challenger_down", region=record.region
                    )
                    break
        await asyncio.get_running_loop().run_in_executor(None, handle.reap)

    async def _retire_challenger(self, record: _ABRecord) -> None:
        """Drain + shut down one A/B test's dedicated challenger worker."""
        handle = record.handle
        handle.retiring = True
        if handle.alive:
            drain_deadline = time.monotonic() + self.config.drain_timeout_s
            while handle.inflight > 0 and time.monotonic() < drain_deadline:
                await asyncio.sleep(0.02)
            try:
                await handle.call({"op": "shutdown"}, timeout=5.0)
            except (WorkerCrash, _WorkerOpError):
                pass
        handle.close()
        await asyncio.get_running_loop().run_in_executor(None, handle.reap)

    async def _ab_start_async(
        self, region: str, model: str | None, split: float, weights: str | None
    ) -> dict:
        if self._rollout_lock.locked():
            raise _HttpError(
                409,
                "a rollout is already in progress",
                extra={"code": "rollout_in_progress"},
            )
        async with self._rollout_lock:
            self._check_draining()
            current = self.registry.shard(region)  # 404 early
            if region in self._ab:
                raise _HttpError(
                    409,
                    f"an A/B test is already live for region {region!r}; "
                    "promote or abort it first",
                    extra={"code": "ab_in_progress"},
                )
            try:
                state = ABState(
                    split=split,
                    champion_generation=current.generation,
                    challenger_generation=current.generation + 1,
                    challenger_model="",
                    challenger_weights=weights or current.spec.weights,
                )
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            self._journal.record(
                "ab_start",
                region=region,
                model=model or "<configured>",
                split=state.split,
            )
            staged, checked = await self._stage_and_canary(
                region, model, weights=weights, event="ab"
            )
            state.challenger_model = staged.spec.model
            state.challenger_weights = staged.spec.weights
            # One dedicated worker serves the challenger's split: forked
            # against the staged view, never in the handles map or the
            # ring, so the supervisor/autoscaler/session routing cannot
            # see it and streaming sessions stay on the champion.
            loop = asyncio.get_running_loop()
            view = self.registry.staged_view(region)
            handle = self._fork_worker(
                f"ab-{region}-g{staged.generation}",
                staged.generation,
                registry=view,
                register=False,
            )
            try:
                await self._connect_worker(handle, self._on_ab_worker_down)
                await handle.call({"op": "ping"}, timeout=10.0)
            except (WorkerCrash, _WorkerOpError) as error:
                handle.close()
                await loop.run_in_executor(None, handle.reap)
                await loop.run_in_executor(None, self.registry.abort_staged, region)
                self.metrics.increment("rollout_failures_total")
                self._journal.record(
                    "ab_rolled_back",
                    region=region,
                    generation=staged.generation,
                    error=str(error),
                )
                raise ModelReloadFailed(
                    f"challenger worker for region {region!r} generation "
                    f"{staged.generation} failed to start: {error}"
                ) from error
            self._ab[region] = _ABRecord(
                region=region, state=state, staged=staged, handle=handle
            )
            self.metrics.increment("ab_starts_total")
            summary = {
                "region": region,
                "split": state.split,
                "champion_generation": state.champion_generation,
                "challenger_generation": state.challenger_generation,
                "challenger_model": state.challenger_model,
                "challenger_weights": state.challenger_weights,
                "canary_checked": checked,
            }
            self._journal.record("ab_started", **summary)
            return summary

    async def _ab_promote_async(self, region: str) -> dict:
        if self._rollout_lock.locked():
            raise _HttpError(
                409,
                "a rollout is already in progress",
                extra={"code": "rollout_in_progress"},
            )
        async with self._rollout_lock:
            self._check_draining()
            record = self._ab.get(region)
            if record is None:
                raise _HttpError(
                    409,
                    f"no A/B test is live for region {region!r}",
                    extra={"code": "no_ab_test"},
                )
            loop = asyncio.get_running_loop()
            started = time.monotonic()
            # Commit first: from here every new fork — the fleet swap
            # below, respawns, scale-ups — attaches the challenger
            # generation.  The challenger worker keeps answering its
            # split until the swap completes, so requests admitted
            # mid-promote finish on whichever generation the split
            # assigned them and nothing is dropped.
            old_shard = self.registry.commit_staged(region)
            self._cache.clear()
            self._journal.record(
                "ab_committed", region=region, generation=record.staged.generation
            )
            swapped, failed_swaps = await self._swap_fleet(event="ab")
            await loop.run_in_executor(None, self.registry.retire, old_shard)
            await self._retire_challenger(record)
            self._ab.pop(region, None)
            self.metrics.increment("ab_promotions_total")
            self.metrics.increment("rollouts_total")
            summary = {
                "region": region,
                "generation": record.staged.generation,
                "workers_swapped": swapped,
                "workers_failed": failed_swaps,
                "duration_s": round(time.monotonic() - started, 3),
                "ab": record.state.snapshot(),
            }
            self._journal.record(
                "ab_promoted",
                region=region,
                generation=record.staged.generation,
                workers_swapped=swapped,
                workers_failed=failed_swaps,
            )
            return summary

    async def _ab_abort_async(self, region: str) -> dict:
        if self._rollout_lock.locked():
            raise _HttpError(
                409,
                "a rollout is already in progress",
                extra={"code": "rollout_in_progress"},
            )
        async with self._rollout_lock:
            record = self._ab.pop(region, None)
            if record is None:
                raise _HttpError(
                    409,
                    f"no A/B test is live for region {region!r}",
                    extra={"code": "no_ab_test"},
                )
            await self._retire_challenger(record)
            await asyncio.get_running_loop().run_in_executor(
                None, self.registry.abort_staged, region
            )
            self.metrics.increment("ab_aborts_total")
            self._journal.record(
                "ab_aborted", region=region, generation=record.staged.generation
            )
            return {
                "region": region,
                "generation": self.registry.shard(region).generation,
                "ab": record.state.snapshot(),
            }

    # ------------------------------------------------------------- admission
    def _check_draining(self) -> None:
        if self._draining:
            raise ClusterUnavailable("cluster is shutting down")

    async def _worker_call(self, handle: _WorkerHandle, op: dict) -> dict:
        return await handle.call(op, timeout=self.config.op_timeout_s)

    # --------------------------------------------------------------- /v1/match
    async def _match_on_worker(
        self, region: str, items: list, deadline: float | None = None
    ) -> dict:
        last_error: Exception | None = None
        op: dict = {"op": "match", "region": region, "trajectories": items}
        if deadline is not None:
            op["deadline"] = deadline
        for _ in range(2):  # one failover to a sibling on worker death
            handle = self._pick_match_worker()
            try:
                return await self._worker_call(handle, op)
            except WorkerCrash as error:
                last_error = error
                await asyncio.sleep(0)  # let the supervisor respawn/remove
        # Two workers died under the same request: tell the caller to
        # back off and retry (503) instead of surfacing a hard 500.
        raise ClusterUnavailable(
            f"match failed on crashing workers ({last_error})"
        ) from last_error

    async def handle_match(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/match`` — admission-gated, cached, single-flighted.

        The admission gate bounds concurrency *and* queueing: beyond
        ``max_inflight`` running ops a request waits (FIFO) up to
        ``queue_limit`` deep, overflow answers 503 + ``Retry-After``,
        and a request whose ``deadline_ms`` expires while queued is shed
        with 504 before any worker touches it.
        """
        self._check_draining()
        deadline = protocol.decode_deadline_ms(payload)
        await self._gate.acquire(deadline)
        try:
            return await self._match_gated(payload, deadline)
        finally:
            self._gate.release()

    async def _match_gated(
        self, payload: dict, deadline: float | None
    ) -> tuple[int, dict]:
        region = payload.get("region", DEFAULT_REGION)
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        if self._fed is not None and region not in self.registry.regions:
            # A federated peer may own this region: proxy, redirect, or
            # answer 503 when the owner is partitioned away.
            return await self._fed.handle_remote_match(region, payload, deadline)
        self.registry.shard(region)  # 404 early on unknown regions
        body = payload.get("trajectories")
        single = False
        if body is None:
            body = [payload.get("points")]
            single = True
        if not isinstance(body, list) or not body:
            raise ProtocolError(
                "expected 'trajectories' (list of point lists) or 'points'"
            )
        keys = [_canonical_key(region, item) for item in body]
        slots: list[dict | None] = [None] * len(body)
        waiters: list[tuple[int, asyncio.Future]] = []
        misses: list[tuple[int, tuple]] = []
        claimed: dict[tuple, asyncio.Future] = {}
        use_cache = self.config.cache_size > 0
        loop = asyncio.get_running_loop()
        # Live A/B: the deterministic key hash assigns each trajectory a
        # side *before* cache/singleflight — a challenger-assigned item
        # must reach the challenger generation, never a champion cache
        # entry, so the observed split over a known trace is exact.
        ab = self._ab.get(region)
        ab_started = time.perf_counter() if ab is not None else 0.0
        challenger_items: dict[int, object] = {}
        challenger_served: set[int] = set()
        challenger_task: asyncio.Task | None = None
        if ab is not None and ab.handle.alive:
            for i, item in enumerate(body):
                if ab.state.assign(canonical_key(item)):
                    challenger_items[i] = item
        if challenger_items:
            op: dict = {
                "op": "match",
                "region": region,
                "trajectories": list(challenger_items.values()),
            }
            if deadline is not None:
                op["deadline"] = deadline
            challenger_task = asyncio.create_task(
                ab.handle.call(op, timeout=self.config.op_timeout_s)
            )
        for i, key in enumerate(keys):
            if i in challenger_items:
                continue  # bypasses the champion cache and singleflight
            if use_cache:
                cached = self._cache.get(key)
                if cached is not None:
                    self.metrics.increment("cache_hits_total")
                    slots[i] = cached
                    continue
                self.metrics.increment("cache_misses_total")
            pending = self._inflight_keys.get(key)
            if pending is not None:
                waiters.append((i, pending))
                continue
            future = loop.create_future()
            self._inflight_keys[key] = future
            claimed[key] = future
            misses.append((i, key))
        if misses:
            try:
                response = await self._match_on_worker(
                    region, [body[i] for i, _ in misses], deadline
                )
            except Exception as error:
                for key, future in claimed.items():
                    self._inflight_keys.pop(key, None)
                    if not future.done():
                        future.set_exception(error)
                        future.exception()  # consume: waiters may be gone
                raise
            for (i, key), slot in zip(misses, response["results"]):
                slots[i] = slot
                future = claimed[key]
                self._inflight_keys.pop(key, None)
                if not future.done():
                    future.set_result(slot)
                if use_cache and slot.get("ok"):
                    self._cache.put(key, slot)
            for name, amount in (
                ("trajectories_matched", response.get("matched", 0)),
                ("match_degraded_total", response.get("degraded", 0)),
                ("match_failed_total", response.get("failed", 0)),
            ):
                if amount:
                    self.metrics.increment(name, amount)
        if challenger_task is not None:
            try:
                response = await challenger_task
                challenger_served.update(challenger_items)
            except (WorkerCrash, _WorkerOpError) as error:
                # The challenger died (or refused the op) mid-request:
                # the champion fleet absorbs its share so nothing drops;
                # the slots are accounted to the champion generation.
                self.metrics.increment("ab_failovers_total")
                self._journal.record(
                    "ab_failover", region=region, error=str(error)
                )
                response = await self._match_on_worker(
                    region, list(challenger_items.values()), deadline
                )
            for i, slot in zip(challenger_items, response["results"]):
                slots[i] = slot
            for name, amount in (
                ("trajectories_matched", response.get("matched", 0)),
                ("match_degraded_total", response.get("degraded", 0)),
                ("match_failed_total", response.get("failed", 0)),
            ):
                if amount:
                    self.metrics.increment(name, amount)
        for i, future in waiters:
            slots[i] = await asyncio.shield(future)
        if ab is not None:
            # Exactly one per-generation record per admitted trajectory:
            # the counters across both generations sum to the admitted
            # total by construction (chaos suite invariant).
            elapsed = time.perf_counter() - ab_started
            for i, slot in enumerate(slots):
                failed = not (slot or {}).get("ok", False)
                degraded = (
                    not failed
                    and slot["result"].get("provenance", "lhmm") != "lhmm"
                )
                ab.state.stats_for(i in challenger_served).record(
                    requests=1,
                    degraded=int(degraded),
                    failed=int(failed),
                    seconds=elapsed,
                )
        return self._encode_match_slots(slots, single)

    @staticmethod
    def _encode_match_slots(slots: list, single: bool) -> tuple[int, dict]:
        """Worker result slots → the HTTP response (shared with federation)."""
        encoded: list[dict] = []
        for slot in slots:
            assert slot is not None
            if slot.get("ok"):
                encoded.append(slot["result"])
            else:
                error = dict(slot["error"])
                error.pop("status", None)
                encoded.append({"error": error})
        if single:
            slot = slots[0]
            if not slot.get("ok"):
                error = slot["error"]
                raise _HttpError(
                    int(error.get("status", 500)),
                    error.get("message", "match failed"),
                    extra={"code": error.get("code", "match_failure")},
                )
            return 200, {"result": encoded[0]}
        return 200, {"results": encoded}

    # -------------------------------------------------------------- sessions
    def _session_record(self, session_id: str) -> _SessionRecord:
        record = self._records.get(session_id)
        now = time.monotonic()
        if record is not None and now - record.last_touched > self.config.session_ttl_s:
            self._records.pop(session_id, None)
            self.metrics.increment("sessions_evicted_total")
            record = None
        if record is None:
            raise UnknownSessionError(session_id)
        return record

    async def _session_op(self, record: _SessionRecord, op: str, extra: dict) -> dict:
        """Run one session op on the session's owner, replaying on handoff."""
        base = {
            "op": op,
            "region": record.region,
            "session_id": record.session_id,
        }
        async with record.lock:
            for attempt in range(2):
                name = self._ring.route(record.session_id)
                handle = self._handles.get(name)
                if handle is None or not handle.alive:
                    if attempt == 0:
                        await asyncio.sleep(0.05)  # give the supervisor a beat
                        continue
                    raise ClusterUnavailable(
                        f"no live worker for session {record.session_id}"
                    )
                try:
                    if name != record.worker_name or handle.generation != record.generation:
                        await self._replay(record, handle)
                    return await self._worker_call(handle, {**base, **extra})
                except WorkerCrash as error:
                    if attempt == 1:
                        raise ClusterUnavailable(
                            f"session {record.session_id} lost its worker twice "
                            f"({error})"
                        ) from error
                except _WorkerOpError as error:
                    # The worker lost the session (backstop TTL eviction,
                    # lost handoff): rebuild it from the journal once.
                    if error.code != "unknown_session" or attempt == 1:
                        raise
                    record.generation = -1  # force a replay next round
        raise ClusterUnavailable("session operation could not be placed")

    async def _replay(self, record: _SessionRecord, handle: _WorkerHandle) -> None:
        """Deterministically rebuild a session on its (new) owner."""
        await self._worker_call(
            handle,
            {
                "op": "session.open",
                "region": record.region,
                "session_id": record.session_id,
                "lag": record.lag,
                "context_window": record.context_window,
            },
        )
        if record.journal:
            await self._worker_call(
                handle,
                {
                    "op": "session.feed",
                    "region": record.region,
                    "session_id": record.session_id,
                    "points": record.journal,
                },
            )
        record.worker_name = handle.name
        record.generation = handle.generation
        self.metrics.increment("sessions_replayed_total")

    async def handle_create_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions`` — admit and place a streaming session."""
        self._check_draining()
        deadline = protocol.decode_deadline_ms(payload)
        await self._gate.acquire(deadline)
        try:
            return await self._create_session_gated(payload)
        finally:
            self._gate.release()

    async def _create_session_gated(self, payload: dict) -> tuple[int, dict]:
        region = payload.get("region", DEFAULT_REGION)
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        if self._fed is not None and region not in self.registry.regions:
            # Sessions are sticky to the owning host: redirect to the
            # peer that serves this region (503 when partitioned away).
            raise self._fed.remote_session_error(region, "/v1/sessions")
        self.registry.shard(region)
        lag = payload.get("lag")
        context_window = payload.get("context_window")
        for name, value in (("lag", lag), ("context_window", context_window)):
            if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
                raise ProtocolError(f"field {name!r} must be an integer")
        live = sum(
            1
            for r in self._records.values()
            if time.monotonic() - r.last_touched <= self.config.session_ttl_s
        )
        if live >= self.config.max_sessions:
            raise SessionLimitError(
                f"session limit reached ({self.config.max_sessions} live sessions)"
            )
        session_id = f"s{next(self._session_ids)}-{os.urandom(4).hex()}"
        name = self._ring.route(session_id)
        handle = self._handles.get(name)
        if handle is None or not handle.alive:
            raise ClusterUnavailable("no live worker to place the session on")
        try:
            opened = await self._worker_call(
                handle,
                {
                    "op": "session.open",
                    "region": region,
                    "session_id": session_id,
                    "lag": lag,
                    "context_window": context_window,
                },
            )
        except _WorkerOpError as error:
            if error.code == "protocol_error":  # e.g. lag < 1
                raise ProtocolError(str(error)) from error
            raise
        record = _SessionRecord(
            session_id=session_id,
            region=region,
            lag=opened["lag"],
            context_window=opened["context_window"],
            worker_name=name,
            generation=handle.generation,
            last_touched=time.monotonic(),
        )
        self._records[session_id] = record
        self.metrics.increment("sessions_created")
        if self._fed is not None:
            # Replicate-before-return (semi-sync): a reachable replica
            # acks the empty journal before the client sees the id; an
            # unreachable one is resynced on reconnect.
            await self._fed.replicate_open(record)
        return 201, {
            "session_id": session_id,
            "lag": opened["lag"],
            "context_window": opened["context_window"],
            "region": region,
            "worker": name,
        }

    async def _resolve_session(self, session_id: str, path: str) -> _SessionRecord:
        """Find a session record, consulting the federation on a miss.

        A locally unknown id may be a session another gateway owns (307
        to the live owner) or one whose owner died and whose journal this
        gateway replicates — in that case the federation *adopts* it: a
        fenced record is minted from the replica journal and stored, and
        the normal replay machinery rebuilds it on a local worker.
        """
        try:
            return self._session_record(session_id)
        except UnknownSessionError:
            if self._fed is None:
                raise
            record = self._fed.resolve_session(session_id, path)
            self._records[session_id] = record
            return record

    async def handle_feed_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions/{id}/points`` — journal + forward the feed.

        An optional integer ``seq`` makes feeds idempotent across
        failover retries: a duplicate of the last accepted ``seq``
        answers the cached state without re-feeding the decoder, so a
        client that resends after a timeout (or against the adopted
        replica) can never double-commit points.
        """
        self._check_draining()
        deadline = protocol.decode_deadline_ms(payload)
        await self._gate.acquire(deadline)
        try:
            sid = match.group("sid")
            record = await self._resolve_session(sid, f"/v1/sessions/{sid}/points")
            points = payload.get("points")
            if not isinstance(points, list) or not points:
                raise ProtocolError("points: expected a non-empty list of points")
            seq = payload.get("seq")
            if seq is not None and (isinstance(seq, bool) or not isinstance(seq, int)):
                raise ProtocolError("field 'seq' must be an integer")
            if seq is not None and seq <= record.last_seq and record.last_state is not None:
                self.metrics.increment("feed_duplicates_total")
                return 200, record.last_state
            extra: dict = {"points": points}
            if deadline is not None:
                extra["deadline"] = deadline
            state = await self._session_op(record, "session.feed", extra)
            # Journal only after the worker accepted: a rejected feed (bad
            # payload, 4xx) must not poison a future replay.
            record.journal.extend(points)
            record.last_touched = time.monotonic()
            if seq is not None:
                record.last_seq = seq
            record.last_state = state["state"]
            self.metrics.increment("points_fed", len(points))
            if self._fed is not None:
                # Semi-sync journal shipping; raises SessionFenced (409)
                # if the replica adopted the session while we were away.
                await self._fed.replicate_feed(record, points)
            return 200, state["state"]
        finally:
            self._gate.release()

    async def handle_close_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``DELETE /v1/sessions/{id}`` — finalise and return the path.

        Under federation the close is the *commit point*: the replica
        peer must approve it (fence check) before the final path is
        computed, so after a partition heals exactly one side — the one
        holding the highest fence — ever commits the session.
        """
        await self._gate.acquire(None)
        try:
            sid = match.group("sid")
            record = await self._resolve_session(sid, f"/v1/sessions/{sid}")
            if self._fed is not None and not await self._fed.confirm_close(record):
                self._records.pop(record.session_id, None)
                raise SessionFenced(record.session_id)
            final = await self._session_op(record, "session.close", {})
            self._records.pop(record.session_id, None)
            self.metrics.increment("sessions_closed")
            if self._fed is not None:
                self._fed.drop_replica(record)
            return 200, final["final"]
        finally:
            self._gate.release()

    # ----------------------------------------------------------------- admin
    async def handle_rollout(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/rollout`` — zero-downtime artifact swap.

        Body: ``{"region": ..., "model": ...}`` (both optional —
        defaults: the default region, its configured artifact path,
        re-read from disk).  Stages the candidate generation, canaries it
        on a probe worker, then swaps the fleet one worker at a time; a
        failed canary rolls back with the old generation never disturbed
        (500, ``model_reload_failed``).  A concurrent rollout answers
        409.
        """
        self._check_draining()
        region = payload.get("region", DEFAULT_REGION)
        model = payload.get("model")
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        if model is not None and not isinstance(model, str):
            raise ProtocolError("field 'model' must be a string path")
        return 200, await self._rollout_async(region, model)

    @staticmethod
    def _ab_region(payload: dict) -> str:
        region = payload.get("region", DEFAULT_REGION)
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        return region

    async def handle_ab_start(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab`` — load a challenger, start splitting.

        Body: ``{"region": ..., "model": ..., "split": 0.1, "weights":
        "raw"|"ema"}`` (all optional).  The challenger generation is
        staged, canaried on a probe worker, and then served by one
        dedicated worker that receives the deterministic ``split``
        fraction of ``/v1/match`` traffic for the region; streaming
        sessions stay on the champion.  Per-generation counters appear
        under ``"ab"`` on ``/metrics`` until ``promote``/``abort``
        resolves the test.  A concurrent rollout or live test answers
        409.
        """
        self._check_draining()
        region = self._ab_region(payload)
        model = payload.get("model")
        split = payload.get("split", 0.1)
        weights = payload.get("weights")
        if model is not None and not isinstance(model, str):
            raise ProtocolError("field 'model' must be a string path")
        if isinstance(split, bool) or not isinstance(split, (int, float)):
            raise ProtocolError("field 'split' must be a number in (0, 1]")
        if weights is not None and weights not in ("raw", "ema"):
            raise ProtocolError("field 'weights' must be 'raw' or 'ema'")
        return 200, await self._ab_start_async(region, model, float(split), weights)

    async def handle_ab_promote(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab/promote`` — challenger becomes sole server.

        Commits the challenger's staged generation and runs the normal
        zero-downtime fleet swap; requests admitted mid-promote finish
        on whichever generation the split assigned them.  Returns the
        final per-generation snapshot.
        """
        self._check_draining()
        return 200, await self._ab_promote_async(self._ab_region(payload))

    async def handle_ab_abort(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab/abort`` — drop the challenger untouched."""
        return 200, await self._ab_abort_async(self._ab_region(payload))

    # --------------------------------------------------------- observability
    async def handle_healthz(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /healthz`` — fleet liveness and shard inventory."""
        alive = len(self._alive_handles())
        counters = self.metrics.snapshot()["counters"]
        breakers = self._crash_tracker.open_breakers()
        fed_snapshot = self._fed.snapshot() if self._fed is not None else None
        if self._draining:
            status = "draining"
        elif alive == 0:
            status = "down"
        elif (
            alive < self._workers_target
            or breakers
            or counters.get("worker_deaths_total")
            or (fed_snapshot is not None and fed_snapshot["partitioned"])
        ):
            status = "degraded"
        else:
            status = "ok"
        extra: dict = {}
        if fed_snapshot is not None:
            extra["federation"] = fed_snapshot
        return 200, {
            "status": status,
            "mode": "cluster",
            "worker_transport": self.config.worker_transport,
            **extra,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "regions": self.registry.regions,
            "generations": self.registry.generations(),
            "workers_alive": alive,
            "workers_total": self._workers_target,
            "min_workers": self._min_workers,
            "max_workers": self._max_workers,
            "breakers_open": breakers,
            "respawns_used": self._respawns_used,
            "respawn_limit": self.config.respawn_limit,
            "active_sessions": len(self._records),
            "inflight_ops": self._gate.inflight,
            "queue_depth": self._gate.depth,
            "ab_live": sorted(self._ab),
        }

    async def handle_metrics(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /metrics`` — gateway counters + per-worker stats probe."""
        snapshot = self.metrics.snapshot()
        for name in (
            "cache_hits_total",
            "cache_misses_total",
            "worker_deaths_total",
            "worker_respawns_total",
            "worker_stalls_total",
            "breakers_open_total",
            "sessions_replayed_total",
            "scale_ups_total",
            "scale_downs_total",
            "rollouts_total",
            "rollout_failures_total",
            "ab_starts_total",
            "ab_promotions_total",
            "ab_aborts_total",
            "ab_challenger_deaths_total",
            "ab_failovers_total",
            "workers_fenced_total",
            "feed_duplicates_total",
        ):
            snapshot["counters"].setdefault(name, 0)
        if self._fed is not None:
            for name in (
                "fed_proxied_matches_total",
                "fed_redirects_total",
                "fed_partition_503_total",
                "fed_replications_total",
                "fed_replication_failures_total",
                "fed_resyncs_total",
                "fed_adoptions_total",
                "fed_fenced_total",
                "fed_fenced_hellos_total",
                "fed_peer_up_total",
                "fed_peer_down_total",
            ):
                snapshot["counters"].setdefault(name, 0)
            snapshot["federation"] = self._fed.snapshot()
        workers = []
        for name, handle in sorted(self._handles.items()):
            info: dict = {
                "name": name,
                "pid": handle.process.pid,
                "alive": handle.alive,
                "generation": handle.generation,
                "inflight": handle.inflight,
                "requests_total": handle.requests_total,
            }
            if handle.alive:
                try:
                    stats = await handle.call({"op": "stats"}, timeout=5.0)
                    info["memory"] = stats.get("memory", {})
                    info["sessions"] = stats.get("sessions", {})
                    info["matched_total"] = stats.get("matched_total", 0)
                except (WorkerCrash, _WorkerOpError):  # racing a death
                    info["alive"] = False
            workers.append(info)
        snapshot["workers"] = workers
        snapshot["shards"] = self.registry.describe()
        snapshot["shared_artifact_bytes"] = self.registry.total_bytes()
        snapshot["cache"] = self._cache.stats()
        snapshot["sessions"] = {"active": len(self._records)}
        snapshot["cluster"] = {
            "workers_alive": len(self._alive_handles()),
            "workers_total": self._workers_target,
            "respawns_used": self._respawns_used,
            "respawn_limit": self.config.respawn_limit,
        }
        snapshot["admission"] = self._gate.snapshot()
        snapshot["autoscaler"] = {
            "min_workers": self._min_workers,
            "max_workers": self._max_workers,
            "target": self._workers_target,
            "interval_s": self.config.control_interval_s,
        }
        snapshot["control"] = {
            "breakers_open": self._crash_tracker.open_breakers(),
            "journal_tail": self._journal.tail(20),
        }
        snapshot["generations"] = self.registry.generations()
        if self._ab:
            snapshot["ab"] = {
                region: record.state.snapshot()
                for region, record in sorted(self._ab.items())
            }
        if self.config.extra_metrics:
            snapshot["extra"] = dict(self.config.extra_metrics)
        return 200, snapshot

    # ------------------------------------------------------------- http layer
    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, dict, dict]:
        started = time.perf_counter()
        endpoint = "unknown"
        status = 500
        headers: dict = {}
        try:
            for route_method, pattern, name in _ROUTES:
                if route_method != method:
                    continue
                matched = pattern.match(target.split("?", 1)[0])
                if matched is None:
                    continue
                endpoint = name
                payload = protocol.loads(body)
                if payload is None or not isinstance(payload, dict):
                    payload = {}
                handler = getattr(self, f"handle_{name}")
                status, response = await handler(payload, matched)
                break
            else:
                raise _HttpError(404, f"no route for {method} {target}")
        except ProtocolError as error:
            status, response = 400, {"error": str(error)}
        except InvalidTrajectoryInput as error:
            status, response = 422, {"error": str(error), "code": error.code}
        except UnknownSessionError as error:
            status, response = 404, {"error": f"unknown session {error.args[0]!r}"}
        except SessionLimitError as error:
            retry_after = self.config.retry_after_s
            headers["Retry-After"] = str(max(1, round(retry_after)))
            status, response = 429, {"error": str(error), "retry_after_s": retry_after}
        except SessionFenced as error:
            status, response = 409, {
                "error": f"session {error.args[0]} was adopted by a peer "
                "gateway (fencing); its commit happens there",
                "code": "session_fenced",
            }
        except _HttpError as error:
            status, response = error.status, {"error": str(error), **error.extra}
            headers.update(error.headers)
        except _WorkerOpError as error:
            status = error.status
            response = {"error": str(error), "code": error.code}
        except DeadlineExceeded as error:
            status, response = 504, {"error": str(error), "code": error.code}
        except (ClusterUnavailable, ServerOverloaded) as error:
            retry_after = self.config.retry_after_s
            headers["Retry-After"] = str(max(1, round(retry_after)))
            status, response = 503, {
                "error": str(error),
                "code": error.code,
                "retry_after_s": retry_after,
            }
        except ReproError as error:
            status = error.http_status
            response = {"error": str(error), "code": error.code}
        except Exception as error:  # noqa: BLE001 - the gateway must not die
            status, response = 500, {"error": f"internal error: {error}"}
        self.metrics.observe(endpoint, time.perf_counter() - started, status)
        return status, response, headers

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    writer.write(_http_response(400, {"error": "malformed request line"}, close=True))
                    await writer.drain()
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = -1
                if length < 0 or length > self.config.max_body_bytes:
                    writer.write(_http_response(413, {"error": "request body too large"}, close=True))
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                status, response, extra_headers = await self._dispatch(method, target, body)
                writer.write(_http_response(status, response, close=close, headers=extra_headers))
                await writer.drain()
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            # Drain cancels idle keep-alive connections; finishing the
            # task normally keeps asyncio's stream teardown callbacks
            # (which re-read task.exception()) quiet.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


_REASONS = {
    200: "OK",
    201: "Created",
    307: "Temporary Redirect",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _http_response(
    status: int, payload: dict, close: bool = False, headers: dict | None = None
) -> bytes:
    body = protocol.dumps(payload)
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
        "Server: repro-cluster/" + str(protocol.PROTOCOL_VERSION),
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
