"""Sharded serving cluster: asyncio gateway + matcher worker fleet.

This is the scale-out tier above :class:`~repro.serve.server.MatchingServer`:

* a single-threaded **gateway** (one asyncio loop) owns HTTP parsing,
  admission control, the response cache, and session affinity — no
  per-request threads;
* N forked **worker processes** each run the full ``LHMM`` /
  ``OnlineLHMM`` machinery over shared-memory artifacts
  (:mod:`repro.serve.shards`) and speak the length-prefixed IPC protocol
  of :mod:`repro.serve.ipc` over a ``socketpair`` — one socket per
  worker, many in-flight operations multiplexed by message id;
* **consistent-hash routing** pins each streaming session to one worker
  so its fixed-lag decoder stays sticky across requests.  Worker names
  (``w0`` … ``wN-1``) are the ring nodes: a respawned worker keeps its
  name and therefore its ring position, so recovery is deterministic.

Failure semantics (mirroring PR 3's pool respawn machinery): when a
worker dies, its in-flight operations fail over to siblings, the
supervisor forks a replacement under the same name (bounded by
``respawn_limit``), and its streaming sessions are *replayed* — the
gateway journals every accepted point per session and feeds the journal
back into the new owner before the next operation.  ``OnlineLHMM``
decoding is deterministic, so a replayed session commits exactly the
path the lost one would have.  Once the respawn budget is exhausted a
worker's name leaves the ring; only ~1/N of sessions re-route (the
consistent-hash property, covered by a hypothesis test).

The HTTP surface is the same JSON protocol as the single-process server
(``/v1/match``, ``/v1/sessions``, ``/healthz``, ``/metrics``) plus an
optional ``region`` field that selects a shard; responses are
byte-identical to direct ``LHMM.match`` / ``OnlineLHMM`` calls — the
existing parity oracle runs against the gateway unchanged.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import json
import os
import re
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    ClusterUnavailable,
    InvalidTrajectoryInput,
    MatchError,
    ReproError,
    UnknownRegion,
    WorkerCrash,
)
from repro.serve import ipc, protocol
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import SessionLimitError, SessionManager, UnknownSessionError
from repro.serve.shards import DEFAULT_REGION, ShardRegistry


# =====================================================================
# consistent-hash ring
# =====================================================================
class ConsistentHashRing:
    """Deterministic consistent hashing with virtual nodes.

    Each node is planted at ``replicas`` pseudo-random points on a 64-bit
    ring (blake2b of ``"{node}#{i}"`` — stable across processes and
    Python runs, unlike ``hash()``); a key routes to the first node
    clockwise from its own hash.  Removing a node re-routes only the keys
    that landed on its points (~1/N of them); every other key keeps its
    owner — exactly the property session stickiness needs across worker
    fleet changes.
    """

    def __init__(self, nodes: tuple[str, ...] = (), replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        self._hashes: list[int] = []
        for node in nodes:
            self.add(node)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _rebuild(self) -> None:
        self._points.sort()
        self._hashes = [h for h, _ in self._points]

    def add(self, node: str) -> None:
        """Plant ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend(
            (self._hash(f"{node}#{i}"), node) for i in range(self.replicas)
        )
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove ``node``; keys it owned re-route to their successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [(h, n) for h, n in self._points if n != node]
        self._rebuild()

    def route(self, key: str) -> str:
        """The node owning ``key``; raises when the ring is empty."""
        if not self._points:
            raise ClusterUnavailable("no workers available (empty routing ring)")
        pos = bisect.bisect_right(self._hashes, self._hash(key))
        if pos == len(self._points):
            pos = 0
        return self._points[pos][1]

    @property
    def nodes(self) -> set[str]:
        """The live node names."""
        return set(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)


# =====================================================================
# configuration
# =====================================================================
@dataclass(slots=True)
class ClusterConfig:
    """Tunables of the cluster gateway and its worker fleet."""

    host: str = "127.0.0.1"
    port: int = 8080
    num_workers: int = 2
    default_lag: int = 4
    default_context_window: int = 12
    max_sessions: int = 256
    session_ttl_s: float = 300.0
    #: Concurrent worker operations the gateway admits before shedding
    #: load with 429 (its analogue of the micro-batcher's queue_limit).
    max_inflight: int = 64
    retry_after_s: float = 1.0
    op_timeout_s: float = 120.0
    max_body_bytes: int = 8 * 1024 * 1024
    #: Response-cache entries for ``/v1/match`` (0 disables).  Keys are
    #: the canonicalised (region, trajectory) payload, so a cache hit
    #: returns the byte-identical body a worker would compute.
    cache_size: int = 1024
    #: Worker respawns allowed across the fleet before a dead worker's
    #: name permanently leaves the ring (PR 3 semantics).
    respawn_limit: int = 3
    ring_replicas: int = 64
    shutdown_timeout_s: float = 30.0
    extra_metrics: dict = field(default_factory=dict)


@dataclass(slots=True)
class _SessionRecord:
    """Gateway-side truth about one streaming session."""

    session_id: str
    region: str
    lag: int
    context_window: int
    worker_name: str
    generation: int
    journal: list[dict] = field(default_factory=list)
    last_touched: float = 0.0
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class _HttpError(Exception):
    """Internal: carry status + payload up to the HTTP dispatcher."""

    def __init__(
        self, status: int, message: str, headers: dict | None = None, extra: dict | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.extra = extra or {}


class _WorkerOpError(Exception):
    """A structured error slot returned by a worker for a whole op."""

    def __init__(self, payload: dict) -> None:
        super().__init__(payload.get("message", "worker error"))
        self.code = payload.get("code", "internal_error")
        self.status = int(payload.get("status", 500))
        self.payload = payload


class _ResponseCache:
    """LRU cache of encoded ``/v1/match`` result slots."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> dict | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: tuple, value: dict) -> None:
        if self.capacity <= 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


# =====================================================================
# worker process
# =====================================================================
def _process_memory() -> dict:
    """This process's memory split (kB) from ``/proc`` (Linux).

    ``private_kb`` approximates USS — the pages this worker uniquely
    owns.  With artifacts in shared memory it stays near-constant as the
    fleet grows; that is the number the benchmark reports as proof the
    artifacts are loaded once, not per-process.
    """
    fields = {"rss_kb": 0, "private_kb": 0, "shared_kb": 0}
    wanted = {
        "Rss": "rss_kb",
        "Private_Clean": "private_kb",
        "Private_Dirty": "private_kb",
        "Shared_Clean": "shared_kb",
        "Shared_Dirty": "shared_kb",
    }
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:  # pragma: no cover - non-Linux
        return fields
    for line in text.splitlines():
        key, _, rest = line.partition(":")
        target = wanted.get(key.strip())
        if target is None:
            continue
        parts = rest.split()
        if parts and parts[0].isdigit():
            fields[target] += int(parts[0])
    return fields


def _error_payload(error: BaseException) -> dict:
    """Map an exception onto the wire ``{code, message, status}`` form."""
    if isinstance(error, ProtocolError):
        return {"code": "protocol_error", "message": str(error), "status": 400}
    if isinstance(error, UnknownSessionError):
        return {
            "code": "unknown_session",
            "message": f"unknown session {error.args[0]!r}",
            "status": 404,
        }
    if isinstance(error, SessionLimitError):
        return {"code": "session_limit", "message": str(error), "status": 429}
    if isinstance(error, ReproError):
        return {
            "code": error.code,
            "message": str(error),
            "status": error.http_status,
        }
    if isinstance(error, ValueError):
        return {"code": "protocol_error", "message": str(error), "status": 400}
    return {"code": "internal_error", "message": f"internal error: {error}", "status": 500}


class _WorkerRuntime:
    """Everything one worker process keeps between operations."""

    def __init__(self, registry: ShardRegistry, options: dict) -> None:
        self.options = options
        self.matched_total = 0
        self._matchers = {}
        self._packs = {}
        self._managers: dict[str, SessionManager] = {}
        # Attach every region up front: startup is the cheap moment to
        # pay mapping costs, and a worker that cannot attach must die
        # *before* it is offered traffic.
        for region in registry.regions:
            matcher, pack = registry.attach_matcher(region)
            self._matchers[region] = matcher
            self._packs[region] = pack

    def _matcher(self, region: str):
        try:
            return self._matchers[region]
        except KeyError:
            raise UnknownRegion(f"region {region!r} is not served here") from None

    def _manager(self, region: str) -> SessionManager:
        manager = self._managers.get(region)
        if manager is None:
            manager = SessionManager(
                self._matcher(region),
                default_lag=self.options["default_lag"],
                default_context_window=self.options["default_context_window"],
                max_sessions=self.options["max_sessions"],
                # The gateway is the authority on session lifetime; the
                # worker-side TTL is a backstop against orphaned state.
                ttl_s=self.options["session_ttl_s"] * 4.0,
            )
            self._managers[region] = manager
        return manager

    # --------------------------------------------------------------- ops
    def handle(self, message: dict) -> dict:
        op = message.get("op")
        try:
            handler = getattr(self, "_op_" + str(op).replace(".", "_"), None)
            if handler is None:
                raise ProtocolError(f"unknown ipc op {op!r}")
            result = handler(message)
            return {"id": message.get("id"), "ok": True, **result}
        except Exception as error:  # noqa: BLE001 - a worker must not die on input
            return {"id": message.get("id"), "ok": False, "error": _error_payload(error)}

    def _op_match(self, message: dict) -> dict:
        matcher = self._matcher(message.get("region", DEFAULT_REGION))
        raw = message.get("trajectories")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("expected 'trajectories' (list of point lists)")
        trajectories = [
            protocol.decode_trajectory(item, trajectory_id=i, context=f"trajectories[{i}]")
            for i, item in enumerate(raw)
        ]
        for i, trajectory in enumerate(trajectories):
            matcher.validate_trajectory(trajectory, context=f"trajectories[{i}]")
        slots = matcher.match_many(trajectories, return_errors=True)
        results: list[dict] = []
        matched = degraded = failed = 0
        for slot in slots:
            if isinstance(slot, MatchError):
                failed += 1
                results.append(
                    {
                        "ok": False,
                        "error": {
                            **slot.to_payload(),
                            "status": slot.http_status,
                        },
                    }
                )
            else:
                matched += 1
                if getattr(slot, "provenance", "lhmm") != "lhmm":
                    degraded += 1
                results.append({"ok": True, "result": protocol.encode_match_result(slot)})
        self.matched_total += matched
        return {
            "results": results,
            "matched": matched,
            "degraded": degraded,
            "failed": failed,
        }

    def _op_session_open(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        session = self._manager(region).create(
            lag=message.get("lag"),
            context_window=message.get("context_window"),
            session_id=message["session_id"],
        )
        return {
            "session_id": session.session_id,
            "lag": session.decoder.lag,
            "context_window": session.decoder.context_window,
        }

    def _op_session_feed(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        points = protocol.decode_points(message.get("points"), "points")
        state = self._manager(region).feed(message["session_id"], points)
        return {"state": state}

    def _op_session_close(self, message: dict) -> dict:
        region = message.get("region", DEFAULT_REGION)
        final = self._manager(region).close(message["session_id"])
        return {"final": final}

    def _op_stats(self, message: dict) -> dict:
        return {
            "memory": _process_memory(),
            "sessions": {
                region: manager.stats() for region, manager in self._managers.items()
            },
            "matched_total": self.matched_total,
        }

    def _op_ping(self, message: dict) -> dict:
        return {"pong": True}

    def _op_shutdown(self, message: dict) -> dict:
        finished = {}
        for manager in self._managers.values():
            finished.update(manager.close_all())
        return {"closed_sessions": len(finished)}


def _worker_main(sock: socket.socket, registry: ShardRegistry, options: dict) -> None:
    """Entry point of one forked matcher worker (blocking loop)."""
    # The gateway's signals are not ours: a Ctrl+C against the CLI lands
    # on the whole process group, but workers must only exit on a
    # shutdown op (or gateway death = socket EOF) so drains stay orderly.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        signal.signal(signal.SIGHUP, signal.SIG_IGN)
    except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
        pass
    exit_code = 0
    try:
        runtime = _WorkerRuntime(registry, options)
        while True:
            message = ipc.recv_message(sock)
            if message is None:
                break
            ipc.send_message(sock, runtime.handle(message))
            if message.get("op") == "shutdown":
                break
    except (ipc.IpcError, OSError, BrokenPipeError):  # gateway went away
        exit_code = 1
    except Exception:  # pragma: no cover - startup failure (bad artifact)
        exit_code = 2
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass
        # Skip interpreter teardown: a fork child sharing the gateway's
        # state must not run its atexit hooks (resource tracker, etc.).
        os._exit(exit_code)


# =====================================================================
# gateway-side worker handle
# =====================================================================
class _WorkerHandle:
    """One worker process as seen from the gateway's event loop."""

    def __init__(self, name: str, generation: int, process, sock: socket.socket) -> None:
        self.name = name
        self.generation = generation
        self.process = process
        self.sock = sock
        self.alive = True
        self.requests_total = 0
        self.inflight = 0
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock: asyncio.Lock | None = None
        self._reader_task: asyncio.Task | None = None

    async def connect(self, on_down) -> None:
        """Wrap the socketpair end in asyncio streams; start the reader."""
        reader, writer = await asyncio.open_connection(sock=self.sock)
        self._writer = writer
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.create_task(self._read_loop(reader, on_down))

    async def _read_loop(self, reader: asyncio.StreamReader, on_down) -> None:
        try:
            while True:
                message = await ipc.read_message(reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ipc.IpcError, ConnectionResetError, OSError):
            pass
        finally:
            self.alive = False
            self.fail_pending(WorkerCrash(f"worker {self.name} connection lost"))
            await on_down(self)

    def fail_pending(self, error: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()

    async def call(self, op: dict, timeout: float) -> dict:
        """Send one op and await its response (raises on worker death)."""
        if not self.alive or self._writer is None:
            raise WorkerCrash(f"worker {self.name} is not available")
        message_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[message_id] = future
        self.requests_total += 1
        self.inflight += 1
        try:
            async with self._write_lock:
                await ipc.write_message(self._writer, {**op, "id": message_id})
            response = await asyncio.wait_for(future, timeout)
        except (asyncio.TimeoutError, ConnectionResetError, BrokenPipeError) as error:
            self._pending.pop(message_id, None)
            raise WorkerCrash(
                f"worker {self.name} did not answer a {op.get('op')!r} op ({error!r})"
            ) from error
        finally:
            self.inflight -= 1
            self._pending.pop(message_id, None)
        if not response.get("ok", False):
            raise _WorkerOpError(response.get("error") or {})
        return response

    def reap(self, timeout: float = 5.0) -> None:
        """Blocking: join the process, escalating to terminate/kill."""
        process = self.process
        process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(2.0)
        if process.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            process.kill()
            process.join(2.0)

    def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
        if self._writer is not None:
            self._writer.close()


# =====================================================================
# the gateway
# =====================================================================
_ROUTES = (
    ("POST", re.compile(r"^/v1/sessions$"), "create_session"),
    ("POST", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)/points$"), "feed_session"),
    ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)$"), "close_session"),
    ("POST", re.compile(r"^/v1/match$"), "match"),
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
)


def _canonical_key(region: str, item) -> tuple:
    """Cache/singleflight key: region + canonical JSON of one trajectory."""
    return (region, json.dumps(item, sort_keys=True, separators=(",", ":")))


class ClusterServer:
    """The sharded serving cluster (gateway + worker fleet).

    Args:
        registry: A *published* :class:`ShardRegistry`.  The server owns
            it: shutdown unlinks the shared segments.
        config: Fleet/gateway tunables; ``port=0`` binds an ephemeral
            port (read :attr:`port` after :meth:`start`).

    Use as a context manager, or :meth:`start` / :meth:`shutdown`.  The
    event loop runs on a dedicated background thread; :meth:`start`
    forks the initial workers *before* that thread exists, which keeps
    the first fork single-threaded (respawns later fork from the loop
    thread — the child only ever runs :func:`_worker_main` and execs
    nothing, so that is safe).
    """

    def __init__(self, registry: ShardRegistry, config: ClusterConfig | None = None) -> None:
        self.registry = registry
        self.config = config or ClusterConfig()
        if self.config.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.metrics = ServeMetrics()
        self._cache = _ResponseCache(self.config.cache_size)
        self._ring = ConsistentHashRing(replicas=self.config.ring_replicas)
        self._handles: dict[str, _WorkerHandle] = {}
        self._records: dict[str, _SessionRecord] = {}
        self._connections: set[asyncio.Task] = set()
        self._inflight_keys: dict[tuple, asyncio.Future] = {}
        self._session_ids = itertools.count()
        self._inflight_ops = 0
        self._respawns_used = 0
        self._draining = False
        self._started = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.Server | None = None
        self._bound: tuple[str, int] | None = None
        self._start_error: BaseException | None = None
        self._mp_context = None

    # ------------------------------------------------------------- lifecycle
    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral port)."""
        return self._bound[1] if self._bound else self.config.port

    @property
    def address(self) -> str:
        """``http://host:port`` of the running gateway."""
        return f"http://{self.host}:{self.port}"

    def _fork_worker(self, name: str, generation: int) -> _WorkerHandle:
        import multiprocessing

        if self._mp_context is None:
            self._mp_context = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        options = {
            "default_lag": self.config.default_lag,
            "default_context_window": self.config.default_context_window,
            "max_sessions": self.config.max_sessions,
            "session_ttl_s": self.config.session_ttl_s,
        }
        process = self._mp_context.Process(
            target=_worker_main,
            args=(child_sock, self.registry, options),
            name=f"repro-cluster-{name}",
            daemon=True,
        )
        process.start()
        child_sock.close()
        parent_sock.setblocking(False)
        handle = _WorkerHandle(name, generation, process, parent_sock)
        self._handles[name] = handle
        self._ring.add(name)
        return handle

    def start(self) -> "ClusterServer":
        """Fork the fleet, bind the gateway, serve on a background thread."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        for i in range(self.config.num_workers):
            self._fork_worker(f"w{i}", generation=1)
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="repro-cluster-gateway", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=30.0)
        if self._start_error is not None:
            raise self._start_error
        if self._bound is None:
            raise RuntimeError("gateway failed to start within 30s")
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._async_start())
        except BaseException as error:  # surface bind/connect failures
            self._start_error = error
            ready.set()
            loop.close()
            return
        ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _async_start(self) -> None:
        for handle in self._handles.values():
            await handle.connect(self._on_worker_down)
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self._bound = self._server.sockets[0].getsockname()[:2]

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown` (CLI mode)."""
        if self._thread is None:
            raise RuntimeError("call start() first")
        while self._thread.is_alive():
            self._thread.join(timeout=0.5)

    def shutdown(self, drain: bool = True) -> dict:
        """Graceful stop: 503 new work, close sessions, stop the fleet.

        Returns ``{"sessions": {id: path}}`` with the paths of sessions
        finalised during the drain, mirroring the single-process server.
        """
        if self._loop is None or self._thread is None or not self._thread.is_alive():
            self.registry.close(unlink=True)
            return {"sessions": {}, "drained": drain}
        future = asyncio.run_coroutine_threadsafe(self._async_shutdown(drain), self._loop)
        try:
            summary = future.result(timeout=self.config.shutdown_timeout_s)
        except Exception:  # pragma: no cover - drain stuck; force down
            summary = {"sessions": {}, "drained": False}
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        for handle in self._handles.values():
            handle.reap()
        self.registry.close(unlink=True)
        return summary

    async def _async_shutdown(self, drain: bool) -> dict:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Idle keep-alive connections would otherwise outlive the loop;
        # in-flight requests get a short grace period first.
        if self._connections:
            await asyncio.wait(list(self._connections), timeout=2.0)
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        finished: dict[str, list] = {}
        if drain:
            for record in list(self._records.values()):
                try:
                    final = await self._session_op(record, "session.close", {})
                    finished[record.session_id] = final["final"]["path"]
                except Exception:  # noqa: BLE001 - best effort during drain
                    pass
        self._records.clear()
        for handle in list(self._handles.values()):
            if not handle.alive:
                continue
            try:
                await handle.call({"op": "shutdown"}, timeout=5.0)
            except Exception:  # noqa: BLE001
                pass
            handle.close()
        return {"sessions": finished, "drained": drain}

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ----------------------------------------------------------- supervision
    async def _on_worker_down(self, handle: _WorkerHandle) -> None:
        """Reader-loop callback: a worker's socket went away."""
        if self._draining or self._handles.get(handle.name) is not handle:
            return
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, handle.reap)
        self.metrics.increment("worker_deaths_total")
        if self._respawns_used < self.config.respawn_limit:
            self._respawns_used += 1
            replacement = self._fork_worker(handle.name, handle.generation + 1)
            await replacement.connect(self._on_worker_down)
            self.metrics.increment("worker_respawns_total")
        else:
            # Budget exhausted: the name leaves the ring for good and its
            # sessions re-route (~1/N of all sessions move — consistent
            # hashing keeps the rest where they were).
            self._ring.remove(handle.name)
            self._handles.pop(handle.name, None)

    def _alive_handles(self) -> list[_WorkerHandle]:
        return [h for h in self._handles.values() if h.alive]

    def _pick_match_worker(self) -> _WorkerHandle:
        alive = self._alive_handles()
        if not alive:
            raise ClusterUnavailable("no live matcher workers")
        return min(alive, key=lambda h: (h.inflight, h.name))

    # ------------------------------------------------------------- admission
    def _check_draining(self) -> None:
        if self._draining:
            raise ClusterUnavailable("cluster is shutting down")

    def _admit(self) -> None:
        self._check_draining()
        if self._inflight_ops >= self.config.max_inflight:
            raise _HttpError(
                429,
                f"gateway at capacity ({self.config.max_inflight} in-flight ops)",
                headers={"Retry-After": str(max(1, round(self.config.retry_after_s)))},
                extra={"retry_after_s": self.config.retry_after_s},
            )

    async def _worker_call(self, handle: _WorkerHandle, op: dict) -> dict:
        self._inflight_ops += 1
        try:
            return await handle.call(op, timeout=self.config.op_timeout_s)
        finally:
            self._inflight_ops -= 1

    # --------------------------------------------------------------- /v1/match
    async def _match_on_worker(self, region: str, items: list) -> dict:
        last_error: Exception | None = None
        for _ in range(2):  # one failover to a sibling on worker death
            handle = self._pick_match_worker()
            try:
                return await self._worker_call(
                    handle, {"op": "match", "region": region, "trajectories": items}
                )
            except WorkerCrash as error:
                last_error = error
                await asyncio.sleep(0)  # let the supervisor respawn/remove
        # Two workers died under the same request: tell the caller to
        # back off and retry (503) instead of surfacing a hard 500.
        raise ClusterUnavailable(
            f"match failed on crashing workers ({last_error})"
        ) from last_error

    async def handle_match(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/match`` — cached, single-flighted, worker-dispatched."""
        self._admit()
        region = payload.get("region", DEFAULT_REGION)
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        self.registry.shard(region)  # 404 early on unknown regions
        body = payload.get("trajectories")
        single = False
        if body is None:
            body = [payload.get("points")]
            single = True
        if not isinstance(body, list) or not body:
            raise ProtocolError(
                "expected 'trajectories' (list of point lists) or 'points'"
            )
        keys = [_canonical_key(region, item) for item in body]
        slots: list[dict | None] = [None] * len(body)
        waiters: list[tuple[int, asyncio.Future]] = []
        misses: list[tuple[int, tuple]] = []
        claimed: dict[tuple, asyncio.Future] = {}
        use_cache = self.config.cache_size > 0
        loop = asyncio.get_running_loop()
        for i, key in enumerate(keys):
            if use_cache:
                cached = self._cache.get(key)
                if cached is not None:
                    self.metrics.increment("cache_hits_total")
                    slots[i] = cached
                    continue
                self.metrics.increment("cache_misses_total")
            pending = self._inflight_keys.get(key)
            if pending is not None:
                waiters.append((i, pending))
                continue
            future = loop.create_future()
            self._inflight_keys[key] = future
            claimed[key] = future
            misses.append((i, key))
        if misses:
            try:
                response = await self._match_on_worker(
                    region, [body[i] for i, _ in misses]
                )
            except Exception as error:
                for key, future in claimed.items():
                    self._inflight_keys.pop(key, None)
                    if not future.done():
                        future.set_exception(error)
                        future.exception()  # consume: waiters may be gone
                raise
            for (i, key), slot in zip(misses, response["results"]):
                slots[i] = slot
                future = claimed[key]
                self._inflight_keys.pop(key, None)
                if not future.done():
                    future.set_result(slot)
                if use_cache and slot.get("ok"):
                    self._cache.put(key, slot)
            for name, amount in (
                ("trajectories_matched", response.get("matched", 0)),
                ("match_degraded_total", response.get("degraded", 0)),
                ("match_failed_total", response.get("failed", 0)),
            ):
                if amount:
                    self.metrics.increment(name, amount)
        for i, future in waiters:
            slots[i] = await asyncio.shield(future)
        encoded: list[dict] = []
        for slot in slots:
            assert slot is not None
            if slot.get("ok"):
                encoded.append(slot["result"])
            else:
                error = dict(slot["error"])
                error.pop("status", None)
                encoded.append({"error": error})
        if single:
            slot = slots[0]
            if not slot.get("ok"):
                error = slot["error"]
                raise _HttpError(
                    int(error.get("status", 500)),
                    error.get("message", "match failed"),
                    extra={"code": error.get("code", "match_failure")},
                )
            return 200, {"result": encoded[0]}
        return 200, {"results": encoded}

    # -------------------------------------------------------------- sessions
    def _session_record(self, session_id: str) -> _SessionRecord:
        record = self._records.get(session_id)
        now = time.monotonic()
        if record is not None and now - record.last_touched > self.config.session_ttl_s:
            self._records.pop(session_id, None)
            self.metrics.increment("sessions_evicted_total")
            record = None
        if record is None:
            raise UnknownSessionError(session_id)
        return record

    async def _session_op(self, record: _SessionRecord, op: str, extra: dict) -> dict:
        """Run one session op on the session's owner, replaying on handoff."""
        base = {
            "op": op,
            "region": record.region,
            "session_id": record.session_id,
        }
        async with record.lock:
            for attempt in range(2):
                name = self._ring.route(record.session_id)
                handle = self._handles.get(name)
                if handle is None or not handle.alive:
                    if attempt == 0:
                        await asyncio.sleep(0.05)  # give the supervisor a beat
                        continue
                    raise ClusterUnavailable(
                        f"no live worker for session {record.session_id}"
                    )
                try:
                    if name != record.worker_name or handle.generation != record.generation:
                        await self._replay(record, handle)
                    return await self._worker_call(handle, {**base, **extra})
                except WorkerCrash as error:
                    if attempt == 1:
                        raise ClusterUnavailable(
                            f"session {record.session_id} lost its worker twice "
                            f"({error})"
                        ) from error
                except _WorkerOpError as error:
                    # The worker lost the session (backstop TTL eviction,
                    # lost handoff): rebuild it from the journal once.
                    if error.code != "unknown_session" or attempt == 1:
                        raise
                    record.generation = -1  # force a replay next round
        raise ClusterUnavailable("session operation could not be placed")

    async def _replay(self, record: _SessionRecord, handle: _WorkerHandle) -> None:
        """Deterministically rebuild a session on its (new) owner."""
        await self._worker_call(
            handle,
            {
                "op": "session.open",
                "region": record.region,
                "session_id": record.session_id,
                "lag": record.lag,
                "context_window": record.context_window,
            },
        )
        if record.journal:
            await self._worker_call(
                handle,
                {
                    "op": "session.feed",
                    "region": record.region,
                    "session_id": record.session_id,
                    "points": record.journal,
                },
            )
        record.worker_name = handle.name
        record.generation = handle.generation
        self.metrics.increment("sessions_replayed_total")

    async def handle_create_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions`` — admit and place a streaming session."""
        self._admit()
        region = payload.get("region", DEFAULT_REGION)
        if not isinstance(region, str):
            raise ProtocolError("field 'region' must be a string")
        self.registry.shard(region)
        lag = payload.get("lag")
        context_window = payload.get("context_window")
        for name, value in (("lag", lag), ("context_window", context_window)):
            if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
                raise ProtocolError(f"field {name!r} must be an integer")
        live = sum(
            1
            for r in self._records.values()
            if time.monotonic() - r.last_touched <= self.config.session_ttl_s
        )
        if live >= self.config.max_sessions:
            raise SessionLimitError(
                f"session limit reached ({self.config.max_sessions} live sessions)"
            )
        session_id = f"s{next(self._session_ids)}-{os.urandom(4).hex()}"
        name = self._ring.route(session_id)
        handle = self._handles.get(name)
        if handle is None or not handle.alive:
            raise ClusterUnavailable("no live worker to place the session on")
        try:
            opened = await self._worker_call(
                handle,
                {
                    "op": "session.open",
                    "region": region,
                    "session_id": session_id,
                    "lag": lag,
                    "context_window": context_window,
                },
            )
        except _WorkerOpError as error:
            if error.code == "protocol_error":  # e.g. lag < 1
                raise ProtocolError(str(error)) from error
            raise
        record = _SessionRecord(
            session_id=session_id,
            region=region,
            lag=opened["lag"],
            context_window=opened["context_window"],
            worker_name=name,
            generation=handle.generation,
            last_touched=time.monotonic(),
        )
        self._records[session_id] = record
        self.metrics.increment("sessions_created")
        return 201, {
            "session_id": session_id,
            "lag": opened["lag"],
            "context_window": opened["context_window"],
            "region": region,
            "worker": name,
        }

    async def handle_feed_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions/{id}/points`` — journal + forward the feed."""
        self._check_draining()
        record = self._session_record(match.group("sid"))
        points = payload.get("points")
        if not isinstance(points, list) or not points:
            raise ProtocolError("points: expected a non-empty list of points")
        state = await self._session_op(record, "session.feed", {"points": points})
        # Journal only after the worker accepted: a rejected feed (bad
        # payload, 4xx) must not poison a future replay.
        record.journal.extend(points)
        record.last_touched = time.monotonic()
        self.metrics.increment("points_fed", len(points))
        return 200, state["state"]

    async def handle_close_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``DELETE /v1/sessions/{id}`` — finalise and return the path."""
        record = self._session_record(match.group("sid"))
        final = await self._session_op(record, "session.close", {})
        self._records.pop(record.session_id, None)
        self.metrics.increment("sessions_closed")
        return 200, final["final"]

    # --------------------------------------------------------- observability
    async def handle_healthz(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /healthz`` — fleet liveness and shard inventory."""
        alive = len(self._alive_handles())
        counters = self.metrics.snapshot()["counters"]
        if self._draining:
            status = "draining"
        elif alive == 0:
            status = "down"
        elif alive < self.config.num_workers or counters.get("worker_deaths_total"):
            status = "degraded"
        else:
            status = "ok"
        return 200, {
            "status": status,
            "mode": "cluster",
            "protocol_version": protocol.PROTOCOL_VERSION,
            "regions": self.registry.regions,
            "workers_alive": alive,
            "workers_total": self.config.num_workers,
            "respawns_used": self._respawns_used,
            "respawn_limit": self.config.respawn_limit,
            "active_sessions": len(self._records),
            "inflight_ops": self._inflight_ops,
        }

    async def handle_metrics(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /metrics`` — gateway counters + per-worker stats probe."""
        snapshot = self.metrics.snapshot()
        for name in (
            "cache_hits_total",
            "cache_misses_total",
            "worker_deaths_total",
            "worker_respawns_total",
            "sessions_replayed_total",
        ):
            snapshot["counters"].setdefault(name, 0)
        workers = []
        for name, handle in sorted(self._handles.items()):
            info: dict = {
                "name": name,
                "pid": handle.process.pid,
                "alive": handle.alive,
                "generation": handle.generation,
                "inflight": handle.inflight,
                "requests_total": handle.requests_total,
            }
            if handle.alive:
                try:
                    stats = await handle.call({"op": "stats"}, timeout=5.0)
                    info["memory"] = stats.get("memory", {})
                    info["sessions"] = stats.get("sessions", {})
                    info["matched_total"] = stats.get("matched_total", 0)
                except (WorkerCrash, _WorkerOpError):  # racing a death
                    info["alive"] = False
            workers.append(info)
        snapshot["workers"] = workers
        snapshot["shards"] = self.registry.describe()
        snapshot["shared_artifact_bytes"] = self.registry.total_bytes()
        snapshot["cache"] = self._cache.stats()
        snapshot["sessions"] = {"active": len(self._records)}
        snapshot["cluster"] = {
            "workers_alive": len(self._alive_handles()),
            "workers_total": self.config.num_workers,
            "respawns_used": self._respawns_used,
            "respawn_limit": self.config.respawn_limit,
        }
        if self.config.extra_metrics:
            snapshot["extra"] = dict(self.config.extra_metrics)
        return 200, snapshot

    # ------------------------------------------------------------- http layer
    async def _dispatch(self, method: str, target: str, body: bytes) -> tuple[int, dict, dict]:
        started = time.perf_counter()
        endpoint = "unknown"
        status = 500
        headers: dict = {}
        try:
            for route_method, pattern, name in _ROUTES:
                if route_method != method:
                    continue
                matched = pattern.match(target.split("?", 1)[0])
                if matched is None:
                    continue
                endpoint = name
                payload = protocol.loads(body)
                if payload is None or not isinstance(payload, dict):
                    payload = {}
                handler = getattr(self, f"handle_{name}")
                status, response = await handler(payload, matched)
                break
            else:
                raise _HttpError(404, f"no route for {method} {target}")
        except ProtocolError as error:
            status, response = 400, {"error": str(error)}
        except InvalidTrajectoryInput as error:
            status, response = 422, {"error": str(error), "code": error.code}
        except UnknownSessionError as error:
            status, response = 404, {"error": f"unknown session {error.args[0]!r}"}
        except SessionLimitError as error:
            retry_after = self.config.retry_after_s
            headers["Retry-After"] = str(max(1, round(retry_after)))
            status, response = 429, {"error": str(error), "retry_after_s": retry_after}
        except _HttpError as error:
            status, response = error.status, {"error": str(error), **error.extra}
            headers.update(error.headers)
        except _WorkerOpError as error:
            status = error.status
            response = {"error": str(error), "code": error.code}
        except ClusterUnavailable as error:
            retry_after = self.config.retry_after_s
            headers["Retry-After"] = str(max(1, round(retry_after)))
            status, response = 503, {
                "error": str(error),
                "code": error.code,
                "retry_after_s": retry_after,
            }
        except ReproError as error:
            status = error.http_status
            response = {"error": str(error), "code": error.code}
        except Exception as error:  # noqa: BLE001 - the gateway must not die
            status, response = 500, {"error": f"internal error: {error}"}
        self.metrics.observe(endpoint, time.perf_counter() - started, status)
        return status, response, headers

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    writer.write(_http_response(400, {"error": "malformed request line"}, close=True))
                    await writer.drain()
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = -1
                if length < 0 or length > self.config.max_body_bytes:
                    writer.write(_http_response(413, {"error": "request body too large"}, close=True))
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                close = (
                    headers.get("connection", "").lower() == "close"
                    or version.upper() == "HTTP/1.0"
                )
                status, response, extra_headers = await self._dispatch(method, target, body)
                writer.write(_http_response(status, response, close=close, headers=extra_headers))
                await writer.drain()
                if close:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-request
        except asyncio.CancelledError:
            # Drain cancels idle keep-alive connections; finishing the
            # task normally keeps asyncio's stream teardown callbacks
            # (which re-read task.exception()) quiet.
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass


_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_response(
    status: int, payload: dict, close: bool = False, headers: dict | None = None
) -> bytes:
    body = protocol.dumps(payload)
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
        "Server: repro-cluster/" + str(protocol.PROTOCOL_VERSION),
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
