"""repro.serve — run LHMM as a long-lived map-matching service.

The first user-facing layer of the system: a daemon that keeps one fitted
matcher hot and serves two workloads over stdlib HTTP/JSON —

* **streaming sessions** — points arrive one at a time and fixed-lag
  commits stream back (:mod:`repro.serve.sessions` over
  :class:`~repro.core.online.OnlineLHMM`);
* **batch matching** — whole trajectories, micro-batched through
  ``match_many`` with bounded-queue backpressure
  (:mod:`repro.serve.batching`).

Start one in-process::

    from repro.serve import MatchingClient, MatchingServer, ServeConfig

    with MatchingServer(matcher, ServeConfig(port=0)) as server:
        client = MatchingClient(server.host, server.port)
        results = client.match([sample.cellular])

or from the command line: ``python -m repro serve --dataset city.json.gz
--model model.npz``.  Protocol and tuning guidance live in
``docs/serving.md``.
"""

from repro.serve.batching import Backpressure, MicroBatcher, ServiceClosed
from repro.serve.client import (
    MatchingClient,
    ServeClientError,
    ServerBusy,
    StreamingSession,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import MatchingServer, ServeConfig
from repro.serve.sessions import SessionLimitError, SessionManager, UnknownSessionError

__all__ = [
    "Backpressure",
    "MatchingClient",
    "MatchingServer",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClientError",
    "ServeConfig",
    "ServeMetrics",
    "ServerBusy",
    "ServiceClosed",
    "SessionLimitError",
    "SessionManager",
    "StreamingSession",
    "UnknownSessionError",
]
