"""repro.serve — run LHMM as a long-lived map-matching service.

The first user-facing layer of the system: a daemon that keeps one fitted
matcher hot and serves two workloads over stdlib HTTP/JSON —

* **streaming sessions** — points arrive one at a time and fixed-lag
  commits stream back (:mod:`repro.serve.sessions` over
  :class:`~repro.core.online.OnlineLHMM`);
* **batch matching** — whole trajectories, micro-batched through
  ``match_many`` with bounded-queue backpressure
  (:mod:`repro.serve.batching`).

Start one in-process::

    from repro.serve import MatchingClient, MatchingServer, ServeConfig

    with MatchingServer(matcher, ServeConfig(port=0)) as server:
        client = MatchingClient(server.host, server.port)
        results = client.match([sample.cellular])

or from the command line: ``python -m repro serve --dataset city.json.gz
--model model.npz``.  Protocol and tuning guidance live in
``docs/serving.md``.

For horizontal scale there is a second deployment shape: the sharded
**cluster** tier (:mod:`repro.serve.cluster`) — an asyncio gateway in
front of N forked matcher workers that attach every artifact from shared
memory (:mod:`repro.serve.shm`, :mod:`repro.serve.shards`), speaking the
same HTTP protocol plus a per-request ``region`` field.  The gateway is
self-healing (:mod:`repro.serve.control`): a supervision loop probes and
respawns workers, a queue-depth autoscaler sizes the fleet between
``--min-workers`` and ``--max-workers``, and ``POST /v1/admin/rollout``
swaps in a new artifact generation with zero downtime.

Both deployment shapes can also run a live **A/B test**
(:mod:`repro.serve.ab`): ``POST /v1/admin/ab`` loads a challenger
generation aside the champion and routes a deterministic hash-based
fraction of match traffic to it, with per-generation counters on
``/metrics`` and ``promote``/``abort`` endpoints to finalise.

Beyond one host, gateways **federate** (:mod:`repro.serve.federation`
over :mod:`repro.serve.transport`): each node owns a subset of regions,
advertises them over fenced TCP handshakes, proxies or 307-redirects
misrouted requests to the owner, and ships every streaming session's
point journal to one peer so a SIGKILLed gateway's sessions fail over
with a bit-identical committed path.  Workers can likewise dial the
gateway over TCP (``--transport tcp``) instead of inheriting a
socketpair, with generation-fenced check-ins so a stale worker never
serves after a respawn.
"""

from repro.serve.ab import (
    ABState,
    GenerationStats,
    canonical_key,
    routes_to_challenger,
    split_fraction,
)
from repro.serve.batching import Backpressure, MicroBatcher, ServiceClosed
from repro.serve.client import (
    MatchingClient,
    ServeClientError,
    ServeRedirect,
    ServerBusy,
    StreamingSession,
)
from repro.serve.cluster import (
    ClusterConfig,
    ClusterServer,
    ConsistentHashRing,
    SessionFenced,
)
from repro.serve.control import (
    AdmissionGate,
    AutoscalerPolicy,
    ControlJournal,
    CrashTracker,
)
from repro.serve.federation import FederationConfig, FederationRuntime, PeerSpec
from repro.serve.metrics import RollingWindow, ServeMetrics
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.server import MatchingServer, ServeConfig
from repro.serve.sessions import SessionLimitError, SessionManager, UnknownSessionError
from repro.serve.shards import DEFAULT_REGION, ShardRegistry, ShardSpec
from repro.serve.shm import SegmentJanitor, SharedArrayPack
from repro.serve.transport import (
    FenceRegistry,
    FrameListener,
    PeerLink,
    TransportConfig,
)

__all__ = [
    "ABState",
    "AdmissionGate",
    "AutoscalerPolicy",
    "Backpressure",
    "ClusterConfig",
    "ClusterServer",
    "ConsistentHashRing",
    "ControlJournal",
    "CrashTracker",
    "DEFAULT_REGION",
    "FederationConfig",
    "FederationRuntime",
    "FenceRegistry",
    "FrameListener",
    "GenerationStats",
    "MatchingClient",
    "MatchingServer",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "PeerLink",
    "PeerSpec",
    "ProtocolError",
    "RollingWindow",
    "SegmentJanitor",
    "ServeClientError",
    "ServeConfig",
    "ServeMetrics",
    "ServeRedirect",
    "ServerBusy",
    "ServiceClosed",
    "SessionFenced",
    "SessionLimitError",
    "SessionManager",
    "SharedArrayPack",
    "ShardRegistry",
    "ShardSpec",
    "StreamingSession",
    "TransportConfig",
    "UnknownSessionError",
    "canonical_key",
    "routes_to_challenger",
    "split_fraction",
]
