"""The region → artifact-set shard registry of the cluster tier.

One cluster deployment serves many cities: each *shard* is a region name
bound to a dataset (map + towers) and a trained model artifact
(:meth:`LHMM.save`'s validated ``.npz`` envelope), optionally with a
UBODT routing table.  The gateway loads and validates every artifact
exactly once, publishes all heavy numeric state into one shared-memory
segment per region (:class:`~repro.serve.shm.SharedArrayPack`), and
workers attach the segments read-only:

* model arrays — node embeddings, mined relation-graph counts, learner
  weights — straight from the envelope (so attached copies are
  bitwise-equal to the artifact contents by construction);
* the frozen road-network geometry tables and CSR adjacency
  (:meth:`RoadNetwork.shared_state_arrays`);
* the structured UBODT table, pre-sorted (:meth:`Ubodt.sorted_arrays`).

Workers are forked from the gateway, so they inherit the cheap Python
objects (segment dicts, grid index, tower list) copy-on-write and only
rebind the heavy arrays to the shared segment via the zero-copy attach
constructors (:meth:`RoadNetwork.adopt_shared_state`,
:meth:`LHMM.from_artifact_arrays`, :meth:`Ubodt.attach_sorted`).  The
result: N workers, one copy of every artifact.

**Generations** (zero-downtime rollout): a region's artifact set is
versioned.  :meth:`ShardRegistry.stage_model` publishes a *candidate*
generation into its own fresh segment next to the serving one;
:meth:`commit_staged` makes it the generation new worker forks will see,
returning the old shard so the control plane can :meth:`retire` it once
the last worker serving from it is gone.  :meth:`abort_staged` unlinks a
rejected candidate.  Old and new generations therefore coexist exactly
for the duration of a rolling swap, and a failure at any point leaves the
serving generation untouched.

Every published segment is also guarded by a
:class:`~repro.serve.shm.SegmentJanitor` — a separate process that
unlinks the segments if the whole fleet dies without running cleanup
(e.g. the gateway is SIGKILLed), so no deployment shape can leak
``/dev/shm`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArtifactIncompatible, UnknownRegion
from repro.serve.shm import SegmentJanitor, SharedArrayPack

#: The region used when a request does not name one.
DEFAULT_REGION = "default"


@dataclass(slots=True)
class ShardSpec:
    """One region's artifact set (all paths; nothing is loaded yet)."""

    region: str
    dataset: str
    model: str
    router: str = "dijkstra"
    ubodt_delta_m: float = 3000.0
    ubodt_table: str | None = None
    #: Which artifact weight set workers attach: ``"raw"`` (the trained
    #: weights) or ``"ema"`` (the trainer's shadow set, when present).
    weights: str = "raw"

    def __post_init__(self) -> None:
        if not self.region or "/" in self.region:
            raise ValueError(f"invalid region name {self.region!r}")
        if self.router not in ("dijkstra", "ubodt"):
            raise ValueError(f"unknown router {self.router!r}")
        if self.weights not in ("raw", "ema"):
            raise ValueError(f"unknown weight set {self.weights!r}")


@dataclass(slots=True)
class LoadedShard:
    """A published shard: fork-inheritable dataset + shared arrays."""

    spec: ShardSpec
    dataset: object  # MatchingDataset (typed loosely to keep imports light)
    pack: SharedArrayPack
    config_dict: dict
    model_keys: list[str] = field(default_factory=list)
    #: Monotonic artifact generation of this region (bumped per rollout).
    generation: int = 1


def _model_arrays(pack: SharedArrayPack, keys: list[str]) -> dict[str, np.ndarray]:
    return {key[len("model."):]: pack[key] for key in keys}


class ShardRegistry:
    """Loads, publishes, and attaches per-region artifact sets.

    Build with :meth:`publish` in the gateway process *before* forking
    workers; each worker then calls :meth:`attach_matcher` per region.
    The registry owns the segments: :meth:`close` (gateway side, at
    shutdown) unlinks them.
    """

    def __init__(self, shards: dict[str, LoadedShard], janitor: SegmentJanitor | None = None) -> None:
        self._shards = shards
        self._staged: dict[str, LoadedShard] = {}
        self._janitor = janitor
        self._closed = False

    # ------------------------------------------------------------ publishing
    @classmethod
    def publish(cls, specs: list[ShardSpec], janitor: bool = True) -> "ShardRegistry":
        """Load every spec's artifacts and publish them to shared memory.

        Raises the artifact taxonomy errors (:class:`ArtifactCorrupt`,
        :class:`ArtifactIncompatible`, ``FileNotFoundError``) eagerly —
        a cluster must fail at startup, not on the first request, when an
        artifact is bad.  With ``janitor`` (the default) a
        :class:`~repro.serve.shm.SegmentJanitor` process guards the
        segments against an uncleanly-dying fleet.
        """
        if not specs:
            raise ValueError("a cluster needs at least one shard spec")
        shards: dict[str, LoadedShard] = {}
        try:
            for spec in specs:
                if spec.region in shards:
                    raise ValueError(f"duplicate region {spec.region!r}")
                shards[spec.region] = cls._load_shard(spec)
        except BaseException:
            # A failed startup must not strand the segments already
            # published for earlier specs — unlink them before re-raising.
            for shard in shards.values():
                shard.pack.unlink()
                shard.pack.close()
            raise
        guard = SegmentJanitor() if janitor else None
        registry = cls(shards, janitor=guard)
        if guard is not None:
            for shard in shards.values():
                guard.add(shard.pack.segment_name)
        return registry

    def guard_fds(self) -> tuple[int, ...]:
        """Janitor pipe write fds a *remote-transport* worker must close.

        Socketpair workers deliberately inherit (and keep) the janitor's
        write end so the segments survive until the whole local fleet is
        gone.  TCP workers must not: cleanup keys on the gateway alone,
        so segments are reaped even when the gateway dies before any
        worker forked.  The fork child closes every fd returned here
        (see ``cluster._worker_main_tcp``); the gateway's own copies are
        untouched.
        """
        if self._janitor is None or self._janitor.guard_fd is None:
            return ()
        return (self._janitor.guard_fd,)

    @classmethod
    def _load_shard(
        cls,
        spec: ShardSpec,
        dataset=None,
        reuse_pack: SharedArrayPack | None = None,
        generation: int = 1,
    ) -> LoadedShard:
        """Load one spec's artifacts into a freshly published pack.

        ``dataset``/``reuse_pack`` serve the rollout path: a new model
        generation for an already-served region reuses the loaded dataset
        object and copies the (immutable) ``net.*``/``ubodt.*`` arrays
        from the serving generation's segment instead of recomputing
        them — exact by construction, and cheap.
        """
        from repro.core.matcher import LHMM
        from repro.datasets import load_dataset
        from repro.network.ubodt import Ubodt
        from repro.nn.serialization import read_artifact

        if dataset is None:
            dataset = load_dataset(spec.dataset)
        artifact = read_artifact(spec.model, kind=LHMM.MODEL_KIND, allow_legacy=True)
        config_dict = (artifact.meta or {}).get("config")
        if not isinstance(config_dict, dict):
            raise ArtifactIncompatible(
                f"{spec.model}: artifact manifest carries no model "
                "configuration (cluster serving needs a manifest envelope)"
            )
        if spec.weights == "ema" and "ema.node_embeddings" not in artifact.arrays:
            raise ArtifactIncompatible(
                f"{spec.model}: artifact carries no EMA shadow weight set "
                "(available weights: raw only — was it written by an older "
                "build?)"
            )
        arrays: dict[str, np.ndarray] = {
            f"model.{key}": value for key, value in artifact.arrays.items()
        }
        model_keys = list(arrays)
        meta_extra: dict = {}
        if reuse_pack is not None:
            for key in reuse_pack.arrays:
                if key.startswith(("net.", "ubodt.")):
                    arrays[key] = reuse_pack[key]
            if "ubodt_delta_m" in reuse_pack.meta:
                meta_extra["ubodt_delta_m"] = reuse_pack.meta["ubodt_delta_m"]
        else:
            arrays.update(
                {
                    f"net.{key}": value
                    for key, value in dataset.network.shared_state_arrays().items()
                }
            )
            if spec.router == "ubodt":
                if spec.ubodt_table is not None:
                    table = Ubodt.load(spec.ubodt_table)
                else:
                    table = Ubodt.build(dataset.network, spec.ubodt_delta_m)
                arrays.update(
                    {f"ubodt.{k}": v for k, v in table.sorted_arrays().items()}
                )
                meta_extra["ubodt_delta_m"] = table.delta_m
        pack = SharedArrayPack.publish(arrays)
        pack.meta.update(meta_extra)
        return LoadedShard(
            spec=spec,
            dataset=dataset,
            pack=pack,
            config_dict=config_dict,
            model_keys=model_keys,
            generation=generation,
        )

    # ----------------------------------------------------------- generations
    def stage_model(
        self, region: str, model: str | None = None, weights: str | None = None
    ) -> LoadedShard:
        """Publish a candidate artifact generation for ``region``.

        Loads and validates the artifact at ``model`` (default: the
        region's configured path, re-read from disk), publishes it into a
        fresh segment, and parks it as the region's *staged* shard.
        ``weights`` selects the candidate's weight set (default: keep the
        region's current selection).  The serving generation is
        untouched; call :meth:`commit_staged` or :meth:`abort_staged` to
        resolve.  Raises the artifact taxonomy errors on a bad candidate
        — in which case nothing was staged.
        """
        current = self.shard(region)
        previous = self._staged.pop(region, None)
        if previous is not None:  # replaced before resolution: unlink it
            previous.pack.unlink()
            previous.pack.close()
            if self._janitor is not None:
                self._janitor.remove(previous.pack.segment_name)
        spec = ShardSpec(
            region=current.spec.region,
            dataset=current.spec.dataset,
            model=model if model is not None else current.spec.model,
            router=current.spec.router,
            ubodt_delta_m=current.spec.ubodt_delta_m,
            ubodt_table=current.spec.ubodt_table,
            weights=weights if weights is not None else current.spec.weights,
        )
        staged = self._load_shard(
            spec,
            dataset=current.dataset,
            reuse_pack=current.pack,
            generation=current.generation + 1,
        )
        self._staged[region] = staged
        if self._janitor is not None:
            self._janitor.add(staged.pack.segment_name)
        return staged

    def staged(self, region: str) -> LoadedShard | None:
        """The staged (uncommitted) shard for ``region``, if any."""
        return self._staged.get(region)

    def commit_staged(self, region: str) -> LoadedShard:
        """Make the staged generation the serving one; returns the old.

        New worker forks see the committed generation immediately.  The
        returned (previous) shard stays valid — workers forked before the
        commit still serve from it — until the caller :meth:`retire`\\ s
        it after the rolling swap completes.
        """
        staged = self._staged.pop(region, None)
        if staged is None:
            raise ValueError(f"region {region!r} has no staged generation")
        old = self._shards[region]
        self._shards[region] = staged
        return old

    def abort_staged(self, region: str) -> None:
        """Unlink and drop a rejected candidate generation (idempotent)."""
        staged = self._staged.pop(region, None)
        if staged is None:
            return
        staged.pack.unlink()
        staged.pack.close()
        if self._janitor is not None:
            self._janitor.remove(staged.pack.segment_name)

    def retire(self, shard: LoadedShard) -> None:
        """Unlink a replaced generation's segment (after its last worker)."""
        shard.pack.unlink()
        shard.pack.close()
        if self._janitor is not None:
            self._janitor.remove(shard.pack.segment_name)

    def staged_view(self, region: str) -> "ShardRegistry":
        """A registry view where ``region`` serves its staged generation.

        For the rollout canary: fork the probe worker against this view
        and it attaches the candidate segment while every other region —
        and every other worker — keeps serving the committed state.  The
        view does not own anything: never ``close`` it.
        """
        staged = self._staged.get(region)
        if staged is None:
            raise ValueError(f"region {region!r} has no staged generation")
        return ShardRegistry({**self._shards, region: staged}, janitor=None)

    def generations(self) -> dict[str, int]:
        """Serving artifact generation per region."""
        return {region: shard.generation for region, shard in self._shards.items()}

    # --------------------------------------------------------------- queries
    @property
    def regions(self) -> list[str]:
        """Served region names, in registration order."""
        return list(self._shards)

    def shard(self, region: str) -> LoadedShard:
        """The shard for ``region``; raises :class:`UnknownRegion`."""
        try:
            return self._shards[region]
        except KeyError:
            served = ", ".join(self._shards) or "<none>"
            raise UnknownRegion(
                f"region {region!r} is not served here (regions: {served})"
            ) from None

    def describe(self) -> dict:
        """Per-region segment facts for ``/metrics`` and ``/healthz``."""
        return {
            region: {
                "segment": shard.pack.segment_name,
                "bytes": shard.pack.nbytes,
                "arrays": len(shard.pack.meta["arrays"]),
                "router": shard.spec.router,
                "model": shard.spec.model,
                "weights": shard.spec.weights,
                "generation": shard.generation,
            }
            for region, shard in self._shards.items()
        }

    def total_bytes(self) -> int:
        """Published artifact bytes across all regions (one copy each)."""
        return sum(shard.pack.nbytes for shard in self._shards.values())

    # ----------------------------------------------------------- worker side
    def attach_matcher(self, region: str):
        """Build a region's matcher over the shared segment (worker side).

        Re-attaches the segment (getting this process its own read-only
        mapping, deregistered from its resource tracker) and constructs
        an :class:`LHMM` whose network tables, embeddings, weights, and
        optional UBODT all reference the shared buffers.  Results are
        byte-identical to a matcher loaded directly from the artifact:
        the attached arrays are bitwise-equal to the envelope contents.
        """
        from repro.core.config import LHMMConfig
        from repro.core.matcher import LHMM
        from repro.network.ubodt import Ubodt, UbodtRouter

        shard = self.shard(region)
        pack = SharedArrayPack.attach(shard.pack.meta)
        network = shard.dataset.network
        network.adopt_shared_state(
            {key[len("net."):]: pack[key] for key in pack.arrays if key.startswith("net.")}
        )
        try:
            config = LHMMConfig(**shard.config_dict)
            config.validate()
        except (TypeError, ValueError) as error:
            raise ArtifactIncompatible(
                f"{shard.spec.model}: stored configuration is not usable by "
                f"this build ({error})"
            ) from error
        matcher = LHMM.from_artifact_arrays(
            _model_arrays(pack, shard.model_keys),
            config,
            shard.dataset,
            origin=shard.spec.model,
            weights=shard.spec.weights,
        )
        if shard.spec.router == "ubodt":
            table = Ubodt.attach_sorted(
                pack.meta["ubodt_delta_m"],
                {
                    key[len("ubodt."):]: pack[key]
                    for key in pack.arrays
                    if key.startswith("ubodt.")
                },
            )
            matcher.use_router(UbodtRouter(network, table, fallback=shard.dataset.engine))
        return matcher, pack

    # ------------------------------------------------------------- lifecycle
    def close(self, unlink: bool = False) -> None:
        """Drop mappings; with ``unlink`` (owner/gateway) remove segments.

        Idempotent — the cluster's atexit backstop and an explicit
        shutdown may both call it.  Staged-but-unresolved generations are
        unlinked too (they can have no consumers).
        """
        if self._closed:
            return
        self._closed = True
        for region in list(self._staged):
            if unlink:
                self.abort_staged(region)
            else:
                staged = self._staged.pop(region)
                staged.pack.close()
        for shard in self._shards.values():
            if unlink and shard.pack.owner:
                shard.pack.unlink()
            shard.pack.close()
        if self._janitor is not None:
            self._janitor.quit()
            self._janitor = None
