"""A small stdlib HTTP client for the matching service.

Mirrors the server's endpoints one method each, speaking the JSON
protocol of :mod:`repro.serve.protocol`.  Errors map onto exceptions:
HTTP 429 raises :class:`ServerBusy` (carrying ``Retry-After``), any other
non-2xx raises :class:`ServeClientError`.  A convenience
:meth:`MatchingClient.match_with_retry` backs off on anything transient —
429 backpressure, 503 during a drain or worker-fleet outage, and
connection resets from a restarting server — so rolling restarts are
invisible to callers.

By default the client opens one connection per request (simple,
thread-safe).  With ``keep_alive=True`` it holds one persistent
connection and pipelines requests over it (reconnecting transparently
when the server closed it between requests) — markedly faster against
the asyncio cluster gateway, but then an instance must not be shared
across threads.
"""

from __future__ import annotations

import http.client
import random
import time
from typing import Iterable, Sequence

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.serve import protocol


class ServeClientError(RuntimeError):
    """Non-2xx response from the matching service."""

    def __init__(self, status: int, message: str, payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServerBusy(ServeClientError):
    """HTTP 429 — the service is shedding load; retry after a delay."""

    def __init__(self, status: int, message: str, payload: dict, retry_after_s: float) -> None:
        super().__init__(status, message, payload)
        self.retry_after_s = retry_after_s


def _as_point_payload(point) -> dict:
    if isinstance(point, TrajectoryPoint):
        return protocol.encode_point(point)
    if isinstance(point, dict):
        return point
    raise TypeError(f"cannot encode {type(point).__name__} as a trajectory point")


def _as_trajectory_payload(trajectory) -> list[dict]:
    if isinstance(trajectory, Trajectory):
        return protocol.encode_trajectory(trajectory)
    return [_as_point_payload(p) for p in trajectory]


class StreamingSession:
    """Client-side handle for one server session (context manager).

    ``feed`` returns the server's committed state; ``close`` returns the
    final path and invalidates the handle.
    """

    def __init__(self, client: "MatchingClient", session_id: str, lag: int) -> None:
        self.client = client
        self.session_id = session_id
        self.lag = lag
        self._final: dict | None = None

    def feed(self, points: Iterable[TrajectoryPoint] | TrajectoryPoint) -> dict:
        """Send one point or a list of points; returns committed state."""
        if isinstance(points, (TrajectoryPoint, dict)):
            points = [points]
        return self.client.feed_points(self.session_id, list(points))

    def close(self) -> list[int]:
        """Finalise the session and return the complete matched path."""
        if self._final is None:
            self._final = self.client.close_session(self.session_id)
        return self._final["path"]

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        if exc_type is None and self._final is None:
            self.close()


class MatchingClient:
    """Talks to a :class:`~repro.serve.server.MatchingServer`."""

    #: Connection-level failures a retrying caller should treat like a
    #: transient server blip (restart, drain-close, half-open socket).
    TRANSIENT_ERRORS = (
        ConnectionResetError,
        ConnectionRefusedError,
        ConnectionAbortedError,
        BrokenPipeError,
        http.client.RemoteDisconnected,
        http.client.CannotSendRequest,
    )

    def __init__(
        self, host: str, port: int, timeout: float = 60.0, keep_alive: bool = False
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._connection: http.client.HTTPConnection | None = None

    # --------------------------------------------------------------- plumbing
    def _connect(self) -> http.client.HTTPConnection:
        if not self.keep_alive:
            return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _drop_connection(self, connection: http.client.HTTPConnection) -> None:
        connection.close()
        if connection is self._connection:
            self._connection = None

    def close(self) -> None:
        """Drop the persistent connection (no-op without ``keep_alive``)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = protocol.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        attempts = 2 if self.keep_alive else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except self.TRANSIENT_ERRORS:
                # A reused connection the server closed between requests
                # fails on first use: retry once on a fresh socket.  A
                # per-request connection has nothing to retry here.
                self._drop_connection(connection)
                if attempt == attempts - 1:
                    raise
                continue
            except Exception:
                self._drop_connection(connection)
                raise
            break
        if not self.keep_alive or response.will_close:
            self._drop_connection(connection)
        try:
            parsed = protocol.loads(raw) if raw else {}
        except protocol.ProtocolError:
            parsed = {"error": raw.decode("utf-8", "replace")}
        if 200 <= response.status < 300:
            return parsed
        message = parsed.get("error", response.reason)
        if response.status == 429:
            retry_after = parsed.get(
                "retry_after_s", float(response.headers.get("Retry-After") or 1.0)
            )
            raise ServerBusy(response.status, message, parsed, float(retry_after))
        raise ServeClientError(response.status, message, parsed)

    # -------------------------------------------------------------- streaming
    def create_session(
        self,
        lag: int | None = None,
        context_window: int | None = None,
        region: str | None = None,
    ) -> StreamingSession:
        """Open a streaming session; returns a handle.

        ``region`` selects the shard on a multi-city cluster gateway; the
        single-process server serves one implicit region and ignores it.
        """
        payload: dict = {}
        if lag is not None:
            payload["lag"] = lag
        if context_window is not None:
            payload["context_window"] = context_window
        if region is not None:
            payload["region"] = region
        response = self._request("POST", "/v1/sessions", payload)
        return StreamingSession(self, response["session_id"], response["lag"])

    def feed_points(self, session_id: str, points: Sequence) -> dict:
        """Feed points into a session; returns committed state."""
        payload = {"points": [_as_point_payload(p) for p in points]}
        return self._request("POST", f"/v1/sessions/{session_id}/points", payload)

    def close_session(self, session_id: str) -> dict:
        """Finalise a session; returns ``{"path": [...], "points": n}``."""
        return self._request("DELETE", f"/v1/sessions/{session_id}")

    # ------------------------------------------------------------------ batch
    def match(self, trajectories, region: str | None = None) -> list[dict]:
        """Match one trajectory or a list of them.

        Accepts :class:`Trajectory` objects, point lists, or pre-encoded
        payloads; always returns a list of result dicts (``path``,
        ``matched_sequence``, ``score``) in input order.  ``region``
        selects the shard on a cluster gateway (ignored by the
        single-process server).
        """
        single = isinstance(trajectories, Trajectory) or (
            isinstance(trajectories, (list, tuple))
            and trajectories
            and isinstance(trajectories[0], (TrajectoryPoint, dict))
        )
        if single:
            trajectories = [trajectories]
        payload: dict = {"trajectories": [_as_trajectory_payload(t) for t in trajectories]}
        if region is not None:
            payload["region"] = region
        return self._request("POST", "/v1/match", payload)["results"]

    def match_with_retry(
        self,
        trajectories,
        max_attempts: int = 8,
        base_delay_s: float = 0.25,
        max_delay_s: float = 5.0,
        deadline_s: float = 60.0,
        sleep=time.sleep,
        clock=time.monotonic,
        rng: random.Random | None = None,
        region: str | None = None,
    ) -> list[dict]:
        """Like :meth:`match`, with capped exponential backoff on transient failures.

        Retryable conditions are exactly the ones a healthy deployment
        produces in passing: 429 backpressure (:class:`ServerBusy`), 503
        while a server drains or its worker fleet respawns, and
        connection-level resets/refusals from a process mid-restart.
        Anything else — 4xx input errors, 500s — raises immediately;
        retrying those would only repeat the failure.

        The wait before attempt *n* is ``base_delay_s * 2**n`` (never below
        the server's ``Retry-After``, never above ``max_delay_s``) with
        full jitter — a multiplier drawn from ``[0.5, 1.0]`` so a herd of
        shed clients does not re-arrive in lockstep.  ``deadline_s`` caps
        the *total* time spent retrying: unlike a bare attempt counter, it
        bounds worst-case latency even when the server keeps answering 429
        with large ``Retry-After`` values.  Raises the last retryable
        error when attempts or the deadline run out.
        """
        rng = rng or random.Random()
        started = clock()
        for attempt in range(max_attempts):
            try:
                return self.match(trajectories, region=region)
            except (ServeClientError, *self.TRANSIENT_ERRORS) as error:
                retry_after = 0.0
                if isinstance(error, ServerBusy):
                    retry_after = error.retry_after_s
                elif isinstance(error, ServeClientError):
                    if error.status != 503:
                        raise  # non-transient HTTP failure
                    retry_after = float(error.payload.get("retry_after_s", 0.0))
                if attempt == max_attempts - 1:
                    raise
                delay = min(max_delay_s, base_delay_s * (2.0 ** attempt))
                delay = max(delay, retry_after)
                delay = min(delay, max_delay_s)
                delay *= 0.5 + 0.5 * rng.random()
                if clock() - started + delay > deadline_s:
                    raise
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ admin
    def reload_model(self, model: str | None = None) -> dict:
        """``POST /v1/admin/reload-model`` — hot-swap the serving model.

        Pass ``model`` to point the server at a different artifact path.
        Returns the reload summary (``generation``, ``model_path``);
        raises :class:`ServeClientError` when the reload was refused
        (corrupt/incompatible artifact, failed canary) — the old model
        keeps serving in that case.
        """
        payload = {} if model is None else {"model": model}
        return self._request("POST", "/v1/admin/reload-model", payload)

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")
