"""A small stdlib HTTP client for the matching service.

Mirrors the server's endpoints one method each, speaking the JSON
protocol of :mod:`repro.serve.protocol`.  Errors map onto exceptions:
an overload answer — 503 + ``Retry-After`` (``server_overloaded``), or
the legacy 429 — raises :class:`ServerBusy` carrying the server's retry
hint; any other non-2xx raises :class:`ServeClientError`.  A convenience
:meth:`MatchingClient.match_with_retry` backs off on anything transient —
overload shedding, 503 during a drain or worker-fleet outage, and
connection resets from a restarting server — so rolling restarts are
invisible to callers.

By default the client opens one connection per request (simple,
thread-safe).  With ``keep_alive=True`` it holds one persistent
connection and pipelines requests over it (reconnecting transparently
when the server closed it between requests) — markedly faster against
the asyncio cluster gateway, but then an instance must not be shared
across threads.
"""

from __future__ import annotations

import http.client
import random
import time
from typing import Iterable, Sequence

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.serve import protocol


class ServeClientError(RuntimeError):
    """Non-2xx response from the matching service."""

    def __init__(self, status: int, message: str, payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServerBusy(ServeClientError):
    """The service is shedding load (503/429 + ``Retry-After``); retry later."""

    def __init__(self, status: int, message: str, payload: dict, retry_after_s: float) -> None:
        super().__init__(status, message, payload)
        self.retry_after_s = retry_after_s


class ServeRedirect(ServeClientError):
    """The resource lives on another gateway (3xx + ``Location``).

    A federated cluster answers ``307 Temporary Redirect`` for sessions
    and (in redirect routing mode) matches whose region another gateway
    owns.  :meth:`MatchingClient.match_with_retry` and the session
    methods follow these automatically (capped hops); a caller using the
    raw methods can catch this and re-point the client at
    :attr:`location`.
    """

    def __init__(self, status: int, message: str, payload: dict, location: str) -> None:
        super().__init__(status, message, payload)
        self.location = location


def _as_point_payload(point) -> dict:
    if isinstance(point, TrajectoryPoint):
        return protocol.encode_point(point)
    if isinstance(point, dict):
        return point
    raise TypeError(f"cannot encode {type(point).__name__} as a trajectory point")


def _as_trajectory_payload(trajectory) -> list[dict]:
    if isinstance(trajectory, Trajectory):
        return protocol.encode_trajectory(trajectory)
    return [_as_point_payload(p) for p in trajectory]


class StreamingSession:
    """Client-side handle for one server session (context manager).

    ``feed`` returns the server's committed state; ``close`` returns the
    final path and invalidates the handle.
    """

    def __init__(self, client: "MatchingClient", session_id: str, lag: int) -> None:
        self.client = client
        self.session_id = session_id
        self.lag = lag
        self._final: dict | None = None
        #: Monotonic feed sequence number: sent with every feed and only
        #: advanced on success, so a failover retry of the same batch is
        #: deduplicated server-side instead of double-committing points.
        self._seq = 0

    def feed(self, points: Iterable[TrajectoryPoint] | TrajectoryPoint) -> dict:
        """Send one point or a list of points; returns committed state."""
        if isinstance(points, (TrajectoryPoint, dict)):
            points = [points]
        state = self.client.feed_points(self.session_id, list(points), seq=self._seq)
        self._seq += 1
        return state

    def close(self) -> list[int]:
        """Finalise the session and return the complete matched path."""
        if self._final is None:
            self._final = self.client.close_session(self.session_id)
        return self._final["path"]

    def __enter__(self) -> "StreamingSession":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        if exc_type is None and self._final is None:
            self.close()


class MatchingClient:
    """Talks to a :class:`~repro.serve.server.MatchingServer`."""

    #: Connection-level failures a retrying caller should treat like a
    #: transient server blip (restart, drain-close, half-open socket).
    TRANSIENT_ERRORS = (
        ConnectionResetError,
        ConnectionRefusedError,
        ConnectionAbortedError,
        BrokenPipeError,
        http.client.RemoteDisconnected,
        http.client.CannotSendRequest,
    )

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        keep_alive: bool = False,
        fallbacks: Sequence[tuple[str, int]] = (),
        failover_deadline_s: float = 20.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        #: Peer gateway addresses to rotate through when the primary is
        #: unreachable (federated deployments).  Session ops fail over
        #: here — the peer holding the replicated journal adopts the
        #: session and the stream continues bit-identically.
        self.fallbacks = tuple(fallbacks)
        #: Total wall-clock budget one failover-capable request may spend
        #: across redirects, target rotation, and Retry-After waits.
        self.failover_deadline_s = failover_deadline_s
        self._connection: http.client.HTTPConnection | None = None

    # --------------------------------------------------------------- plumbing
    def _connect(self) -> http.client.HTTPConnection:
        if not self.keep_alive:
            return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def _drop_connection(self, connection: http.client.HTTPConnection) -> None:
        connection.close()
        if connection is self._connection:
            self._connection = None

    def close(self) -> None:
        """Drop the persistent connection (no-op without ``keep_alive``)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        body = protocol.dumps(payload) if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        attempts = 2 if self.keep_alive else 1
        for attempt in range(attempts):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except self.TRANSIENT_ERRORS:
                # A reused connection the server closed between requests
                # fails on first use: retry once on a fresh socket.  A
                # per-request connection has nothing to retry here.
                self._drop_connection(connection)
                if attempt == attempts - 1:
                    raise
                continue
            except Exception:
                self._drop_connection(connection)
                raise
            break
        if not self.keep_alive or response.will_close:
            self._drop_connection(connection)
        try:
            parsed = protocol.loads(raw) if raw else {}
        except protocol.ProtocolError:
            parsed = {"error": raw.decode("utf-8", "replace")}
        if 200 <= response.status < 300:
            return parsed
        message = parsed.get("error", response.reason)
        if response.status in (301, 302, 307, 308):
            location = response.headers.get("Location") or parsed.get("location")
            if location:
                raise ServeRedirect(response.status, message, parsed, location)
        if response.status in (429, 503):
            # Overload answers carry a retry hint; surface them as
            # ServerBusy so retry loops can honour it.  A 503 without any
            # hint (e.g. an intermediary) stays a plain ServeClientError.
            retry_after = parsed.get("retry_after_s")
            if retry_after is None:
                header = response.headers.get("Retry-After")
                if header is not None:
                    retry_after = float(header)
                elif response.status == 429:
                    retry_after = 1.0
            if retry_after is not None:
                raise ServerBusy(response.status, message, parsed, float(retry_after))
        raise ServeClientError(response.status, message, parsed)

    # -------------------------------------------------------------- failover
    def _retarget(self, host: str, port: int) -> None:
        """Re-point this client at another gateway (sticks for later calls)."""
        if (host, port) == (self.host, self.port):
            return
        self.close()
        self.host = host
        self.port = port

    @staticmethod
    def _parse_location(location: str, default_path: str) -> tuple[str, int, str]:
        from urllib.parse import urlsplit

        parts = urlsplit(location)
        host = parts.hostname
        if host is None:
            raise ServeClientError(502, f"unparseable redirect location {location!r}")
        path = parts.path or default_path
        if parts.query:
            path = f"{path}?{parts.query}"
        return host, parts.port or 80, path

    def _request_failover(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        max_redirect_hops: int = 4,
    ) -> dict:
        """:meth:`_request` with redirects, target rotation, and 503 waits.

        Follows ``307`` redirects (capped at ``max_redirect_hops``, the
        client retargeting itself so the stream stays on the owner), and
        on transient transport failures — resets, refusals, *and* read
        timeouts from a half-open TCP connection to a stopped host —
        rotates through ``[primary, *fallbacks]`` with a short backoff.
        ``503 + Retry-After`` (partitioned region, drain) waits and
        retries.  Everything is bounded by ``failover_deadline_s``; when
        the budget runs out the last error is raised.
        """
        deadline = time.monotonic() + self.failover_deadline_s
        targets = [(self.host, self.port), *self.fallbacks]
        hops = 0
        rotations = 0
        while True:
            try:
                return self._request(method, path, payload)
            except ServeRedirect as error:
                hops += 1
                if hops > max_redirect_hops:
                    raise
                host, port, path = self._parse_location(error.location, path)
                self._retarget(host, port)
            except ServerBusy as error:
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise
                time.sleep(min(max(error.retry_after_s, 0.05), 2.0, remaining))
            except (*self.TRANSIENT_ERRORS, TimeoutError):
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise
                rotations += 1
                host, port = targets[rotations % len(targets)]
                self._retarget(host, port)
                time.sleep(min(0.05 * min(rotations, 8), 1.0, max(0.0, remaining)))

    # -------------------------------------------------------------- streaming
    def create_session(
        self,
        lag: int | None = None,
        context_window: int | None = None,
        region: str | None = None,
    ) -> StreamingSession:
        """Open a streaming session; returns a handle.

        ``region`` selects the shard on a multi-city cluster gateway; the
        single-process server serves one implicit region and ignores it.
        """
        payload: dict = {}
        if lag is not None:
            payload["lag"] = lag
        if context_window is not None:
            payload["context_window"] = context_window
        if region is not None:
            payload["region"] = region
        response = self._request_failover("POST", "/v1/sessions", payload)
        return StreamingSession(self, response["session_id"], response["lag"])

    def feed_points(self, session_id: str, points: Sequence, seq: int | None = None) -> dict:
        """Feed points into a session; returns committed state.

        ``seq`` (a client-side monotonic counter) makes the feed
        idempotent: a retry of an already-accepted ``seq`` — e.g. after a
        timeout whose request actually landed, or against the gateway
        that adopted the session — returns the committed state without
        feeding the points twice.
        """
        payload: dict = {"points": [_as_point_payload(p) for p in points]}
        if seq is not None:
            payload["seq"] = seq
        return self._request_failover(
            "POST", f"/v1/sessions/{session_id}/points", payload
        )

    def close_session(self, session_id: str) -> dict:
        """Finalise a session; returns ``{"path": [...], "points": n}``."""
        return self._request_failover("DELETE", f"/v1/sessions/{session_id}")

    # ------------------------------------------------------------------ batch
    def match(
        self,
        trajectories,
        region: str | None = None,
        deadline_ms: float | None = None,
    ) -> list[dict]:
        """Match one trajectory or a list of them.

        Accepts :class:`Trajectory` objects, point lists, or pre-encoded
        payloads; always returns a list of result dicts (``path``,
        ``matched_sequence``, ``score``) in input order.  ``region``
        selects the shard on a cluster gateway (ignored by the
        single-process server).  ``deadline_ms`` is the total budget the
        caller grants the server: a cluster gateway sheds the request
        with 504 once it expires (queued or mid-flight) rather than
        burning worker time on an answer nobody is waiting for.
        """
        single = isinstance(trajectories, Trajectory) or (
            isinstance(trajectories, (list, tuple))
            and trajectories
            and isinstance(trajectories[0], (TrajectoryPoint, dict))
        )
        if single:
            trajectories = [trajectories]
        payload: dict = {"trajectories": [_as_trajectory_payload(t) for t in trajectories]}
        if region is not None:
            payload["region"] = region
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self._request("POST", "/v1/match", payload)["results"]

    def match_with_retry(
        self,
        trajectories,
        max_attempts: int = 8,
        base_delay_s: float = 0.25,
        max_delay_s: float = 5.0,
        deadline_s: float = 60.0,
        sleep=time.sleep,
        clock=time.monotonic,
        rng: random.Random | None = None,
        region: str | None = None,
        deadline_ms: float | None = None,
        max_redirect_hops: int = 4,
    ) -> list[dict]:
        """Like :meth:`match`, with capped exponential backoff on transient failures.

        Retryable conditions are exactly the ones a healthy deployment
        produces in passing: overload shedding (:class:`ServerBusy` —
        503/429 + ``Retry-After``), 503 while a server drains or its
        worker fleet respawns, and connection-level resets/refusals from
        a process mid-restart.  Anything else — 4xx input errors, 500s —
        raises immediately; retrying those would only repeat the failure.

        The wait before attempt *n* is ``base_delay_s * 2**n`` (never below
        the server's ``Retry-After``, never above ``max_delay_s``) with
        full jitter — a multiplier drawn from ``[0.5, 1.0]`` so a herd of
        shed clients does not re-arrive in lockstep.  ``deadline_s`` caps
        the *total* time spent retrying: every sleep — including one
        stretched by a server-sent ``Retry-After`` — is clipped to the
        remaining budget, so a large hint never forfeits the final
        attempt by overshooting the deadline.  Raises the last retryable
        error when attempts or the deadline run out.
        """
        rng = rng or random.Random()
        started = clock()

        def _match_following_redirects() -> list[dict]:
            # A federated gateway in redirect mode answers 307 with the
            # region owner's address: follow (retargeting the client so
            # the hop sticks) without burning a retry attempt — the hop
            # cap bounds a redirect loop instead, and a still-redirecting
            # answer past the cap propagates as its ServeRedirect.
            hops = 0
            while True:
                try:
                    return self.match(trajectories, region=region, deadline_ms=deadline_ms)
                except ServeRedirect as error:
                    hops += 1
                    if hops > max_redirect_hops:
                        raise
                    host, port, _ = self._parse_location(error.location, "/v1/match")
                    self._retarget(host, port)

        for attempt in range(max_attempts):
            try:
                return _match_following_redirects()
            except (ServeClientError, *self.TRANSIENT_ERRORS) as error:
                retry_after = 0.0
                if isinstance(error, ServerBusy):
                    retry_after = error.retry_after_s
                elif isinstance(error, ServeClientError):
                    if error.status != 503:
                        raise  # non-transient HTTP failure
                    retry_after = float(error.payload.get("retry_after_s", 0.0))
                remaining = deadline_s - (clock() - started)
                if attempt == max_attempts - 1 or remaining <= 0.0:
                    raise
                delay = min(max_delay_s, base_delay_s * (2.0 ** attempt))
                delay = max(delay, retry_after)
                delay = min(delay, max_delay_s)
                delay *= 0.5 + 0.5 * rng.random()
                # A Retry-After larger than what is left of the budget
                # must not push the sleep past the deadline — clip it and
                # spend the remainder on one last attempt instead.
                sleep(min(delay, remaining))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ admin
    def reload_model(self, model: str | None = None) -> dict:
        """``POST /v1/admin/reload-model`` — hot-swap the serving model.

        Pass ``model`` to point the server at a different artifact path.
        Returns the reload summary (``generation``, ``model_path``);
        raises :class:`ServeClientError` when the reload was refused
        (corrupt/incompatible artifact, failed canary) — the old model
        keeps serving in that case.
        """
        payload = {} if model is None else {"model": model}
        return self._request("POST", "/v1/admin/reload-model", payload)

    def rollout(self, region: str | None = None, model: str | None = None) -> dict:
        """``POST /v1/admin/rollout`` — zero-downtime rollout (cluster only).

        Stages a new artifact generation for ``region`` (the gateway's
        default region when omitted), canaries it on a probe worker, then
        swaps the fleet one worker at a time; pass ``model`` to point at
        a different artifact path.  Returns the rollout summary
        (``generation``, ``workers_swapped``, ...).  Raises
        :class:`ServeClientError` with 409 when a rollout is already in
        progress, or with the server's failure status when the canary
        rejected the artifact — the old generation keeps serving then.
        """
        payload: dict = {}
        if region is not None:
            payload["region"] = region
        if model is not None:
            payload["model"] = model
        return self._request("POST", "/v1/admin/rollout", payload)

    def start_ab(
        self,
        model: str | None = None,
        split: float | None = None,
        weights: str | None = None,
        region: str | None = None,
    ) -> dict:
        """``POST /v1/admin/ab`` — start an A/B test against a challenger.

        The server loads (threaded) or stages + canaries (cluster) the
        challenger at ``model`` and routes the deterministic ``split``
        fraction of match traffic to it; ``weights`` selects its weight
        set (``"raw"``/``"ema"``), ``region`` its shard (cluster only).
        Omitted fields take the server defaults.  Raises
        :class:`ServeClientError` with 409 when a test or rollout is
        already live, or with the failure status when the challenger was
        refused — the champion keeps all traffic then.
        """
        payload: dict = {}
        for name, value in (
            ("model", model),
            ("split", split),
            ("weights", weights),
            ("region", region),
        ):
            if value is not None:
                payload[name] = value
        return self._request("POST", "/v1/admin/ab", payload)

    def promote_ab(self, region: str | None = None) -> dict:
        """``POST /v1/admin/ab/promote`` — challenger becomes the server.

        Returns the promotion summary including the final per-generation
        ``"ab"`` snapshot; 409 when no test is live.
        """
        payload = {} if region is None else {"region": region}
        return self._request("POST", "/v1/admin/ab/promote", payload)

    def abort_ab(self, region: str | None = None) -> dict:
        """``POST /v1/admin/ab/abort`` — drop the challenger untouched."""
        payload = {} if region is None else {"region": region}
        return self._request("POST", "/v1/admin/ab/abort", payload)

    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self._request("GET", "/metrics")
