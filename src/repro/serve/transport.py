"""Cross-host TCP frame transport for the serving tier.

:mod:`repro.serve.ipc` gives the cluster its length-prefixed JSON frames;
this module generalises them across the host boundary.  Three pieces:

* :func:`dial_blocking` — the *worker* side.  A forked (or remote) matcher
  process dials the gateway's listener with bounded retry/backoff, sends a
  generation-fenced ``hello`` and waits for the ack before serving a
  single op.  A rejected handshake (:class:`HandshakeRejected`) means the
  caller is **stale** — a respawned replacement already owns its name —
  and it must exit, never serve.

* :class:`FrameListener` — the *accepting* side.  An asyncio TCP server
  whose first inbound frame must be a ``hello``; an application callback
  decides accept/reject (fencing lives there, see :class:`FenceRegistry`)
  and whether the listener keeps dispatching frames on the connection or
  hands the raw streams over to other machinery (the cluster's
  ``_WorkerHandle`` does the latter).

* :class:`PeerLink` — a persistent, self-healing client connection for
  gateway↔gateway federation.  It reconnects forever with exponential
  backoff, multiplexes request/response frames by ``id``, and sends
  application-level heartbeats so a **half-open** connection (peer
  SIGSTOPped, network partition — TCP carries no signal for either) trips
  ``heartbeat_timeout_s`` and is torn down instead of hanging callers.

Everything here is transport only: no routing, no replication.  Those
live in :mod:`repro.serve.federation`.
"""

from __future__ import annotations

import asyncio
import socket
import time
from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import Any

from repro.serve import ipc


class TransportError(RuntimeError):
    """Connection-level failure (dial, framing, or mid-call drop)."""


class PeerDown(TransportError):
    """The :class:`PeerLink` has no live connection to its peer."""


class HandshakeRejected(TransportError):
    """The listener refused our ``hello`` — we are fenced out.

    Carries the rejection payload so the caller can log the code; the only
    correct reaction for a worker is to exit without serving.
    """

    def __init__(self, response: dict) -> None:
        error = response.get("error") or {}
        super().__init__(str(error.get("message") or "handshake rejected"))
        self.response = response
        self.code = str(error.get("code") or "rejected")


@dataclass(slots=True)
class TransportConfig:
    """Timeout/backoff knobs shared by dialers, links and listeners."""

    connect_timeout_s: float = 5.0
    handshake_timeout_s: float = 5.0
    heartbeat_interval_s: float = 1.0
    heartbeat_timeout_s: float = 3.0
    backoff_base_s: float = 0.2
    backoff_max_s: float = 5.0


class FenceRegistry:
    """Monotonic generation fencing per named endpoint.

    ``admit(name, generation)`` answers whether a handshake claiming
    ``generation`` may proceed: anything older than the highest generation
    ever admitted for that name is stale and must be refused.  Equal
    generations are admitted (a live endpoint may legitimately reconnect);
    strict supersession is the caller's job via unique tokens if it needs
    exactly-one semantics.
    """

    def __init__(self) -> None:
        self._high: dict[str, int] = {}

    def admit(self, name: str, generation: int) -> bool:
        """Record and admit ``generation`` unless a newer one was seen."""
        current = self._high.get(name)
        if current is not None and generation < current:
            return False
        self._high[name] = generation
        return True

    def current(self, name: str) -> int | None:
        """Highest generation admitted for ``name`` (``None`` if unseen)."""
        return self._high.get(name)


def backoff_delays(base_s: float, max_s: float):
    """Yield capped exponential backoff delays: base, 2*base, ... max."""
    delay = base_s
    while True:
        yield delay
        delay = min(max_s, delay * 2.0)


def dial_blocking(
    host: str,
    port: int,
    hello: dict,
    *,
    deadline_s: float = 20.0,
    config: TransportConfig | None = None,
) -> tuple[socket.socket, dict]:
    """Dial ``host:port``, perform the hello handshake, return (sock, ack).

    Retries refused/failed connects with exponential backoff until
    ``deadline_s`` elapses (the listener may not be up yet — the cluster
    forks workers before its event loop starts).  Raises
    :class:`HandshakeRejected` if the listener fences us out and
    :class:`TransportError` on timeout; the returned socket has no
    timeout set (callers install their own idle policy).
    """
    options = config or TransportConfig()
    deadline = time.monotonic() + deadline_s
    delays = backoff_delays(options.backoff_base_s, options.backoff_max_s)
    sock: socket.socket | None = None
    while sock is None:
        try:
            sock = socket.create_connection(
                (host, port), timeout=options.connect_timeout_s
            )
        except OSError as error:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TransportError(
                    f"could not reach {host}:{port} within {deadline_s:.1f}s: {error}"
                ) from error
            time.sleep(min(next(delays), max(0.0, remaining)))
    try:
        sock.settimeout(options.handshake_timeout_s)
        ipc.send_message(sock, {"op": "hello", **hello})
        ack = ipc.recv_message(sock)
        if ack is None:
            raise TransportError("listener closed during handshake")
        if not ack.get("ok", False):
            raise HandshakeRejected(ack)
        sock.settimeout(None)
    except BaseException:
        sock.close()
        raise
    return sock, ack


# A hello callback returns one of:
#   ("reject", response)          -- write response, close the connection
#   ("serve", response, handler)  -- write response, then dispatch every
#                                    subsequent frame through ``handler``
#   ("detach", response)          -- write response, then hand the streams
#                                    to the callback's owner untouched
HelloDecision = tuple[str, dict] | tuple[str, dict, Callable[[dict], Awaitable[dict | None]]]


class FrameListener:
    """Asyncio TCP acceptor speaking length-prefixed frames with a fenced hello.

    ``on_hello(payload, reader, writer)`` is awaited with the first frame
    of every connection and returns a :data:`HelloDecision`.  In ``serve``
    mode the listener then reads frames in a loop and writes back whatever
    the per-connection handler returns (``None`` responses are swallowed —
    one-way notifications).  Handler exceptions become transport-level
    error frames rather than killing the connection.
    """

    def __init__(
        self,
        on_hello: Callable[[dict, asyncio.StreamReader, asyncio.StreamWriter], Awaitable[HelloDecision]],
        *,
        config: TransportConfig | None = None,
    ) -> None:
        self.config = config or TransportConfig()
        self._on_hello = on_hello
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[asyncio.StreamWriter] = set()
        self.host = ""
        self.port = 0

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sock: socket.socket | None = None,
    ) -> None:
        """Bind and start accepting (pass ``sock`` to adopt a pre-bound one)."""
        if sock is not None:
            self._server = await asyncio.start_server(self._serve, sock=sock)
        else:
            self._server = await asyncio.start_server(self._serve, host, port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]

    async def stop(self) -> None:
        """Stop accepting and drop every served connection."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._conns):
            writer.close()
        self._conns.clear()

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await asyncio.wait_for(
                ipc.read_message(reader), self.config.handshake_timeout_s
            )
        except (TimeoutError, asyncio.TimeoutError, ipc.IpcError, OSError):
            writer.close()
            return
        if hello is None or hello.get("op") != "hello":
            writer.close()
            return
        try:
            decision = await self._on_hello(hello, reader, writer)
        except Exception as error:  # noqa: BLE001 - surface as a rejection
            decision = (
                "reject",
                {"ok": False, "error": {"code": "hello_failed", "message": str(error)}},
            )
        mode, response = decision[0], decision[1]
        try:
            await ipc.write_message(writer, response)
        except (ipc.IpcError, OSError, ConnectionError):
            writer.close()
            return
        if mode == "reject":
            writer.close()
            return
        if mode == "detach":
            # Ownership of (reader, writer) transferred inside on_hello.
            return
        handler = decision[2]  # type: ignore[misc]
        self._conns.add(writer)
        try:
            while True:
                message = await ipc.read_message(reader)
                if message is None:
                    break
                try:
                    reply = await handler(message)
                except Exception as error:  # noqa: BLE001 - keep the conn alive
                    reply = {
                        "id": message.get("id"),
                        "ok": False,
                        "error": {"code": "handler_failed", "message": str(error)},
                    }
                if reply is not None:
                    await ipc.write_message(writer, reply)
        except (ipc.IpcError, OSError, ConnectionError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()


class PeerLink:
    """A self-healing, heartbeat-guarded frame connection to one peer.

    Lifecycle: :meth:`start` spawns a background task that dials the peer,
    performs the hello handshake (payload from ``hello_factory`` — called
    per attempt so it can carry fresh state), then pumps responses until
    the connection drops, and reconnects with exponential backoff forever
    until :meth:`stop`.  ``on_up(link, ack)`` / ``on_down(link)`` fire on
    every transition; :meth:`call` multiplexes request frames by ``id``.

    Heartbeats make half-open connections *fail*: every
    ``heartbeat_interval_s`` the link sends a ping op and requires a reply
    within ``heartbeat_timeout_s``; a miss aborts the connection, which
    fails all in-flight calls with :class:`PeerDown` and schedules a
    reconnect.  A peer that fences us out (:class:`HandshakeRejected`)
    stops the link permanently — retrying with stale credentials is never
    correct — and records :attr:`rejected`.
    """

    PING_OP = "fed.ping"

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        hello_factory: Callable[[], dict],
        *,
        config: TransportConfig | None = None,
        on_up: Callable[["PeerLink", dict], Awaitable[None]] | None = None,
        on_down: Callable[["PeerLink"], Awaitable[None]] | None = None,
    ) -> None:
        self.name = name
        self.host = host
        self.port = port
        self.config = config or TransportConfig()
        self._hello_factory = hello_factory
        self._on_up = on_up
        self._on_down = on_down
        self.up = False
        self.rejected = False
        self.last_seen = 0.0
        self.connects = 0
        self._task: asyncio.Task | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._write_lock = asyncio.Lock()
        self._pending: dict[int, asyncio.Future] = {}
        self._next_id = 0
        self._stopping = False

    def start(self) -> None:
        """Begin the connect/serve/reconnect loop on the running event loop."""
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"peerlink-{self.name}"
        )

    async def stop(self) -> None:
        """Tear the link down and cancel the background task."""
        self._stopping = True
        self._abort_connection()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._task = None

    async def call(self, message: dict, *, timeout: float | None = None) -> dict:
        """Send one request frame and await its response.

        Raises :class:`PeerDown` when the link is down or drops mid-call,
        and ``TimeoutError`` when the peer does not answer in time (the
        connection is aborted in that case — an unresponsive peer is
        indistinguishable from a half-open one).
        """
        writer = self._writer
        if not self.up or writer is None:
            raise PeerDown(f"peer {self.name} is down")
        self._next_id += 1
        frame_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[frame_id] = future
        payload = dict(message)
        payload["id"] = frame_id
        try:
            async with self._write_lock:
                await ipc.write_message(writer, payload)
        except (ipc.IpcError, OSError, ConnectionError) as error:
            self._pending.pop(frame_id, None)
            self._abort_connection()
            raise PeerDown(f"peer {self.name} dropped: {error}") from error
        try:
            if timeout is None:
                return await future
            return await asyncio.wait_for(future, timeout)
        except (TimeoutError, asyncio.TimeoutError):
            self._pending.pop(frame_id, None)
            self._abort_connection()
            raise
        finally:
            self._pending.pop(frame_id, None)

    def _abort_connection(self) -> None:
        writer = self._writer
        if writer is not None:
            self._writer = None
            try:
                writer.transport.abort()
            except Exception:  # noqa: BLE001 - already torn down
                pass

    def _fail_pending(self, error: Exception) -> None:
        pending = list(self._pending.values())
        self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(error)

    async def _run(self) -> None:
        delays = backoff_delays(self.config.backoff_base_s, self.config.backoff_max_s)
        while not self._stopping:
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(self.host, self.port),
                    self.config.connect_timeout_s,
                )
            except (OSError, TimeoutError, asyncio.TimeoutError):
                await asyncio.sleep(next(delays))
                continue
            try:
                await ipc.write_message(writer, {"op": "hello", **self._hello_factory()})
                ack = await asyncio.wait_for(
                    ipc.read_message(reader), self.config.handshake_timeout_s
                )
                if ack is None:
                    raise TransportError("peer closed during handshake")
                if not ack.get("ok", False):
                    raise HandshakeRejected(ack)
            except HandshakeRejected:
                self.rejected = True
                writer.close()
                if self._on_down is not None:
                    await self._on_down(self)
                return
            except (ipc.IpcError, OSError, TimeoutError, asyncio.TimeoutError, TransportError):
                writer.close()
                await asyncio.sleep(next(delays))
                continue
            # Connected and admitted: reset backoff, pump frames.
            delays = backoff_delays(
                self.config.backoff_base_s, self.config.backoff_max_s
            )
            self._writer = writer
            self.up = True
            self.connects += 1
            self.last_seen = time.monotonic()
            if self._on_up is not None:
                try:
                    await self._on_up(self, ack)
                except Exception:  # noqa: BLE001 - app callback must not kill the link
                    pass
            heartbeat = asyncio.get_running_loop().create_task(self._heartbeat())
            try:
                while True:
                    message = await ipc.read_message(reader)
                    if message is None:
                        break
                    self.last_seen = time.monotonic()
                    future = self._pending.pop(message.get("id"), None)
                    if future is not None and not future.done():
                        future.set_result(message)
            except (ipc.IpcError, OSError, ConnectionError):
                pass
            finally:
                heartbeat.cancel()
                try:
                    await heartbeat
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                self.up = False
                self._abort_connection()
                writer.close()
                self._fail_pending(PeerDown(f"peer {self.name} connection lost"))
                if self._on_down is not None and not self._stopping:
                    try:
                        await self._on_down(self)
                    except Exception:  # noqa: BLE001
                        pass
            if self._stopping:
                return
            await asyncio.sleep(next(delays))

    async def _heartbeat(self) -> None:
        # Pings ride the same multiplexed frame stream as real calls, so a
        # response to *any* op proves liveness; the ping just guarantees
        # traffic exists for the timeout to measure.
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            try:
                await self.call(
                    {"op": self.PING_OP}, timeout=self.config.heartbeat_timeout_s
                )
            except (PeerDown, TimeoutError, asyncio.TimeoutError):
                # call() already aborted the connection; the read loop is
                # unwinding and will mark the link down.
                return
