"""Micro-batching with a bounded queue (the service's backpressure valve).

Whole-trajectory match requests are cheap to batch: the matcher's
``match_many`` amortises routing-cache warmup and, with a worker pool,
spreads trajectories over processes.  The :class:`MicroBatcher` therefore
collects individual requests for up to ``window_s`` seconds or
``max_batch`` items — whichever comes first — dispatches them as one
batch, and demultiplexes the results back onto per-request futures.

Backpressure is explicit: the queue is bounded, and a full queue raises
:class:`Backpressure` *immediately* (the server turns it into HTTP 429
with ``Retry-After``) instead of letting latency grow without bound.
Shedding load early is what keeps p99 sane when arrival rate exceeds
service rate — the same reasoning as any bounded-queue admission control.

Shutdown drains: requests admitted before :meth:`close` are always
answered; requests arriving after are rejected with
:class:`ServiceClosed`.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, Sequence


class Backpressure(RuntimeError):
    """The request queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServiceClosed(RuntimeError):
    """The batcher is shutting down and no longer admits work."""


_SENTINEL = object()


class MicroBatcher:
    """Collects single requests into batches for a ``batch_fn``.

    Args:
        batch_fn: Called with a list of request payloads; must return one
            result per payload, in order (e.g. ``LHMM.match_many`` or
            ``ParallelMatcher.match_many``).
        max_batch: Dispatch as soon as this many requests are collected.
        window_s: Maximum time the first request of a batch waits for
            company; the latency floor a batched request can pay.
        queue_limit: Bound on requests admitted but not yet dispatched.
        clock: Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        batch_fn: Callable[[list], Sequence],
        *,
        max_batch: int = 16,
        window_s: float = 0.02,
        queue_limit: int = 64,
        retry_after_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self._batch_fn = batch_fn
        self.max_batch = max_batch
        self.window_s = max(0.0, window_s)
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._queue: queue.Queue = queue.Queue(maxsize=queue_limit)
        self._closed = False
        self._lock = threading.Lock()
        self.batches_dispatched = 0
        self.items_dispatched = 0
        self.largest_batch = 0
        self.rejected_total = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    # --------------------------------------------------------------- enqueue
    def submit(self, item) -> Future:
        """Admit one request; returns the future its result will land on.

        Raises :class:`Backpressure` when the queue is full and
        :class:`ServiceClosed` after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("matching service is shutting down")
            future: Future = Future()
            try:
                self._queue.put_nowait((item, future))
            except queue.Full:
                self.rejected_total += 1
                raise Backpressure(
                    "request queue full "
                    f"({self._queue.maxsize} requests waiting)",
                    self.retry_after_s,
                ) from None
        return future

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet dispatched (approximate)."""
        return self._queue.qsize()

    # -------------------------------------------------------------- dispatch
    def _run(self) -> None:
        while True:
            entry = self._queue.get()
            if entry is _SENTINEL:
                return
            batch = [entry]
            deadline = self._clock() + self.window_s
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _SENTINEL:
                    stop = True
                    break
                batch.append(entry)
            self._dispatch(batch)
            if stop:
                return

    def _dispatch(self, batch: list) -> None:
        items = [item for item, _ in batch]
        try:
            results = self._batch_fn(items)
            if len(results) != len(items):
                raise RuntimeError(
                    f"batch_fn returned {len(results)} results for {len(items)} items"
                )
        except BaseException as error:  # noqa: BLE001 - relayed to callers
            for _, future in batch:
                future.set_exception(error)
        else:
            for (_, future), result in zip(batch, results):
                future.set_result(result)
        self.batches_dispatched += 1
        self.items_dispatched += len(batch)
        self.largest_batch = max(self.largest_batch, len(batch))

    # -------------------------------------------------------------- shutdown
    def close(self, drain: bool = True) -> None:
        """Stop admitting work; by default wait for admitted work to finish.

        With ``drain=False`` queued requests are failed fast with
        :class:`ServiceClosed` instead of being processed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if not drain:
            # Fail queued work; the dispatcher drains what remains.
            pending: list = []
            while True:
                try:
                    pending.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            for entry in pending:
                if entry is not _SENTINEL:
                    entry[1].set_exception(
                        ServiceClosed("matching service shut down before dispatch")
                    )
        # FIFO ordering guarantees everything admitted before the sentinel
        # is dispatched before the worker thread exits.
        self._queue.put(_SENTINEL)
        self._thread.join()

    def stats(self) -> dict:
        """Batching counters for ``/metrics``."""
        return {
            "queue_depth": self.queue_depth,
            "queue_limit": self._queue.maxsize,
            "batches_dispatched": self.batches_dispatched,
            "items_dispatched": self.items_dispatched,
            "largest_batch": self.largest_batch,
            "rejected_total": self.rejected_total,
            "mean_batch": (
                self.items_dispatched / self.batches_dispatched
                if self.batches_dispatched
                else 0.0
            ),
        }

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
