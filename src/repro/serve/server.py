"""The map-matching daemon: stdlib HTTP on top of sessions + micro-batching.

``MatchingServer`` wires the pieces together around one fitted
:class:`~repro.core.matcher.LHMM`:

* ``POST /v1/sessions`` → :class:`~repro.serve.sessions.SessionManager`
  (streaming, fixed-lag commits per feed);
* ``POST /v1/match`` → :class:`~repro.serve.batching.MicroBatcher`
  (whole trajectories, micro-batched through ``match_many``);
* ``GET /healthz`` / ``GET /metrics`` → liveness and observability.

Everything is standard library (``http.server.ThreadingHTTPServer``); the
repo's only runtime dependencies stay numpy/scipy/networkx.

HTTP status mapping (see ``docs/serving.md`` for the full protocol):

=========================  ======
condition                  status
=========================  ======
malformed payload          400
degenerate trajectory      422
unknown session            404
unknown route              404
queue full (overload)      503 (+ ``Retry-After``, ``server_overloaded``)
session cap                429 (+ ``Retry-After``)
shutting down              503
match/worker failure       500
handler bug                500
=========================  ======

Fault tolerance (``docs/robustness.md``): the batch path returns
*result-or-error slots*, so one failing trajectory in a micro-batch
yields a per-item structured error while its batch-mates succeed;
``/healthz`` reports ``degraded`` once the degradation cascade or a pool
respawn has fired, and ``/metrics`` counts both.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Sequence

from repro.core.matcher import LHMM
from repro.errors import (
    InvalidTrajectoryInput,
    MatchError,
    ModelReloadFailed,
    ReproError,
    ServerOverloaded,
)
from repro.serve import protocol
from repro.serve.ab import ABState, canonical_key
from repro.serve.batching import Backpressure, MicroBatcher, ServiceClosed
from repro.serve.metrics import ServeMetrics
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import SessionLimitError, SessionManager, UnknownSessionError


@dataclass(slots=True)
class ServeConfig:
    """Tunables of the matching service.

    Micro-batching trades latency for throughput: a request never waits
    more than ``batch_window_ms`` for companions, and a batch never
    exceeds ``batch_max`` trajectories.  ``queue_limit`` bounds admitted
    but undispatched requests — beyond it the server sheds load with 503
    + ``Retry-After`` (``server_overloaded``), the same overload answer
    the cluster gateway gives.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    default_lag: int = 4
    default_context_window: int = 12
    max_sessions: int = 256
    session_ttl_s: float = 300.0
    batch_window_ms: float = 25.0
    batch_max: int = 16
    queue_limit: int = 64
    retry_after_s: float = 1.0
    request_timeout_s: float = 60.0
    max_body_bytes: int = 8 * 1024 * 1024
    log_requests: bool = False
    extra_metrics: dict = field(default_factory=dict)


class _HttpError(Exception):
    """Internal: carry an HTTP status + payload up to the dispatcher."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict | None = None,
        extra: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}
        self.extra = extra or {}


_ROUTES = (
    ("POST", re.compile(r"^/v1/sessions$"), "create_session"),
    ("POST", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)/points$"), "feed_session"),
    ("DELETE", re.compile(r"^/v1/sessions/(?P<sid>[^/]+)$"), "close_session"),
    ("POST", re.compile(r"^/v1/match$"), "match"),
    ("POST", re.compile(r"^/v1/admin/reload-model$"), "reload_model"),
    ("POST", re.compile(r"^/v1/admin/ab$"), "ab_start"),
    ("POST", re.compile(r"^/v1/admin/ab/promote$"), "ab_promote"),
    ("POST", re.compile(r"^/v1/admin/ab/abort$"), "ab_abort"),
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
)


class MatchingServer:
    """A long-lived map-matching service over one fitted matcher.

    Args:
        matcher: A fitted :class:`LHMM` (serves sessions and, by default,
            batch matches).
        config: Service tunables; ``port=0`` binds an ephemeral port
            (read :attr:`port` after construction).
        batch_fn: Optional replacement for the batch path, called with a
            list of :class:`~repro.cellular.trajectory.Trajectory` and
            returning one slot per trajectory — a ``MatchResult``-shaped
            object or a :class:`~repro.errors.MatchError`.  The default
            runs ``matcher.match_many`` serially under the shared
            inference lock (with per-item fault isolation).
        pool: Optional :class:`~repro.core.parallel.ParallelMatcher`.
            When given (and no ``batch_fn``), batch matching dispatches to
            the pool with fault-isolating error slots, and the pool's
            respawn counter feeds ``/healthz`` + ``/metrics``.  The server
            does not own the pool's lifecycle — close it after
            :meth:`shutdown`.
        model_path: Where the served model artifact lives on disk;
            enables ``POST /v1/admin/reload-model`` (and the CLI's
            SIGHUP handler) to hot-reload it.  Requires ``dataset``.
        dataset: The :class:`~repro.datasets.dataset.MatchingDataset`
            whose map the model serves — needed to reconstruct a matcher
            from a reloaded artifact.
        canary_trajectories: Trajectories a candidate model must match
            (non-degraded, non-empty) before it replaces the serving one.
            Defaults to the first few dataset samples when ``dataset`` is
            given; pass an empty list to skip the canary entirely.

    Use as a context manager, or call :meth:`start` / :meth:`shutdown`.
    """

    #: How many dataset samples the default canary set uses.
    DEFAULT_CANARY_COUNT = 5

    def __init__(
        self,
        matcher: LHMM,
        config: ServeConfig | None = None,
        batch_fn: Callable[[list], Sequence] | None = None,
        pool=None,
        model_path=None,
        dataset=None,
        canary_trajectories: list | None = None,
    ) -> None:
        matcher._require_fit()
        self.matcher = matcher
        self.pool = pool
        if batch_fn is None and pool is not None:
            batch_fn = self._pool_batch
        self.config = config or ServeConfig()
        self.metrics = ServeMetrics()
        self._infer_lock = threading.RLock()
        self._draining = False
        self.model_path = model_path
        self.dataset = dataset
        if canary_trajectories is None and dataset is not None:
            from repro.testing.golden import canary_trajectories as canary_set

            canary_trajectories = canary_set(dataset, self.DEFAULT_CANARY_COUNT)
        self.canary_trajectories = list(canary_trajectories or [])
        #: Monotonic counter of the model currently serving; bumped on
        #: every successful hot reload.
        self.model_generation = 1
        self._reload_lock = threading.Lock()
        # Live A/B test between the serving model and a challenger
        # generation (None when no test is running).  The challenger
        # matcher is held aside — never in :attr:`matcher` — until
        # :meth:`promote_ab` swaps it in.
        self.ab: ABState | None = None
        self._ab_matcher: LHMM | None = None
        self.sessions = SessionManager(
            matcher,
            default_lag=self.config.default_lag,
            default_context_window=self.config.default_context_window,
            max_sessions=self.config.max_sessions,
            ttl_s=self.config.session_ttl_s,
            infer_lock=self._infer_lock,
        )
        self.batcher = MicroBatcher(
            batch_fn if batch_fn is not None else self._serial_batch,
            max_batch=self.config.batch_max,
            window_s=self.config.batch_window_ms / 1000.0,
            queue_limit=self.config.queue_limit,
            retry_after_s=self.config.retry_after_s,
        )
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self.config.host, self.config.port), handler)
        self._thread: threading.Thread | None = None

    # ----------------------------------------------------------------- batch
    def _serial_batch(self, trajectories: list) -> Sequence:
        with self._infer_lock:
            return self.matcher.match_many(trajectories, return_errors=True)

    def _pool_batch(self, trajectories: list) -> Sequence:
        return self.pool.match_many(trajectories, return_errors=True)

    def _worker_respawns(self) -> int:
        """Pool rebuilds so far (0 without a pool)."""
        return self.pool.worker_respawns if self.pool is not None else 0

    def _degraded_events(self) -> dict:
        """Fault-related counters surfaced by ``/healthz`` and ``/metrics``."""
        counters = self.metrics.snapshot()["counters"]
        return {
            "match_degraded_total": counters.get("match_degraded_total", 0),
            "match_failed_total": counters.get("match_failed_total", 0),
            "worker_respawns_total": self._worker_respawns(),
        }

    # ------------------------------------------------------------ hot reload
    def reload_model(self, path=None) -> dict:
        """Load, canary, and atomically swap in a new model artifact.

        The candidate loads *aside* the serving model, must pass the
        canary (every canary trajectory matched, non-degraded, with a
        non-empty path), and only then replaces :attr:`matcher` — under
        the shared inference lock, so no request ever sees a half-swapped
        model.  On any failure the old model keeps serving untouched and
        ``model_reload_failures_total`` is incremented.

        Raises:
            ArtifactCorrupt: the file is damaged (HTTP 500).
            ArtifactIncompatible: intact but wrong kind/version/map (422).
            ModelReloadFailed: no reloadable model configured, the file
                is missing, or the canary failed (500).

        Notes: a :class:`~repro.core.parallel.ParallelMatcher` pool keeps
        its forked workers' weights — batch matching through a pool stays
        on the old model until the pool is rebuilt; streaming sessions
        opened before the swap finish on the model they started with.
        """
        with self._reload_lock:
            if self.ab is not None:
                raise _HttpError(
                    409,
                    "an A/B test is live; promote or abort it before "
                    "reloading the serving model",
                )
            candidate, path = self._load_candidate(path)
            with self._infer_lock:
                self.matcher = candidate
                self.sessions.matcher = candidate
                self.model_path = path
                self.model_generation += 1
                generation = self.model_generation
            self.metrics.increment("model_reloads_total")
            return {
                "generation": generation,
                "model_path": str(path),
                "canary_trajectories": len(self.canary_trajectories),
            }

    def _load_candidate(self, path, weights: str = "raw"):
        """Load + canary a candidate model aside the serving one.

        Shared by hot reload and A/B start: the candidate must load
        cleanly and pass the golden canary before any traffic touches
        it.  Returns ``(matcher, path)``; counts every failure in
        ``model_reload_failures_total``.
        """
        path = path if path is not None else self.model_path
        if path is None or self.dataset is None:
            raise ModelReloadFailed(
                "server has no reloadable model (start it with "
                "model_path= and dataset=, e.g. via the serve CLI)"
            )
        try:
            candidate = LHMM.load(path, self.dataset, weights=weights)
        except FileNotFoundError as error:
            self.metrics.increment("model_reload_failures_total")
            raise ModelReloadFailed(
                f"no model artifact at {path}; is the path right?"
            ) from error
        except ReproError:
            self.metrics.increment("model_reload_failures_total")
            raise
        problems = []
        if self.canary_trajectories:
            from repro.testing.golden import run_canary

            problems = run_canary(candidate, self.canary_trajectories)
        if problems:
            self.metrics.increment("model_reload_failures_total")
            raise ModelReloadFailed(
                f"candidate model at {path} failed the canary "
                f"({len(problems)} problem(s)): " + "; ".join(problems[:3])
            )
        candidate.degradation_enabled = self.matcher.degradation_enabled
        return candidate, path

    # ------------------------------------------------------------- A/B testing
    def start_ab(
        self, model=None, split: float = 0.1, weights: str = "raw"
    ) -> dict:
        """Load a challenger generation and start splitting live traffic.

        The challenger loads aside the serving (champion) model, must
        pass the same golden canary as a hot reload, and then receives
        the deterministic ``split`` fraction of ``/v1/match`` traffic
        (per-trajectory key hash — see :mod:`repro.serve.ab`).  Streaming
        sessions always stay on the champion.  Per-generation counters
        and latency appear under ``"ab"`` on ``/metrics`` until
        :meth:`promote_ab` or :meth:`abort_ab` resolves the test.
        """
        with self._reload_lock:
            if self.ab is not None:
                raise _HttpError(
                    409,
                    "an A/B test is already live; promote or abort it first",
                )
            try:
                state = ABState(
                    split=split,
                    champion_generation=self.model_generation,
                    challenger_generation=self.model_generation + 1,
                    challenger_model="",
                    challenger_weights=weights,
                )
            except ValueError as error:
                raise ProtocolError(str(error)) from error
            candidate, path = self._load_candidate(model, weights=weights)
            state.challenger_model = str(path)
            self._ab_matcher = candidate
            self.ab = state
            self.metrics.increment("ab_starts_total")
            return {
                "split": state.split,
                "champion_generation": state.champion_generation,
                "challenger_generation": state.challenger_generation,
                "challenger_model": state.challenger_model,
                "challenger_weights": weights,
            }

    def promote_ab(self) -> dict:
        """Atomically make the challenger the sole serving generation.

        The swap happens under the shared inference lock — exactly like
        a hot reload — so no request ever sees a half-promoted model;
        requests admitted before the promote finish on whichever
        generation the split assigned them.  Returns the final A/B
        snapshot alongside the new generation number.
        """
        with self._reload_lock:
            state, candidate = self.ab, self._ab_matcher
            if state is None or candidate is None:
                raise _HttpError(409, "no A/B test is live")
            with self._infer_lock:
                self.matcher = candidate
                self.sessions.matcher = candidate
                self.model_path = state.challenger_model
                self.model_generation += 1
                generation = self.model_generation
                self.ab = None
                self._ab_matcher = None
            self.metrics.increment("ab_promotions_total")
            self.metrics.increment("model_reloads_total")
            return {
                "generation": generation,
                "model_path": state.challenger_model,
                "ab": state.snapshot(),
            }

    def abort_ab(self) -> dict:
        """Drop the challenger; the champion keeps all traffic."""
        with self._reload_lock:
            state = self.ab
            if state is None:
                raise _HttpError(409, "no A/B test is live")
            with self._infer_lock:
                self.ab = None
                self._ab_matcher = None
            self.metrics.increment("ab_aborts_total")
            return {
                "generation": self.model_generation,
                "ab": state.snapshot(),
            }

    def _record_ab_slot(
        self, state: ABState, challenger: bool, slot, seconds: float
    ) -> None:
        """Account one routed trajectory to its generation's counters."""
        failed = isinstance(slot, MatchError)
        degraded = (
            not failed and getattr(slot, "provenance", "lhmm") != "lhmm"
        )
        state.stats_for(challenger).record(
            requests=1,
            degraded=int(degraded),
            failed=int(failed),
            seconds=seconds,
        )

    def _model_status(self) -> dict:
        """Model-lifecycle counters for ``/healthz`` and ``/metrics``."""
        counters = self.metrics.snapshot()["counters"]
        return {
            "model_generation": self.model_generation,
            "model_reloads_total": counters.get("model_reloads_total", 0),
            "model_reload_failures_total": counters.get(
                "model_reload_failures_total", 0
            ),
        }

    # ------------------------------------------------------------- lifecycle
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral port)."""
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        """``http://host:port`` of the running server."""
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MatchingServer":
        """Serve requests on a background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True) -> dict:
        """Graceful stop: reject new work, drain in-flight, close sessions.

        Order matters: (1) flip the draining flag so new requests get 503,
        (2) drain the micro-batch queue so every admitted ``/v1/match``
        request is answered, (3) commit and close all open sessions,
        (4) stop the HTTP listener.  Returns a summary with the finalised
        session paths (``{"sessions": {id: path}, ...}``).
        """
        self._draining = True
        self.batcher.close(drain=drain)
        finished = self.sessions.close_all()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        return {"sessions": finished, "drained": drain}

    def __enter__(self) -> "MatchingServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # ------------------------------------------------------------- endpoints
    def _check_draining(self) -> None:
        if self._draining:
            # Retry-After tells well-behaved clients (match_with_retry)
            # that a drain is a rolling-restart blip, not a dead end.
            raise _HttpError(
                503,
                "server is shutting down",
                headers={"Retry-After": str(max(1, round(self.config.retry_after_s)))},
                extra={"retry_after_s": self.config.retry_after_s},
            )

    def handle_create_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions`` — admit a new streaming session."""
        self._check_draining()
        lag = payload.get("lag")
        context_window = payload.get("context_window")
        for name, value in (("lag", lag), ("context_window", context_window)):
            if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
                raise ProtocolError(f"field {name!r} must be an integer")
        try:
            session = self.sessions.create(lag=lag, context_window=context_window)
        except ValueError as error:  # e.g. lag < 1
            raise ProtocolError(str(error)) from error
        self.metrics.increment("sessions_created")
        return 201, {
            "session_id": session.session_id,
            "lag": session.decoder.lag,
            "context_window": session.decoder.context_window,
        }

    def handle_feed_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/sessions/{id}/points`` — advance the fixed-lag decoder."""
        self._check_draining()
        points = protocol.decode_points(payload.get("points"), "points")
        state = self.sessions.feed(match.group("sid"), points)
        self.metrics.increment("points_fed", len(points))
        return 200, state

    def handle_close_session(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``DELETE /v1/sessions/{id}`` — flush pending points, return the path."""
        final = self.sessions.close(match.group("sid"))
        self.metrics.increment("sessions_closed")
        return 200, final

    def handle_match(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/match`` — micro-batch whole trajectories through the matcher."""
        self._check_draining()
        body = payload.get("trajectories")
        single = False
        if body is None:
            body = [payload.get("points")]
            single = True
        if not isinstance(body, list) or not body:
            raise ProtocolError(
                "expected 'trajectories' (list of point lists) or 'points'"
            )
        trajectories = [
            protocol.decode_trajectory(item, trajectory_id=i, context=f"trajectories[{i}]")
            for i, item in enumerate(body)
        ]
        # Reject degenerate input up front with a field-level 422 — a bad
        # trajectory must never reach the matcher as a deep stack trace.
        for i, trajectory in enumerate(trajectories):
            label = "trajectory" if single else f"trajectories[{i}]"
            self.matcher.validate_trajectory(trajectory, context=label)
        # Live A/B: the deterministic key hash of each trajectory's
        # canonical payload decides its generation.  Snapshot the state
        # once so a concurrent promote/abort cannot split one request's
        # accounting across two tests.
        state, challenger = self.ab, self._ab_matcher
        if state is not None and challenger is not None:
            to_challenger = [state.assign(canonical_key(item)) for item in body]
        else:
            to_challenger = [False] * len(body)
        started = time.perf_counter()
        # Each champion trajectory is admitted individually so one HTTP
        # request's batch can merge with other requests' work in the same
        # micro-batch; challenger trajectories run directly on the
        # challenger matcher under the shared inference lock.
        futures = {
            i: self.batcher.submit(t)
            for i, t in enumerate(trajectories)
            if not to_challenger[i]
        }
        slots = []
        for i, trajectory in enumerate(trajectories):
            if to_challenger[i]:
                try:
                    with self._infer_lock:
                        slot = challenger.match(trajectory)
                except Exception as error:  # noqa: BLE001 - slotted per item
                    slot = MatchError.from_exception(error, index=i)
            else:
                slot = futures[i].result(timeout=self.config.request_timeout_s)
            if state is not None:
                self._record_ab_slot(
                    state, to_challenger[i], slot, time.perf_counter() - started
                )
            slots.append(slot)
        encoded: list[dict] = []
        matched = degraded = failed = 0
        for slot in slots:
            if isinstance(slot, MatchError):
                failed += 1
                encoded.append({"error": slot.to_payload()})
            else:
                matched += 1
                if getattr(slot, "provenance", "lhmm") != "lhmm":
                    degraded += 1
                encoded.append(protocol.encode_match_result(slot))
        if matched:
            self.metrics.increment("trajectories_matched", matched)
        if degraded:
            self.metrics.increment("match_degraded_total", degraded)
        if failed:
            self.metrics.increment("match_failed_total", failed)
        if single:
            slot = slots[0]
            if isinstance(slot, MatchError):
                raise _HttpError(
                    slot.http_status, slot.message, extra={"code": slot.code}
                )
            return 200, {"result": encoded[0]}
        return 200, {"results": encoded}

    def handle_reload_model(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/reload-model`` — hot-swap the serving model.

        Optional ``{"model": "path"}`` overrides the configured artifact
        path for this reload (and becomes the new default on success).
        """
        self._check_draining()
        path = payload.get("model")
        if path is not None and not isinstance(path, str):
            raise ProtocolError("field 'model' must be a string path")
        info = self.reload_model(path)
        return 200, {"status": "reloaded", **info}

    def handle_ab_start(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab`` — load a challenger and start splitting.

        Body: ``{"model": path?, "split": 0.1?, "weights": "raw"|"ema"?}``.
        The challenger must pass the golden canary before it sees any
        traffic; the champion keeps serving untouched either way.
        """
        self._check_draining()
        model = payload.get("model")
        if model is not None and not isinstance(model, str):
            raise ProtocolError("field 'model' must be a string path")
        split = payload.get("split", 0.1)
        if isinstance(split, bool) or not isinstance(split, (int, float)):
            raise ProtocolError("field 'split' must be a number in (0, 1]")
        weights = payload.get("weights", "raw")
        if weights not in ("raw", "ema"):
            raise ProtocolError("field 'weights' must be 'raw' or 'ema'")
        info = self.start_ab(model=model, split=float(split), weights=weights)
        return 200, {"status": "ab_started", **info}

    def handle_ab_promote(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab/promote`` — challenger becomes sole server."""
        self._check_draining()
        return 200, {"status": "promoted", **self.promote_ab()}

    def handle_ab_abort(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``POST /v1/admin/ab/abort`` — drop the challenger."""
        return 200, {"status": "aborted", **self.abort_ab()}

    def handle_healthz(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /healthz`` — liveness, protocol version, and load snapshot.

        ``status`` is ``"degraded"`` (not a lying ``"ok"``) once any
        fallback-cascade match or worker-pool respawn has happened —
        results are still being served, but not at full fidelity.
        """
        events = self._degraded_events()
        if self._draining:
            status = "draining"
        elif any(events.values()):
            status = "degraded"
        else:
            status = "ok"
        model = self._model_status()
        state = self.ab
        model["ab_live"] = state is not None
        return 200, {
            "status": status,
            "protocol_version": protocol.PROTOCOL_VERSION,
            "active_sessions": len(self.sessions),
            "queue_depth": self.batcher.queue_depth,
            "degraded": events,
            "model": model,
        }

    def handle_metrics(self, payload: dict, match: re.Match) -> tuple[int, dict]:
        """``GET /metrics`` — counters, latency histograms, and cache stats."""
        self.sessions.evict_idle()
        snapshot = self.metrics.snapshot()
        # Fault counters are always present, even before the first event,
        # so dashboards can alert on them without existence checks.
        for name, value in self._degraded_events().items():
            snapshot["counters"].setdefault(name, 0)
            if name == "worker_respawns_total":
                snapshot["counters"][name] = value
        for name, value in self._model_status().items():
            snapshot["counters"][name] = value
        for name in ("ab_starts_total", "ab_promotions_total", "ab_aborts_total"):
            snapshot["counters"].setdefault(name, 0)
        state = self.ab
        if state is not None:
            snapshot["ab"] = state.snapshot()
        if self.pool is not None:
            snapshot["pool"] = self.pool.stats()
        snapshot["sessions"] = self.sessions.stats()
        snapshot["batching"] = self.batcher.stats()
        engine = self.matcher.engine
        cache_stats = getattr(engine, "cache_stats", None)
        snapshot["router_cache"] = dict(cache_stats()) if callable(cache_stats) else {}
        if self.config.extra_metrics:
            snapshot["extra"] = dict(self.config.extra_metrics)
        return 200, snapshot


def _make_handler(server: "MatchingServer"):
    """A request-handler class bound to one :class:`MatchingServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/" + str(protocol.PROTOCOL_VERSION)

        # ----------------------------------------------------------- plumbing
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            if server.config.log_requests:
                BaseHTTPRequestHandler.log_message(self, format, *args)

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length") or 0)
            if length > server.config.max_body_bytes:
                raise _HttpError(413, "request body too large")
            return self.rfile.read(length) if length else b""

        def _respond(self, status: int, payload: dict, headers: dict | None = None) -> None:
            body = protocol.dumps(payload)
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _dispatch(self, method: str) -> None:
            started = time.perf_counter()
            endpoint = "unknown"
            status = 500
            headers: dict = {}
            try:
                for route_method, pattern, name in _ROUTES:
                    if route_method != method:
                        continue
                    match = pattern.match(self.path.split("?", 1)[0])
                    if match is None:
                        continue
                    endpoint = name
                    payload = protocol.loads(self._read_body())
                    if payload is None or not isinstance(payload, dict):
                        payload = {}
                    handler = getattr(server, f"handle_{name}")
                    status, response = handler(payload, match)
                    break
                else:
                    raise _HttpError(404, f"no route for {method} {self.path}")
            except ProtocolError as error:
                status, response = 400, {"error": str(error)}
            except InvalidTrajectoryInput as error:
                status, response = 422, {"error": str(error), "code": error.code}
            except UnknownSessionError as error:
                status, response = 404, {"error": f"unknown session {error.args[0]!r}"}
            except Backpressure as error:
                # Same overload answer as the cluster gateway: 503 +
                # Retry-After with the stable ``server_overloaded`` code,
                # so one client retry policy covers both deployments.
                retry_after = getattr(error, "retry_after_s", server.config.retry_after_s)
                headers["Retry-After"] = str(max(1, round(retry_after)))
                status, response = ServerOverloaded.http_status, {
                    "error": str(error),
                    "code": ServerOverloaded.code,
                    "retry_after_s": retry_after,
                }
            except SessionLimitError as error:
                retry_after = server.config.retry_after_s
                headers["Retry-After"] = str(max(1, round(retry_after)))
                status, response = 429, {
                    "error": str(error),
                    "retry_after_s": retry_after,
                }
            except ServiceClosed as error:
                retry_after = server.config.retry_after_s
                headers["Retry-After"] = str(max(1, round(retry_after)))
                status, response = 503, {
                    "error": str(error),
                    "retry_after_s": retry_after,
                }
            except _HttpError as error:
                status, response = error.status, {"error": str(error), **error.extra}
                headers.update(error.headers)
            except ReproError as error:
                status = error.http_status
                response = {"error": str(error), "code": error.code}
            except Exception as error:  # noqa: BLE001 - must not kill the daemon
                status, response = 500, {"error": f"internal error: {error}"}
            try:
                self._respond(status, response, headers)
            except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
                pass  # client went away; nothing to answer
            server.metrics.observe(endpoint, time.perf_counter() - started, status)

        # ------------------------------------------------------------- verbs
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE")

    return Handler
