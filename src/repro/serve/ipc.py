"""Length-prefixed binary framing between the gateway and its workers.

The cluster tier (:mod:`repro.serve.cluster`) speaks a minimal IPC
protocol over ``socket.socketpair()``: every message is one *frame* — a
4-byte big-endian unsigned length followed by that many bytes of compact
JSON (the same encoder the HTTP protocol uses, so float values round-trip
bit-exactly and worker results are byte-identical to in-process ones).

Requests carry ``{"id": n, "op": "...", ...}``; responses echo the ``id``
with ``{"id": n, "ok": true/false, ...}``, which is what lets the
gateway multiplex many in-flight operations over a single socket per
worker.  This module only owns the framing; message semantics live in
:mod:`repro.serve.cluster`.

Both sides are provided: blocking helpers for the (single-threaded)
worker loop and ``asyncio`` helpers for the gateway.  A frame larger than
``MAX_FRAME_BYTES`` is a protocol violation and raises
:class:`IpcError` — a runaway length prefix must not trigger a
multi-gigabyte allocation.

The same framing crosses the host boundary unchanged:
:mod:`repro.serve.transport` layers connect/read timeouts, heartbeats,
reconnect backoff and generation-fenced handshakes on top of these exact
frames for TCP worker transport and gateway federation.  A socketpair fd
and a TCP socket are interchangeable here — only liveness semantics
differ (process death EOFs both, but only TCP can go half-open, which is
the transport layer's problem).
"""

from __future__ import annotations

import asyncio
import socket
import struct
from typing import Any

from repro.serve import protocol

#: Frame header: one big-endian u32 payload length.
_HEADER = struct.Struct("!I")

#: Upper bound on a single frame's payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class IpcError(RuntimeError):
    """A malformed or oversized IPC frame (protocol violation)."""


def frame(payload: bytes) -> bytes:
    """``payload`` with its length prefix prepended (one ``send`` worth)."""
    if len(payload) > MAX_FRAME_BYTES:
        raise IpcError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


def encode_message(message: dict) -> bytes:
    """A JSON message as one ready-to-send frame."""
    return frame(protocol.dumps(message))


# ------------------------------------------------------------ blocking side
def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on a clean EOF at a boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == n:
                return None  # clean EOF between frames
            raise IpcError(f"connection closed mid-frame ({remaining} bytes short)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialise and send one message (blocking)."""
    sock.sendall(encode_message(message))


def recv_message(sock: socket.socket, *, timeout: float | None = None) -> dict | None:
    """Receive one message (blocking); ``None`` when the peer closed.

    ``timeout`` (seconds) bounds the wait for the *first* header byte —
    the idle gap between frames — and is restored afterwards; a TCP
    worker uses it to notice a half-open gateway.  Expiry raises
    ``TimeoutError`` (``socket.timeout``).
    """
    if timeout is not None:
        previous = sock.gettimeout()
        sock.settimeout(timeout)
        try:
            header = _recv_exactly(sock, _HEADER.size)
        finally:
            sock.settimeout(previous)
    else:
        header = _recv_exactly(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise IpcError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    payload = _recv_exactly(sock, length) if length else b""
    if payload is None:  # pragma: no cover - only reachable with length > 0
        raise IpcError("connection closed before frame payload")
    message = protocol.loads(payload, context="ipc frame")
    if not isinstance(message, dict):
        raise IpcError(f"ipc frame must be a JSON object, got {type(message).__name__}")
    return message


# ------------------------------------------------------------- asyncio side
async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one message from a stream; ``None`` when the peer closed."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise IpcError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError as error:
        raise IpcError("connection closed mid-frame") from error
    message = protocol.loads(payload, context="ipc frame")
    if not isinstance(message, dict):
        raise IpcError(f"ipc frame must be a JSON object, got {type(message).__name__}")
    return message


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Serialise, send, and flush one message on a stream."""
    writer.write(encode_message(message))
    await writer.drain()


def message_payload(message: dict) -> dict[str, Any]:
    """The message without its routing envelope (``id``/``op`` keys)."""
    return {k: v for k, v in message.items() if k not in ("id", "op")}
