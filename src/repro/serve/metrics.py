"""Request counters and latency histograms for the ``/metrics`` endpoint.

One :class:`ServeMetrics` instance lives on the server.  Handlers time
themselves with :meth:`observe`; anything else that wants to count events
(sessions, batches, matched trajectories) uses :meth:`increment`.  The
snapshot is plain JSON so operators can scrape it with nothing fancier
than ``curl``.
"""

from __future__ import annotations

import threading
import time

from repro.utils.timer import LatencyHistogram


class ServeMetrics:
    """Thread-safe request/latency accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._requests: dict[str, int] = {}
        self._statuses: dict[int, int] = {}
        self._latency: dict[str, LatencyHistogram] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        """Record one handled request (latency + status code)."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            self._statuses[status] = self._statuses.get(status, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
        histogram.record(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (cache size, live workers, ...)."""
        with self._lock:
            self._gauges[name] = value

    def latency(self, endpoint: str) -> LatencyHistogram | None:
        """The latency histogram of one endpoint (``None`` if unused)."""
        with self._lock:
            return self._latency.get(endpoint)

    def snapshot(self) -> dict:
        """All counters and per-endpoint latency summaries."""
        with self._lock:
            requests = dict(self._requests)
            statuses = {str(k): v for k, v in sorted(self._statuses.items())}
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._latency)
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": requests,
            "statuses": statuses,
            "counters": counters,
            "gauges": gauges,
            "latency": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in histograms.items()
            },
        }
