"""Request counters and latency histograms for the ``/metrics`` endpoint.

One :class:`ServeMetrics` instance lives on the server.  Handlers time
themselves with :meth:`observe`; anything else that wants to count events
(sessions, batches, matched trajectories) uses :meth:`increment`.  The
snapshot is plain JSON so operators can scrape it with nothing fancier
than ``curl``.

:class:`RollingWindow` is reused beyond the autoscaler: the per-generation
A/B serving stats (:class:`repro.serve.ab.GenerationStats`) build their
recent-latency percentiles on it, so the ``/metrics`` ``"ab"`` section
reports the same windowed p50/p95 semantics as the admission gate.
"""

from __future__ import annotations

import threading
import time

from repro.utils.timer import LatencyHistogram


class RollingWindow:
    """A sliding time window of samples with cheap percentile queries.

    The autoscaler keys its decisions off the *recent* admission-queue
    wait, not the since-boot histogram — a deployment that was slammed an
    hour ago but is idle now must scale down.  Samples older than
    ``window_s`` are evicted lazily on every access; the window is small
    (seconds, not hours) so a plain list stays O(tick budget).
    """

    def __init__(self, window_s: float = 30.0, max_samples: int = 4096) -> None:
        self.window_s = window_s
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._samples: list[tuple[float, float]] = []  # (monotonic stamp, value)

    def record(self, value: float, now: float | None = None) -> None:
        """Add one sample (stamped with ``time.monotonic()`` by default)."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._samples.append((stamp, value))
            if len(self._samples) > self.max_samples:
                del self._samples[: len(self._samples) - self.max_samples]

    def _evict(self, now: float) -> None:
        horizon = now - self.window_s
        index = 0
        samples = self._samples
        while index < len(samples) and samples[index][0] < horizon:
            index += 1
        if index:
            del samples[:index]

    def values(self, now: float | None = None) -> list[float]:
        """All in-window sample values, oldest first."""
        stamp = time.monotonic() if now is None else now
        with self._lock:
            self._evict(stamp)
            return [value for _, value in self._samples]

    def percentile(self, q: float, now: float | None = None) -> float:
        """The ``q``-th percentile (0–100) of in-window samples; 0.0 if empty."""
        values = sorted(self.values(now))
        if not values:
            return 0.0
        rank = max(0, min(len(values) - 1, round(q / 100.0 * (len(values) - 1))))
        return values[rank]

    def count(self, now: float | None = None) -> int:
        """Number of in-window samples."""
        return len(self.values(now))


class ServeMetrics:
    """Thread-safe request/latency accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._requests: dict[str, int] = {}
        self._statuses: dict[int, int] = {}
        self._latency: dict[str, LatencyHistogram] = {}
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}

    def observe(self, endpoint: str, seconds: float, status: int) -> None:
        """Record one handled request (latency + status code)."""
        with self._lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1
            self._statuses[status] = self._statuses.get(status, 0) + 1
            histogram = self._latency.get(endpoint)
            if histogram is None:
                histogram = self._latency[endpoint] = LatencyHistogram()
        histogram.record(seconds)

    def increment(self, name: str, amount: int = 1) -> None:
        """Bump a named event counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (cache size, live workers, ...)."""
        with self._lock:
            self._gauges[name] = value

    def latency(self, endpoint: str) -> LatencyHistogram | None:
        """The latency histogram of one endpoint (``None`` if unused)."""
        with self._lock:
            return self._latency.get(endpoint)

    def snapshot(self) -> dict:
        """All counters and per-endpoint latency summaries."""
        with self._lock:
            requests = dict(self._requests)
            statuses = {str(k): v for k, v in sorted(self._statuses.items())}
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._latency)
        return {
            "uptime_s": time.time() - self.started_at,
            "requests": requests,
            "statuses": statuses,
            "counters": counters,
            "gauges": gauges,
            "latency": {
                endpoint: histogram.snapshot()
                for endpoint, histogram in histograms.items()
            },
        }
