"""Ground-truth path recovery from GPS via a classical HMM.

The paper's ground truth is produced by running the classical HMM matcher of
Lou et al. [8] / Newson & Krumm on the *GPS* sequence of each trip (§V-A1).
We reproduce that pipeline: Gaussian observation probability on projection
distance, exponential transition probability on the difference between the
straight-line and routed distances, Viterbi decoding, then stitching matched
segments into a connected path with shortest-path gap filling.

GPS noise is 1–50 m, so this step is easy and accurate; the simulator's true
path lets tests verify it directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cellular.trajectory import Trajectory
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine, stitch_segments

_LOG_EPS = -1e9


@dataclass(slots=True)
class GpsHmmConfig:
    """Parameters of the classical GPS HMM matcher.

    Attributes:
        candidate_radius_m: Search radius for candidate segments per point.
        max_candidates: Top-k candidates (by distance) per point.
        observation_sigma_m: Gaussian sigma on projection distance.
        transition_beta_m: Exponential scale on ``|great-circle - route|``.
        max_route_detour: Transitions whose routed length exceeds this
            multiple of the straight-line distance (plus a slack) are pruned.
    """

    candidate_radius_m: float = 80.0
    max_candidates: int = 6
    observation_sigma_m: float = 20.0
    transition_beta_m: float = 60.0
    max_route_detour: float = 5.0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range parameters."""
        if self.candidate_radius_m <= 0 or self.max_candidates < 1:
            raise ValueError("invalid candidate settings")
        if self.observation_sigma_m <= 0 or self.transition_beta_m <= 0:
            raise ValueError("probability scales must be positive")


# Re-exported for backwards compatibility; the canonical home is
# :func:`repro.network.shortest_path.stitch_segments`.
stitch_path = stitch_segments


def match_gps_trajectory(
    trajectory: Trajectory,
    network: RoadNetwork,
    engine: ShortestPathEngine,
    config: GpsHmmConfig | None = None,
) -> list[int]:
    """Map-match a GPS trajectory; returns the path as segment ids.

    Empty when the trajectory has no candidates at all (should not happen on
    a covered network).
    """
    config = config or GpsHmmConfig()
    config.validate()

    # Candidate preparation: nearby segments per point.
    candidate_sets: list[list[int]] = []
    kept_points = []
    for point in trajectory.points:
        found = network.segments_near(point.position, config.candidate_radius_m)
        if not found:
            found = network.nearest_segments(point.position, count=config.max_candidates)
        if found:
            candidate_sets.append(found[: config.max_candidates])
            kept_points.append(point)
    if not candidate_sets:
        return []

    # Viterbi in log space.
    def log_observation(point, seg_id: int) -> float:
        dist = network.segments[seg_id].distance_to(point.position)
        return -0.5 * (dist / config.observation_sigma_m) ** 2

    def log_transition(prev_point, point, prev_seg: int, seg_id: int) -> float:
        straight = prev_point.position.distance_to(point.position)
        routed = engine.route_length(prev_seg, seg_id)
        if math.isinf(routed):
            return _LOG_EPS
        if routed > config.max_route_detour * straight + 500.0:
            return _LOG_EPS
        return -abs(straight - routed) / config.transition_beta_m

    scores = [log_observation(kept_points[0], c) for c in candidate_sets[0]]
    back: list[list[int]] = []
    for i in range(1, len(candidate_sets)):
        new_scores: list[float] = []
        pointers: list[int] = []
        for seg_id in candidate_sets[i]:
            obs = log_observation(kept_points[i], seg_id)
            best_score = -math.inf
            best_prev = 0
            for j, prev_seg in enumerate(candidate_sets[i - 1]):
                trans = log_transition(kept_points[i - 1], kept_points[i], prev_seg, seg_id)
                score = scores[j] + trans
                if score > best_score:
                    best_score = score
                    best_prev = j
            new_scores.append(best_score + obs)
            pointers.append(best_prev)
        scores = new_scores
        back.append(pointers)

    # Backtrack the best state sequence.
    best_last = max(range(len(scores)), key=lambda j: scores[j])
    states = [best_last]
    for pointers in reversed(back):
        states.append(pointers[states[-1]])
    states.reverse()
    matched = [candidate_sets[i][state] for i, state in enumerate(states)]
    return stitch_path(matched, engine)
