"""Dataset characteristics — the quantities reported in Table I."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import MatchingDataset


@dataclass(slots=True)
class DatasetStatistics:
    """Summary statistics of a matching dataset (Table I's rows)."""

    name: str
    road_segments: int
    intersections: int
    cellular_points: int
    gps_points: int
    cellular_points_per_trajectory: float
    gps_points_per_trajectory: float
    mean_cellular_interval_s: float
    max_cellular_interval_s: float
    mean_cellular_distance_m: float
    median_cellular_distance_m: float

    def rows(self) -> list[tuple[str, str]]:
        """``(label, value)`` rows in the paper's Table I order."""
        return [
            ("road segments", f"{self.road_segments:,}"),
            ("intersections", f"{self.intersections:,}"),
            ("all cellular trajectory points", f"{self.cellular_points:,}"),
            ("all GPS trajectory points", f"{self.gps_points:,}"),
            ("cellular trajectory points per trajectory", f"{self.cellular_points_per_trajectory:.0f}"),
            ("GPS trajectory points per trajectory", f"{self.gps_points_per_trajectory:.0f}"),
            ("average cellular sampling interval (s)", f"{self.mean_cellular_interval_s:.0f}"),
            ("maximum cellular sampling interval (s)", f"{self.max_cellular_interval_s:.0f}"),
            ("average cellular sampling distance (m)", f"{self.mean_cellular_distance_m:.0f}"),
            ("median cellular sampling distance (m)", f"{self.median_cellular_distance_m:.0f}"),
        ]


def compute_statistics(dataset: MatchingDataset) -> DatasetStatistics:
    """Compute Table-I style statistics for ``dataset``.

    Interval/distance statistics use the *raw* (unfiltered) cellular
    trajectories, matching how an operator would characterise the feed.
    """
    if not dataset.samples:
        raise ValueError("empty dataset")
    intervals: list[float] = []
    distances: list[float] = []
    cellular_points = 0
    gps_points = 0
    for sample in dataset.samples:
        intervals.extend(sample.raw_cellular.sampling_intervals())
        distances.extend(sample.raw_cellular.sampling_distances())
        cellular_points += len(sample.raw_cellular)
        gps_points += len(sample.gps)
    n = len(dataset.samples)
    return DatasetStatistics(
        name=dataset.name,
        road_segments=dataset.network.num_segments,
        intersections=dataset.network.num_nodes,
        cellular_points=cellular_points,
        gps_points=gps_points,
        cellular_points_per_trajectory=cellular_points / n,
        gps_points_per_trajectory=gps_points / n,
        mean_cellular_interval_s=float(np.mean(intervals)) if intervals else 0.0,
        max_cellular_interval_s=float(np.max(intervals)) if intervals else 0.0,
        mean_cellular_distance_m=float(np.mean(distances)) if distances else 0.0,
        median_cellular_distance_m=float(np.median(distances)) if distances else 0.0,
    )
