"""Dataset persistence: save/load a full :class:`MatchingDataset`.

A dataset bundles the road network, the tower field, and every labelled
sample (raw + filtered cellular trajectories, the GPS sequence, and both
paths).  Everything serialises to one gzip-compressed JSON document, so
generated cities can be shared and experiments re-run bit-identically
without re-simulating.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path

from repro.cellular.tower import CellTower, TowerField
from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.geometry import Point
from repro.network.io import network_from_dict, network_to_dict

_FORMAT_VERSION = 1


def _trajectory_to_dict(trajectory: Trajectory) -> dict:
    return {
        "id": trajectory.trajectory_id,
        "points": [
            [p.position.x, p.position.y, p.timestamp, p.tower_id]
            for p in trajectory.points
        ],
    }


def _trajectory_from_dict(data: dict) -> Trajectory:
    points = [
        TrajectoryPoint(
            position=Point(float(x), float(y)),
            timestamp=float(t),
            tower_id=None if tower is None else int(tower),
        )
        for x, y, t, tower in data["points"]
    ]
    return Trajectory(points=points, trajectory_id=int(data["id"]), _validated=True)


def dataset_to_dict(dataset: MatchingDataset) -> dict:
    """A JSON-serialisable representation of the full dataset."""
    return {
        "version": _FORMAT_VERSION,
        "name": dataset.name,
        "train_fraction": dataset.train_fraction,
        "val_fraction": dataset.val_fraction,
        "network": network_to_dict(dataset.network),
        "towers": [
            [t.tower_id, t.location.x, t.location.y] for t in dataset.towers
        ],
        "samples": [
            {
                "id": s.sample_id,
                "cellular": _trajectory_to_dict(s.cellular),
                "raw_cellular": _trajectory_to_dict(s.raw_cellular),
                "gps": _trajectory_to_dict(s.gps),
                "truth_path": s.truth_path,
                "sim_path": s.sim_path,
            }
            for s in dataset.samples
        ],
    }


def dataset_from_dict(data: dict) -> MatchingDataset:
    """Rebuild a dataset from :func:`dataset_to_dict` output."""
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version {version!r}")
    network = network_from_dict(data["network"])
    towers = TowerField(
        [
            CellTower(int(tid), Point(float(x), float(y)))
            for tid, x, y in data["towers"]
        ]
    )
    samples = [
        MatchingSample(
            sample_id=int(entry["id"]),
            cellular=_trajectory_from_dict(entry["cellular"]),
            raw_cellular=_trajectory_from_dict(entry["raw_cellular"]),
            gps=_trajectory_from_dict(entry["gps"]),
            truth_path=[int(s) for s in entry["truth_path"]],
            sim_path=[int(s) for s in entry.get("sim_path", [])],
        )
        for entry in data["samples"]
    ]
    return MatchingDataset(
        name=str(data["name"]),
        network=network,
        towers=towers,
        samples=samples,
        train_fraction=float(data.get("train_fraction", 0.7)),
        val_fraction=float(data.get("val_fraction", 0.1)),
    )


def save_dataset(dataset: MatchingDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` as gzip-compressed JSON."""
    payload = json.dumps(dataset_to_dict(dataset)).encode("utf-8")
    with gzip.open(Path(path), "wb") as handle:
        handle.write(payload)


def load_dataset(path: str | Path) -> MatchingDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with gzip.open(Path(path), "rb") as handle:
        return dataset_from_dict(json.loads(handle.read().decode("utf-8")))
