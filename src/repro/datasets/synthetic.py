"""Synthetic city dataset assembly with Hangzhou-like / Xiamen-like presets.

The presets mirror Table I qualitatively at reduced scale: the Hangzhou-like
city is larger, with a slightly sparser cellular sampling rate (mean 67 s vs
42 s) and longer sampling distances; the Xiamen-like city is smaller and
samples faster.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.cellular.filters import apply_standard_filters
from repro.cellular.simulator import SimulationConfig, VehicleSimulator
from repro.cellular.tower import TowerPlacementConfig, place_towers
from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.datasets.groundtruth import GpsHmmConfig, match_gps_trajectory
from repro.network.generators import CityConfig, generate_city_network
from repro.network.shortest_path import ShortestPathEngine
from repro.utils import derive_rng


@dataclass(slots=True)
class DatasetConfig:
    """Everything needed to build a synthetic city dataset.

    Attributes:
        name: Dataset label (``"hangzhou"`` / ``"xiamen"`` / custom).
        city: Road-network generator settings.
        towers: Tower placement settings.
        simulation: Trip/sampling settings.
        num_trajectories: How many trips to simulate.
        groundtruth: ``"gps_hmm"`` runs the paper's GPS-HMM pipeline;
            ``"oracle"`` uses the simulator's true path directly (faster,
            used by unit tests).
        apply_filters: Whether to run the SnapNet pre-filters on the
            cellular trajectories (the paper always does).
    """

    name: str = "hangzhou"
    city: CityConfig = None  # type: ignore[assignment]
    towers: TowerPlacementConfig = None  # type: ignore[assignment]
    simulation: SimulationConfig = None  # type: ignore[assignment]
    num_trajectories: int = 300
    groundtruth: str = "gps_hmm"
    apply_filters: bool = True

    def __post_init__(self) -> None:
        if self.city is None:
            self.city = CityConfig()
        if self.towers is None:
            self.towers = TowerPlacementConfig()
        if self.simulation is None:
            self.simulation = SimulationConfig()

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if self.num_trajectories < 1:
            raise ValueError("num_trajectories must be >= 1")
        if self.groundtruth not in ("gps_hmm", "oracle"):
            raise ValueError("groundtruth must be 'gps_hmm' or 'oracle'")
        self.city.validate()
        self.towers.validate()
        self.simulation.validate()


def preset_config(name: str, num_trajectories: int = 300, scale: float = 1.0) -> DatasetConfig:
    """Named preset mirroring one of the paper's two cities.

    ``scale`` multiplies the grid dimensions (0.5 gives a quarter-size city
    for fast tests).
    """
    rows = max(8, int(round(24 * scale)))
    if name == "hangzhou":
        return DatasetConfig(
            name="hangzhou",
            city=CityConfig(
                grid_rows=rows,
                grid_cols=rows,
                block_size_m=230.0,
                density_gradient=0.9,
                removal_prob=0.12,
            ),
            towers=TowerPlacementConfig(base_spacing_m=480.0, spacing_gradient=2.2),
            simulation=SimulationConfig(
                cellular_interval_mean_s=67.0,
                cellular_interval_sigma_s=24.0,
                cellular_interval_max_s=247.0,
                gps_interval_s=25.0,
            ),
            num_trajectories=num_trajectories,
        )
    if name == "xiamen":
        return DatasetConfig(
            name="xiamen",
            city=CityConfig(
                grid_rows=max(8, int(round(20 * scale))),
                grid_cols=rows,
                block_size_m=200.0,
                density_gradient=0.7,
                removal_prob=0.10,
            ),
            towers=TowerPlacementConfig(base_spacing_m=430.0, spacing_gradient=1.8),
            simulation=SimulationConfig(
                cellular_interval_mean_s=42.0,
                cellular_interval_sigma_s=15.0,
                cellular_interval_max_s=185.0,
                gps_interval_s=19.0,
            ),
            num_trajectories=num_trajectories,
        )
    raise ValueError(f"unknown preset {name!r}; use 'hangzhou' or 'xiamen'")


def make_city_dataset(
    config: DatasetConfig | str | None = None,
    rng: int | np.random.Generator | None = 0,
    num_trajectories: int | None = None,
    scale: float = 1.0,
) -> MatchingDataset:
    """Build a complete synthetic dataset: city, towers, trips, ground truth.

    ``config`` may be a :class:`DatasetConfig` or a preset name; ``None``
    defaults to the Hangzhou-like preset.
    """
    if config is None or isinstance(config, str):
        config = preset_config(config or "hangzhou", num_trajectories=num_trajectories or 300)
    elif num_trajectories is not None:
        config = replace(config, num_trajectories=num_trajectories)
    config.validate()

    network = generate_city_network(config.city, rng=derive_rng(rng, config.name, "city"))
    towers = place_towers(network, config.towers, rng=derive_rng(rng, config.name, "towers"))
    # Clamp the trip range to what the generated city can actually host, so
    # scaled-down cities still produce valid origin/destination pairs.
    min_x, min_y, max_x, max_y = network.bounding_box()
    diagonal = ((max_x - min_x) ** 2 + (max_y - min_y) ** 2) ** 0.5
    simulation = config.simulation
    if simulation.max_trip_m > 0.85 * diagonal:
        simulation = replace(
            simulation,
            max_trip_m=max(600.0, 0.85 * diagonal),
            min_trip_m=min(simulation.min_trip_m, max(300.0, 0.4 * diagonal)),
        )
    simulator = VehicleSimulator(
        network,
        towers,
        config=simulation,
        rng=derive_rng(rng, config.name, "trips"),
    )
    engine = ShortestPathEngine(network)
    gps_hmm = GpsHmmConfig()

    samples: list[MatchingSample] = []
    for trip in simulator.simulate_many(config.num_trajectories):
        if config.groundtruth == "gps_hmm":
            truth = match_gps_trajectory(trip.gps, network, engine, gps_hmm)
        else:
            truth = list(trip.path)
        if not truth:
            continue
        cellular = (
            apply_standard_filters(trip.cellular) if config.apply_filters else trip.cellular
        )
        if len(cellular) < 3:
            continue
        samples.append(
            MatchingSample(
                sample_id=trip.trip_id,
                cellular=cellular,
                raw_cellular=trip.cellular,
                gps=trip.gps,
                truth_path=truth,
                sim_path=list(trip.path),
            )
        )
    dataset = MatchingDataset(
        name=config.name, network=network, towers=towers, samples=samples
    )
    dataset._engine = engine
    return dataset
