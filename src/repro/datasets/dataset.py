"""Matching datasets: samples, splits, and accessors."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellular.tower import TowerField
from repro.cellular.trajectory import Trajectory
from repro.geometry import Point
from repro.network.road_network import RoadNetwork
from repro.network.shortest_path import ShortestPathEngine


@dataclass(slots=True)
class MatchingSample:
    """One labelled CTMM instance.

    Attributes:
        sample_id: Unique id within the dataset.
        cellular: The pre-filtered cellular trajectory matchers consume.
        raw_cellular: The unfiltered cellular trajectory (for filter studies
            and resampling sweeps, which re-filter after thinning).
        gps: The paired GPS trajectory.
        truth_path: Ground-truth path as ordered segment ids (recovered from
            GPS by the classical HMM, per the paper's protocol).
        sim_path: The simulator's actual driven path — used only to validate
            the ground-truth pipeline itself, never given to matchers.
    """

    sample_id: int
    cellular: Trajectory
    raw_cellular: Trajectory
    gps: Trajectory
    truth_path: list[int]
    sim_path: list[int] = field(default_factory=list)


@dataclass
class MatchingDataset:
    """A city's worth of CTMM data plus the substrate it lives on."""

    name: str
    network: RoadNetwork
    towers: TowerField
    samples: list[MatchingSample]
    train_fraction: float = 0.7
    val_fraction: float = 0.1
    _engine: ShortestPathEngine | None = field(default=None, repr=False)

    @property
    def engine(self) -> ShortestPathEngine:
        """A shared, memoising shortest-path engine over the network."""
        if self._engine is None:
            self._engine = ShortestPathEngine(self.network)
        return self._engine

    def __len__(self) -> int:
        return len(self.samples)

    def _boundaries(self) -> tuple[int, int]:
        n = len(self.samples)
        train_end = int(n * self.train_fraction)
        val_end = train_end + int(n * self.val_fraction)
        return train_end, min(val_end, n)

    @property
    def train(self) -> list[MatchingSample]:
        """Training split (historical trajectories with traveled paths)."""
        train_end, _ = self._boundaries()
        return self.samples[:train_end]

    @property
    def val(self) -> list[MatchingSample]:
        """Validation split for hyper-parameter selection."""
        train_end, val_end = self._boundaries()
        return self.samples[train_end:val_end]

    @property
    def test(self) -> list[MatchingSample]:
        """Held-out evaluation split."""
        _, val_end = self._boundaries()
        return self.samples[val_end:]

    def city_centre(self) -> Point:
        """Centre of the network bounding box (for Fig. 7(a) stratification)."""
        min_x, min_y, max_x, max_y = self.network.bounding_box()
        return Point((min_x + max_x) / 2.0, (min_y + max_y) / 2.0)

    def distance_to_centre(self, sample: MatchingSample) -> float:
        """Distance from the sample's cellular centroid to the city centre."""
        return sample.cellular.centroid().distance_to(self.city_centre())

    def with_samples(self, samples: list[MatchingSample]) -> "MatchingDataset":
        """A shallow copy over a different sample list (shares the substrate)."""
        clone = MatchingDataset(
            name=self.name,
            network=self.network,
            towers=self.towers,
            samples=samples,
            train_fraction=self.train_fraction,
            val_fraction=self.val_fraction,
        )
        clone._engine = self._engine
        return clone
