"""Dataset assembly: synthetic city datasets with GPS-derived ground truth."""

from repro.datasets.dataset import MatchingDataset, MatchingSample
from repro.datasets.groundtruth import GpsHmmConfig, match_gps_trajectory
from repro.datasets.synthetic import DatasetConfig, make_city_dataset, preset_config
from repro.datasets.stats import DatasetStatistics, compute_statistics
from repro.datasets.io import (
    dataset_from_dict,
    dataset_to_dict,
    load_dataset,
    save_dataset,
)

__all__ = [
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "save_dataset",
    "MatchingDataset",
    "MatchingSample",
    "GpsHmmConfig",
    "match_gps_trajectory",
    "DatasetConfig",
    "make_city_dataset",
    "preset_config",
    "DatasetStatistics",
    "compute_statistics",
]
