"""Reverse-mode automatic differentiation on numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` on a scalar result walks the recorded
graph in reverse topological order and accumulates gradients into every
tensor created with ``requires_grad=True``.

The op set is exactly what the paper's models need: arithmetic with
broadcasting, matmul, tanh/relu/sigmoid/exp/log, reductions, softmax,
concatenation, indexing (embedding lookup), and a ``segment_mean`` used by
the relational message passing of the Het-Graph encoder.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph recording inside the block (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum away leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A differentiable numpy array node.

    Create leaves with ``Tensor(data, requires_grad=True)``; intermediate
    nodes are produced by the operator methods below.  ``float64`` is used
    throughout — the models are tiny, and exact gradients make the numeric
    gradient-check tests unambiguous.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data: np.ndarray | float | int | list,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------- properties
    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of array dimensions."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    def item(self) -> float:
        """The scalar value (raises unless the tensor has exactly one element)."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    def numpy(self) -> np.ndarray:
        """The raw array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this data but outside the graph."""
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------ construction
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        needs = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=needs, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # -------------------------------------------------------------- arithmetic
    def _coerce(self, other: "Tensor | float | int | np.ndarray") -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float | int") -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: "Tensor | float | int") -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | int") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | float | int") -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.outer(grad, other.data) if grad.ndim else grad * other.data
                    if self.data.ndim == 1:
                        g = grad * other.data
                    self._accumulate(_unbroadcast(np.asarray(g), self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    if self.data.ndim == 1:
                        g = g.reshape(self.shape) if g.size == self.data.size else g.sum(axis=0)
                    self._accumulate(_unbroadcast(np.asarray(g), self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.outer(self.data, grad)
                    if other.data.ndim == 1:
                        g = self.data * grad
                    other._accumulate(_unbroadcast(np.asarray(g), other.shape))
                else:
                    lhs = np.swapaxes(self.data, -1, -2)
                    if grad.ndim == lhs.ndim - 1:
                        g = lhs @ grad[..., None]
                        g = g[..., 0]
                    else:
                        g = lhs @ grad
                    other._accumulate(_unbroadcast(np.asarray(g), other.shape))

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------- activations
    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        """Elementwise rectified linear unit."""
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, 500))),
            np.exp(np.clip(self.data, -500, 500))
            / (1.0 + np.exp(np.clip(self.data, -500, 500))),
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(np.clip(self.data, -700, 700))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm (inputs clipped away from zero)."""
        safe = np.maximum(self.data, 1e-300)
        out_data = np.log(safe)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / safe)

        return Tensor._make(out_data, (self,), backward)

    # --------------------------------------------------------------- reductions
    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Mean over ``axis`` (all axes when ``None``)."""
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max over ``axis`` (gradient flows to the first argmax)."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split ties evenly so the gradient check stays exact.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------- shape
    def reshape(self, *shape: int) -> "Tensor":
        """View with a different shape."""
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(self.shape))

        return Tensor._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        """Swap the last two axes."""
        out_data = np.swapaxes(self.data, -1, -2)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, -1, -2))

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return Tensor._make(np.asarray(out_data), (self,), backward)

    # ---------------------------------------------------------------- backward
    def backward(self) -> None:
        """Backpropagate from this (scalar) tensor through the graph."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar tensor")
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        """Clear this tensor's accumulated gradient."""
        self.grad = None


def concat(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` (the paper's ⊕ operator)."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("concat requires at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0, *sizes])

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(int(lo), int(hi))
                tensor._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shape tensors along a new axis."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("stack requires at least one tensor")
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)
