"""Attention mechanisms.

:class:`AdditiveAttention` is the paper's Eq. 6 / Eq. 9 form:
``softmax_j( W_v . tanh( W_q q  (+)  W_k k_j ) )`` followed by a weighted sum
of the values, where ``(+)`` is concatenation.  Trajectories are short
(tens of points), so materialising the pairwise score tensor is cheap.

:class:`ScaledDotProductSelfAttention` is the standard single-head form used
by the TransformerMM baseline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nn.functional import concat, softmax
from repro.nn.init import xavier_uniform
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class AdditiveAttention(Module):
    """Additive (concat) attention with learned projections.

    Args:
        dim: Embedding dimension of queries/keys/values.
        hidden: Width of the projected query/key spaces (defaults to ``dim``).
    """

    def __init__(self, dim: int, hidden: int | None = None,
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        hidden = hidden or dim
        self.w_query = Linear(dim, hidden, bias=False, rng=rng)
        self.w_key = Linear(dim, hidden, bias=False, rng=rng)
        self.w_score = Parameter(xavier_uniform((2 * hidden, 1), rng))

    def scores(self, queries: Tensor, keys: Tensor) -> Tensor:
        """Unnormalised pairwise scores, shape ``(n_queries, n_keys)``."""
        n = queries.shape[0]
        m = keys.shape[0]
        q_proj = self.w_query(queries)  # (n, h)
        k_proj = self.w_key(keys)  # (m, h)
        h = q_proj.shape[-1]
        ones_m = Tensor(np.ones((1, m, 1)))
        ones_n = Tensor(np.ones((n, 1, 1)))
        q_tiled = q_proj.reshape(n, 1, h) * ones_m  # (n, m, h)
        k_tiled = k_proj.reshape(1, m, h) * ones_n  # (n, m, h)
        merged = concat([q_tiled, k_tiled], axis=-1).tanh()  # (n, m, 2h)
        flat = merged.reshape(n * m, 2 * h) @ self.w_score  # (n*m, 1)
        return flat.reshape(n, m)

    def forward(self, queries: Tensor, keys: Tensor, values: Tensor | None = None) -> Tensor:
        """Context vectors: attention-weighted sums of ``values`` per query.

        ``values`` defaults to ``keys`` (self-attention over a trajectory).
        Returns shape ``(n_queries, dim_values)``.
        """
        if values is None:
            values = keys
        weights = softmax(self.scores(queries, keys), axis=-1)
        return weights @ values

    def attention_weights(self, queries: Tensor, keys: Tensor) -> np.ndarray:
        """Normalised attention matrix as a plain array (for inspection)."""
        return softmax(self.scores(queries, keys), axis=-1).numpy()


class ScaledDotProductSelfAttention(Module):
    """Single-head scaled dot-product self-attention."""

    def __init__(self, dim: int, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.dim = dim
        self.w_query = Linear(dim, dim, bias=False, rng=rng)
        self.w_key = Linear(dim, dim, bias=False, rng=rng)
        self.w_value = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Self-attend over rows of ``x`` (sequence length on axis 0)."""
        q = self.w_query(x)
        k = self.w_key(x)
        v = self.w_value(x)
        scores = (q @ k.transpose()) * (1.0 / math.sqrt(self.dim))
        return softmax(scores, axis=-1) @ v
