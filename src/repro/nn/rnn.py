"""Gated recurrent units for the seq2seq baselines (DeepMM, DMM)."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import stack
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class GRUCell(Module):
    """One GRU step: ``h' = (1 - z) * n + z * h``."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.x_gates = Linear(input_dim, 3 * hidden_dim, rng=rng)
        self.h_gates = Linear(hidden_dim, 3 * hidden_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance the hidden state; ``x`` is ``(batch, in)``, ``h`` ``(batch, hid)``."""
        d = self.hidden_dim
        gx = self.x_gates(x)
        gh = self.h_gates(h)
        z = (gx[:, 0:d] + gh[:, 0:d]).sigmoid()
        r = (gx[:, d : 2 * d] + gh[:, d : 2 * d]).sigmoid()
        n = (gx[:, 2 * d : 3 * d] + r * gh[:, 2 * d : 3 * d]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """Unidirectional GRU over a sequence."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(self, sequence: Tensor, h0: Tensor | None = None) -> tuple[Tensor, Tensor]:
        """Run over ``sequence`` of shape ``(time, in)``.

        Returns ``(outputs, final_hidden)`` where outputs has shape
        ``(time, hidden)`` and final_hidden ``(1, hidden)``.
        """
        steps = sequence.shape[0]
        h = h0 if h0 is not None else Tensor(np.zeros((1, self.hidden_dim)))
        outputs = []
        for t in range(steps):
            x_t = sequence[t : t + 1]
            h = self.cell(x_t, h)
            outputs.append(h.reshape(self.hidden_dim))
        return stack(outputs, axis=0), h
