"""A minimal deep-learning framework on numpy.

The paper implements its models in a message-passing framework on GPUs; this
package provides the same building blocks — reverse-mode autograd tensors,
layers, attention, recurrence, optimisers, and losses — in pure numpy, sized
for the small models the paper uses (d=128, two graph layers, small MLPs).

Everything differentiable flows through :class:`Tensor`; models subclass
:class:`Module`; training uses :class:`Adam` with
:func:`cross_entropy_with_label_smoothing` exactly as §IV-D prescribes.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.module import Module, Parameter, StateDictMismatch
from repro.nn.layers import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.nn.attention import AdditiveAttention, ScaledDotProductSelfAttention
from repro.nn.rnn import GRU, GRUCell
from repro.nn.transformer import TransformerEncoderLayer
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.loss import (
    binary_cross_entropy_with_logits,
    cross_entropy_with_label_smoothing,
    mse_loss,
)
from repro.nn.init import xavier_uniform
from repro.nn.serialization import (
    Artifact,
    config_fingerprint,
    load_state,
    read_artifact,
    save_state,
    write_artifact,
)

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "StateDictMismatch",
    "Linear",
    "MLP",
    "Embedding",
    "Dropout",
    "LayerNorm",
    "AdditiveAttention",
    "ScaledDotProductSelfAttention",
    "GRU",
    "GRUCell",
    "TransformerEncoderLayer",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "cross_entropy_with_label_smoothing",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "xavier_uniform",
    "save_state",
    "load_state",
    "Artifact",
    "read_artifact",
    "write_artifact",
    "config_fingerprint",
]
