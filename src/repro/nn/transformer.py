"""A small transformer encoder layer for the TransformerMM baseline."""

from __future__ import annotations

import numpy as np

from repro.nn.attention import ScaledDotProductSelfAttention
from repro.nn.layers import LayerNorm, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class TransformerEncoderLayer(Module):
    """Pre-norm single-head transformer block: attention + feed-forward."""

    def __init__(self, dim: int, ffn_dim: int | None = None,
                 rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        ffn_dim = ffn_dim or 2 * dim
        self.attention = ScaledDotProductSelfAttention(dim, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.ffn_in = Linear(dim, ffn_dim, rng=rng)
        self.ffn_out = Linear(ffn_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """Transform a ``(time, dim)`` sequence."""
        x = x + self.attention(self.norm1(x))
        return x + self.ffn_out(self.ffn_in(self.norm2(x)).relu())


def sinusoidal_positions(length: int, dim: int) -> np.ndarray:
    """Classic sinusoidal positional encodings, shape ``(length, dim)``."""
    positions = np.arange(length)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    table = np.zeros((length, dim))
    table[:, 0::2] = np.sin(positions * div)
    table[:, 1::2] = np.cos(positions * div[: (dim - dim // 2)])
    return table
