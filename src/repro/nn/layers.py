"""Core layers: Linear, MLP, Embedding, LayerNorm, Dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import dropout_mask, embedding_lookup
from repro.nn.init import normal_init, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils import ensure_rng


class Linear(Module):
    """Affine map ``x @ W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


_ACTIVATIONS = {
    "relu": lambda t: t.relu(),
    "tanh": lambda t: t.tanh(),
    "sigmoid": lambda t: t.sigmoid(),
    "identity": lambda t: t,
}


class MLP(Module):
    """Multilayer perceptron over a list of layer widths.

    ``MLP([in, hidden, out])`` builds two linear layers with ``activation``
    between them and ``out_activation`` (default identity — emit logits) on
    the output.
    """

    def __init__(
        self,
        dims: list[int],
        activation: str = "relu",
        out_activation: str = "identity",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output widths")
        if activation not in _ACTIVATIONS or out_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation; choose from {sorted(_ACTIVATIONS)}")
        rng = ensure_rng(rng)
        self.layers = [
            Linear(d_in, d_out, rng=rng) for d_in, d_out in zip(dims, dims[1:])
        ]
        self.activation = activation
        self.out_activation = out_activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            act = self.out_activation if i == len(self.layers) - 1 else self.activation
            x = _ACTIVATIONS[act](x)
        return x


class Embedding(Module):
    """Trainable lookup table: integer ids to dense vectors.

    This realises the paper's ``W_init`` (one-hot times a learnable matrix)
    without materialising the one-hot vectors.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(normal_init((num_embeddings, dim), rng, std=0.1))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return embedding_lookup(self.weight, indices)

    def all(self) -> Tensor:
        """The full table as a differentiable tensor."""
        return embedding_lookup(self.weight, np.arange(self.num_embeddings))


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centred = x - mean
        var = (centred * centred).mean(axis=-1, keepdims=True)
        normed = centred * ((var + self.eps) ** -0.5)
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, rng: int | np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = ensure_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return dropout_mask(x, self.p, self._rng, self.training)
