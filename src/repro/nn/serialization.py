"""Validated model artifacts: a versioned, checksummed ``.npz`` envelope.

A *versioned artifact* is a plain ``.npz`` archive (readable with
``numpy.load``) that additionally carries an embedded manifest entry,
``__manifest__.json``::

    {
      "format_version": 1,
      "kind": "lhmm-model",
      "meta": {...},                      # caller metadata (e.g. config)
      "arrays": {
        "node_embeddings": {"sha256": "...", "shape": [410, 12],
                            "dtype": "float64"},
        ...
      }
    }

:func:`read_artifact` verifies every array against the manifest — SHA-256
of the raw ``.npy`` bytes, shape, and dtype — and raises a structured
:class:`~repro.errors.ArtifactCorrupt` on any disagreement (a flipped
byte anywhere in the file is caught) or :class:`ArtifactIncompatible`
for intact files of the wrong kind or an unsupported format version.
Legacy bare ``.npz`` archives (no manifest) still load behind a
``UserWarning`` when the caller opts in.

Writes are atomic and byte-deterministic: arrays are serialised into an
uncompressed zip with pinned timestamps, written to a sibling temp file,
fsynced, and ``os.replace``d into place — the same arrays always produce
the same bytes (resume-parity tests compare artifacts with ``filecmp``),
and a crashed writer can never leave a half-written archive under the
final name.

Model artifacts written by :meth:`LHMM.save` use the ``meta`` mapping as
the *only* reconstruction recipe: ``meta["arch"]`` names the registered
architecture (:mod:`repro.core.registry` — the factory registry builds
the model, no classes are ever pickled), ``meta["config"]`` carries the
full configuration dict, and ``meta["weights"]`` lists the weight sets
in the payload (``["raw"]``, or ``["raw", "ema"]`` when the trainer's
EMA shadow set rides along under ``ema.*``-prefixed array keys).

``save_state``/``load_state`` are the module-level convenience wrappers.
They write *exactly* the path they are given: the historical
``np.savez`` behaviour of silently appending ``.npz`` to suffixless
paths (``save_state("model")`` wrote ``model.npz`` while callers kept
asking for ``model``) is gone.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.errors import ArtifactCorrupt, ArtifactIncompatible
from repro.nn.module import Module

#: Bump when the envelope layout changes incompatibly.
FORMAT_VERSION = 1

_MANIFEST_NAME = "__manifest__.json"
#: Pinned zip timestamp (the zip epoch) — keeps artifact bytes
#: independent of the wall clock.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """A short stable digest of a configuration mapping.

    Canonical-JSON SHA-256, truncated to 16 hex chars — enough to detect
    a mismatched config, short enough to read in error messages.
    """
    canonical = json.dumps(dict(config), sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


@dataclass(slots=True)
class Artifact:
    """A verified (or legacy) archive: arrays plus its manifest."""

    arrays: dict[str, np.ndarray]
    manifest: dict[str, Any] | None
    path: Path

    @property
    def kind(self) -> str | None:
        return None if self.manifest is None else self.manifest.get("kind")

    @property
    def meta(self) -> dict[str, Any]:
        return {} if self.manifest is None else dict(self.manifest.get("meta", {}))


def atomic_write_bytes(path: str | Path, writer: Callable[[io.BufferedWriter], None]) -> Path:
    """Write a file atomically: temp sibling + flush + fsync + ``os.replace``."""
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # pragma: no cover - only on a failed write
            tmp.unlink(missing_ok=True)
    return path


def _array_bytes(array: np.ndarray) -> bytes:
    """The canonical ``.npy`` serialisation of ``array``."""
    buffer = io.BytesIO()
    # np.asarray(order="C") rather than ascontiguousarray: the latter
    # promotes 0-d arrays to 1-d, which would contradict the manifest.
    np.lib.format.write_array(
        buffer, np.asarray(array, order="C"), allow_pickle=False
    )
    return buffer.getvalue()


def write_artifact(
    path: str | Path,
    arrays: Mapping[str, np.ndarray],
    *,
    kind: str,
    meta: Mapping[str, Any] | None = None,
) -> Path:
    """Atomically write a versioned, checksummed artifact to ``path``.

    ``arrays`` are stored uncompressed in sorted name order with pinned
    zip timestamps, so identical inputs yield identical bytes.
    """
    entries: dict[str, bytes] = {}
    table: dict[str, dict[str, Any]] = {}
    for name in sorted(arrays):
        array = np.asarray(arrays[name])
        raw = _array_bytes(array)
        entries[name] = raw
        table[name] = {
            "sha256": hashlib.sha256(raw).hexdigest(),
            "shape": list(array.shape),
            "dtype": str(array.dtype),
        }
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "meta": dict(meta or {}),
        "arrays": table,
    }
    manifest_bytes = json.dumps(manifest, sort_keys=True).encode()

    def _write(fh) -> None:
        with zipfile.ZipFile(fh, "w", zipfile.ZIP_STORED) as zf:
            zf.writestr(zipfile.ZipInfo(_MANIFEST_NAME, _ZIP_EPOCH), manifest_bytes)
            for name, raw in entries.items():
                zf.writestr(zipfile.ZipInfo(f"{name}.npy", _ZIP_EPOCH), raw)

    return atomic_write_bytes(path, _write)


def read_artifact(
    path: str | Path,
    *,
    kind: str | None = None,
    allow_legacy: bool = False,
) -> Artifact:
    """Read and verify an artifact written by :func:`write_artifact`.

    Raises:
        FileNotFoundError: ``path`` does not exist.
        ArtifactCorrupt: the archive is truncated/unreadable, an array's
            checksum, shape, or dtype disagrees with the manifest, or the
            archive carries arrays the manifest does not list.
        ArtifactIncompatible: intact but unusable — unsupported
            ``format_version`` or a ``kind`` other than the expected one.

    Legacy bare ``.npz`` archives (no manifest) load with a
    ``UserWarning`` when ``allow_legacy=True`` — unverified, since there
    is nothing to verify against — and fail with ``ArtifactIncompatible``
    otherwise.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no artifact at {path}")
    try:
        with zipfile.ZipFile(path) as zf:
            names = zf.namelist()
            if _MANIFEST_NAME not in names:
                if not allow_legacy:
                    raise ArtifactIncompatible(
                        f"{path} has no artifact manifest (legacy bare .npz?); "
                        "re-save it as a versioned artifact"
                    )
                return _read_legacy(path)
            try:
                manifest = json.loads(zf.read(_MANIFEST_NAME))
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise ArtifactCorrupt(
                    f"{path}: manifest is unreadable ({error})"
                ) from error
            _check_manifest(path, manifest, kind)
            arrays = _read_verified(path, zf, manifest)
    except (zipfile.BadZipFile, NotImplementedError) as error:
        # zipfile raises NotImplementedError for entries whose corrupted
        # headers claim an unsupported version or compression method.
        raise ArtifactCorrupt(f"{path}: not a readable archive ({error})") from error
    return Artifact(arrays=arrays, manifest=manifest, path=path)


def _check_manifest(path: Path, manifest: dict, kind: str | None) -> None:
    version = manifest.get("format_version")
    if not isinstance(version, int) or version < 1 or version > FORMAT_VERSION:
        raise ArtifactIncompatible(
            f"{path}: format_version {version!r} is not supported by this "
            f"build (max {FORMAT_VERSION}) — upgrade the package or re-save "
            "the artifact"
        )
    if kind is not None and manifest.get("kind") != kind:
        raise ArtifactIncompatible(
            f"{path}: artifact kind {manifest.get('kind')!r} where {kind!r} "
            "was expected"
        )
    if not isinstance(manifest.get("arrays"), dict):
        raise ArtifactCorrupt(f"{path}: manifest has no array table")


def _read_verified(path: Path, zf: zipfile.ZipFile, manifest: dict) -> dict[str, np.ndarray]:
    table: dict[str, dict] = manifest["arrays"]
    stored = {n[: -len(".npy")] for n in zf.namelist() if n.endswith(".npy")}
    extra = stored - set(table)
    missing = set(table) - stored
    if extra or missing:
        raise ArtifactCorrupt(
            f"{path}: archive/manifest disagree "
            f"(missing={sorted(missing)} unmanifested={sorted(extra)})"
        )
    arrays: dict[str, np.ndarray] = {}
    for name, entry in table.items():
        try:
            raw = zf.read(f"{name}.npy")
        except Exception as error:  # zipfile raises BadZipFile on bad CRC
            raise ArtifactCorrupt(
                f"{path}: array {name!r} is unreadable ({error})"
            ) from error
        digest = hashlib.sha256(raw).hexdigest()
        if digest != entry.get("sha256"):
            raise ArtifactCorrupt(
                f"{path}: checksum mismatch on array {name!r} — the file "
                "was modified or truncated after it was written"
            )
        try:
            array = np.lib.format.read_array(io.BytesIO(raw), allow_pickle=False)
        except ValueError as error:
            raise ArtifactCorrupt(
                f"{path}: array {name!r} fails to parse ({error})"
            ) from error
        if list(array.shape) != entry.get("shape") or str(array.dtype) != entry.get("dtype"):
            raise ArtifactCorrupt(
                f"{path}: array {name!r} is {array.dtype}{array.shape} but "
                f"the manifest says {entry.get('dtype')}{tuple(entry.get('shape', ()))}"
            )
        arrays[name] = array
    return arrays


def _read_legacy(path: Path) -> Artifact:
    warnings.warn(
        f"{path} is a legacy unversioned archive: loading without "
        "integrity checks; re-save it to get a validated artifact",
        UserWarning,
        stacklevel=3,
    )
    try:
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as error:
        raise ArtifactCorrupt(f"{path}: not a readable archive ({error})") from error
    return Artifact(arrays=arrays, manifest=None, path=path)


def save_state(module: Module, path: str | Path) -> Path:
    """Write ``module``'s parameters to exactly ``path`` (versioned npz)."""
    return write_artifact(path, module.state_dict(), kind="module-state")


def load_state(module: Module, path: str | Path, strict: bool = True) -> None:
    """Load parameters written by :func:`save_state` into ``module``.

    The artifact is checksum-verified first; key/shape agreement with the
    module is enforced by :meth:`Module.load_state_dict` (``strict``).
    """
    artifact = read_artifact(path, kind="module-state", allow_legacy=True)
    module.load_state_dict(artifact.arrays, strict=strict)
