"""Save/load module state dicts as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | Path) -> None:
    """Write ``module``'s parameters to ``path`` (npz)."""
    np.savez(Path(path), **module.state_dict())


def load_state(module: Module, path: str | Path) -> None:
    """Load parameters written by :func:`save_state` into ``module``."""
    with np.load(Path(path)) as archive:
        module.load_state_dict({key: archive[key] for key in archive.files})
