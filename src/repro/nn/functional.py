"""Free differentiable functions built on :class:`~repro.nn.tensor.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, concat, stack

__all__ = [
    "concat",
    "stack",
    "softmax",
    "log_softmax",
    "segment_mean",
    "embedding_lookup",
    "dropout_mask",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with an exact backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            total = grad.sum(axis=axis, keepdims=True)
            x._accumulate(grad - soft * total)

    return Tensor._make(out_data, (x,), backward)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean-pool rows of ``x`` into ``num_segments`` groups.

    ``out[s] = mean(x[i] for segment_ids[i] == s)``; empty segments are
    zero.  This is the neighbour-group aggregation of Eq. 4 — one call per
    relation type, with ``segment_ids`` mapping each (neighbour, target)
    message row to its target node.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.shape[0] != x.data.shape[0]:
        raise ValueError("segment_ids must have one entry per row of x")
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    sums = np.zeros((num_segments, *x.data.shape[1:]), dtype=np.float64)
    np.add.at(sums, segment_ids, x.data)
    safe_counts = np.maximum(counts, 1.0)
    out_data = sums / safe_counts.reshape(-1, *([1] * (x.data.ndim - 1)))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            scaled = grad / safe_counts.reshape(-1, *([1] * (grad.ndim - 1)))
            x._accumulate(scaled[segment_ids])

    return Tensor._make(out_data, (x,), backward)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``indices`` of an embedding matrix (scatter-add backward)."""
    indices = np.asarray(indices, dtype=np.int64)
    out_data = weight.data[indices]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, indices, grad)
            weight._accumulate(full)

    return Tensor._make(out_data, (weight,), backward)


def dropout_mask(
    x: Tensor, p: float, rng: np.random.Generator, training: bool
) -> Tensor:
    """Inverted dropout: zero a fraction ``p`` of entries during training."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
