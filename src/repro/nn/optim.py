"""Optimisers: SGD and Adam (with decoupled weight decay), plus utilities."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


def clip_grad_norm(parameters: list[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.  Standard recurrent-network hygiene: the
    seq2seq baselines use it to keep long-sequence gradients bounded.
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for param in parameters:
        if param.grad is not None:
            total += float((param.grad**2).sum())
    norm = total**0.5
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in parameters:
            if param.grad is not None:
                param.grad *= scale
    return norm


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, parameters: list[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        """Clear gradients on all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update; subclasses must override."""
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Internal optimiser state as arrays (for checkpointing).

        Scalars travel as 0-d arrays so the whole dict fits one ``.npz``
        archive.  Subclasses extend this with their slot buffers.
        """
        return {"lr": np.asarray(self.lr, dtype=np.float64)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state saved by :meth:`state_dict` (same parameter list)."""
        self.lr = float(state["lr"])


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(
        self, parameters: list[Parameter], lr: float = 0.01, momentum: float = 0.0
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        """Update every parameter with a gradient."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data += velocity

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        for i, velocity in enumerate(self._velocity):
            state[f"velocity.{i}"] = velocity.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._velocity = [
            np.asarray(state[f"velocity.{i}"]).copy()
            for i in range(len(self.parameters))
        ]


class Adam(Optimizer):
    """Adam with the paper's defaults: lr 1e-3, weight decay 1e-4 (§V-A2)."""

    def __init__(
        self,
        parameters: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 1e-4,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Update every parameter with a gradient."""
        self._t += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self._t
        bias2 = 1.0 - beta2**self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state = super().state_dict()
        state["t"] = np.asarray(self._t, dtype=np.int64)
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m.{i}"] = m.copy()
            state[f"v.{i}"] = v.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._t = int(state["t"])
        self._m = [
            np.asarray(state[f"m.{i}"]).copy() for i in range(len(self.parameters))
        ]
        self._v = [
            np.asarray(state[f"v.{i}"]).copy() for i in range(len(self.parameters))
        ]
