"""Losses: label-smoothed cross-entropy, BCE-with-logits, MSE.

The paper trains all components with cross-entropy under label smoothing 0.1
to avoid the over-confidence problem (§IV-D, citing [44], [45]).
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor


def cross_entropy_with_label_smoothing(
    logits: Tensor, targets: np.ndarray, smoothing: float = 0.1
) -> Tensor:
    """Mean cross-entropy between ``logits`` rows and integer ``targets``.

    With smoothing ``s`` over ``C`` classes, the target distribution places
    ``1 - s`` on the true class and ``s / (C - 1)`` on the rest.
    """
    if not 0.0 <= smoothing < 1.0:
        raise ValueError("smoothing must be in [0, 1)")
    targets = np.asarray(targets, dtype=np.int64)
    n, num_classes = logits.shape
    if targets.shape != (n,):
        raise ValueError("targets must have one entry per logits row")
    log_probs = log_softmax(logits, axis=-1)
    if num_classes == 1:
        raise ValueError("cross entropy needs at least two classes")
    off = smoothing / (num_classes - 1)
    dist = np.full((n, num_classes), off)
    dist[np.arange(n), targets] = 1.0 - smoothing
    return -(log_probs * Tensor(dist)).sum() * (1.0 / n)


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, smoothing: float = 0.0
) -> Tensor:
    """Mean binary cross-entropy on raw logits, numerically stable.

    Uses ``max(x, 0) - x*t + log(1 + exp(-|x|))``.  Label smoothing squashes
    targets into ``[s/2, 1 - s/2]``.
    """
    targets = np.asarray(targets, dtype=np.float64)
    if smoothing:
        targets = targets * (1.0 - smoothing) + 0.5 * smoothing
    x = logits
    t = Tensor(targets)
    relu_x = x.relu()
    # |x| as relu(x) + relu(-x): exact, and well-defined (subgradient 0) at 0,
    # unlike sqrt(x^2) whose gradient is NaN there.
    abs_x = x.relu() + (-x).relu()
    softplus = (1.0 + (-abs_x).exp()).log()
    return (relu_x - x * t + softplus).mean()


def mse_loss(prediction: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t
    return (diff * diff).mean()
