"""Weight initialisers."""

from __future__ import annotations

import math

import numpy as np

from repro.utils import ensure_rng


def xavier_uniform(
    shape: tuple[int, ...], rng: int | np.random.Generator | None = None, gain: float = 1.0
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight of ``shape``.

    Fan-in/fan-out are taken from the last two axes (or the single axis for
    vectors), matching the convention of the usual frameworks.
    """
    rng = ensure_rng(rng)
    if len(shape) == 1:
        fan_in = fan_out = shape[0]
    else:
        fan_in, fan_out = shape[-2], shape[-1]
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def normal_init(
    shape: tuple[int, ...],
    rng: int | np.random.Generator | None = None,
    std: float = 0.02,
) -> np.ndarray:
    """Small-variance normal initialisation (embedding tables)."""
    rng = ensure_rng(rng)
    return rng.normal(0.0, std, size=shape)
