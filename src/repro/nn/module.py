"""Module base class: parameter discovery, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class StateDictMismatch(ValueError):
    """A state dict does not fit the module it was loaded into.

    One actionable error listing every offender (missing keys, unknown
    keys, shape mismatches) — not just the first ``KeyError``.
    """


class Module:
    """Base class for neural components.

    Parameters are discovered by walking instance attributes recursively
    (parameters, sub-modules, and lists/tuples/dicts of either), so models
    compose without any registration boilerplate.
    """

    def __init__(self) -> None:
        self.training = True

    # ----------------------------------------------------------------- params
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, deterministically ordered."""
        for name in sorted(vars(self)):
            value = vars(self)[name]
            yield from _walk(value, f"{prefix}{name}")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------- mode
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules."""
        yield self
        for value in vars(self).values():
            yield from _walk_modules(value)

    def train(self) -> "Module":
        """Switch this module tree into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree into inference mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------ state
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(
        self, state: dict[str, np.ndarray], strict: bool = True
    ) -> tuple[list[str], list[str]]:
        """Load parameters saved by :meth:`state_dict`.

        With ``strict=True`` (the default) any disagreement raises one
        :class:`StateDictMismatch` listing *every* offender — missing
        keys, unknown keys, and shape mismatches together — instead of
        failing on the first.  With ``strict=False``, matching keys load
        and the rest are reported in the ``(missing, unexpected)``
        return value (shape-mismatched keys count as missing).
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        mismatched = [
            name
            for name in sorted(set(own) & set(state))
            if own[name].data.shape != np.asarray(state[name]).shape
        ]
        if strict and (missing or unexpected or mismatched):
            problems = []
            if missing:
                problems.append(f"missing keys: {missing}")
            if unexpected:
                problems.append(f"unexpected keys: {unexpected}")
            for name in mismatched:
                problems.append(
                    f"shape mismatch for {name!r}: module has "
                    f"{own[name].data.shape}, state has "
                    f"{np.asarray(state[name]).shape}"
                )
            raise StateDictMismatch(
                "state dict does not fit this module:\n  " + "\n  ".join(problems)
            )
        for name, param in own.items():
            if name in state and name not in mismatched:
                param.data = np.asarray(state[name]).astype(np.float64).copy()
        return missing + mismatched, unexpected

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError


def _walk(value: object, name: str) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield name, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=f"{name}.")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _walk(item, f"{name}.{i}")
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            yield from _walk(value[key], f"{name}.{key}")


def _walk_modules(value: object) -> Iterator[Module]:
    if isinstance(value, Module):
        yield from value.modules()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk_modules(item)
