"""Module base class: parameter discovery, train/eval mode, state dicts."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable."""

    def __init__(self, data: np.ndarray) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural components.

    Parameters are discovered by walking instance attributes recursively
    (parameters, sub-modules, and lists/tuples/dicts of either), so models
    compose without any registration boilerplate.
    """

    def __init__(self) -> None:
        self.training = True

    # ----------------------------------------------------------------- params
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, deterministically ordered."""
        for name in sorted(vars(self)):
            value = vars(self)[name]
            yield from _walk(value, f"{prefix}{name}")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------- mode
    def modules(self) -> Iterator["Module"]:
        """Yield this module and all sub-modules."""
        yield self
        for value in vars(self).values():
            yield from _walk_modules(value)

    def train(self) -> "Module":
        """Switch this module tree into training mode."""
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        """Switch this module tree into inference mode."""
        for module in self.modules():
            module.training = False
        return self

    # ------------------------------------------------------------------ state
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameters keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}")
            param.data = state[name].astype(np.float64).copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError


def _walk(value: object, name: str) -> Iterator[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield name, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=f"{name}.")
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _walk(item, f"{name}.{i}")
    elif isinstance(value, dict):
        for key in sorted(value, key=str):
            yield from _walk(value[key], f"{name}.{key}")


def _walk_modules(value: object) -> Iterator[Module]:
    if isinstance(value, Module):
        yield from value.modules()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _walk_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _walk_modules(item)
