"""Command-line interface: generate, inspect, train, evaluate, match, serve.

Usage::

    python -m repro generate --preset hangzhou --trajectories 300 -o city.json.gz
    python -m repro stats    --dataset city.json.gz
    python -m repro train    --dataset city.json.gz -o model.npz --epochs 6
    python -m repro evaluate --dataset city.json.gz --model model.npz
    python -m repro evaluate --dataset city.json.gz --baseline THMM
    python -m repro evaluate --dataset city.json.gz --model model.npz \
                             --router ubodt --ubodt-delta 3000 --workers 4
    python -m repro match    --dataset city.json.gz --model model.npz \
                             --sample-id 12 --svg match.svg --ascii
    python -m repro serve    --dataset city.json.gz --model model.npz \
                             --port 8080 --workers 4
    python -m repro golden              # check the golden match corpus
    python -m repro golden --regen      # rewrite it after a reviewed change
    python -m repro profile             # profile the matching pipeline
    python -m repro profile --pipeline scalar --json profile.json

Every command takes ``--seed`` for reproducibility.  All heavy outputs are
files; stdout carries human-readable summaries only.  ``serve`` runs until
interrupted, then drains in-flight work before exiting (``docs/serving.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="LHMM cellular map matching (ICDE 2023 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a synthetic city dataset")
    generate.add_argument("--preset", choices=["hangzhou", "xiamen"], default="hangzhou")
    generate.add_argument("--trajectories", type=int, default=300)
    generate.add_argument("--scale", type=float, default=1.0,
                          help="city size multiplier (0.5 = quarter-size)")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("-o", "--output", required=True, help="output .json.gz path")

    stats = commands.add_parser("stats", help="print Table-I statistics of a dataset")
    stats.add_argument("--dataset", required=True)

    train = commands.add_parser("train", help="train LHMM on a dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("-o", "--output", required=True, help="output model .npz path")
    train.add_argument("--epochs", type=int, default=6)
    train.add_argument("--dim", type=int, default=48, help="embedding dimension")
    train.add_argument("--candidates", type=int, default=12, help="candidate count k")
    train.add_argument("--variant", default="LHMM",
                       help="ablation variant (LHMM, LHMM-E, LHMM-H, LHMM-O, LHMM-T, LHMM-S)")
    train.add_argument("--checkpoint-dir", default=None,
                       help="durably checkpoint training state here after every "
                            "epoch (survives SIGKILL; see --resume)")
    train.add_argument("--resume", action="store_true",
                       help="continue from the newest intact checkpoint in "
                            "--checkpoint-dir instead of starting over; the "
                            "resumed run is bit-identical to an uninterrupted one")
    train.add_argument("--keep-checkpoints", type=int, default=3,
                       help="newest checkpoints to retain in --checkpoint-dir")
    train.add_argument("--ema-decay", type=float, default=None,
                       help="decay of the EMA shadow weight set saved into the "
                            "artifact alongside the raw weights (default: the "
                            "config's 0.999; serve/evaluate select it with "
                            "--weights ema)")
    train.add_argument("--seed", type=int, default=0)

    evaluate = commands.add_parser("evaluate", help="evaluate a model or baseline")
    evaluate.add_argument("--dataset", required=True)
    group = evaluate.add_mutually_exclusive_group(required=True)
    group.add_argument("--model", help="trained LHMM .npz")
    group.add_argument("--baseline", help="baseline name (STM, IVMM, ..., DMM)")
    evaluate.add_argument("--weights", choices=["raw", "ema"], default="raw",
                          help="artifact weight set to evaluate (ema = the "
                               "trainer's shadow set, when present)")
    evaluate.add_argument("--limit", type=int, default=None,
                          help="max test trajectories to evaluate")
    _add_router_arguments(evaluate)
    evaluate.add_argument("--workers", type=int, default=1,
                          help="matching processes (1 = serial)")
    evaluate.add_argument("--json", default=None,
                          help="write aggregates + per-sample metrics as JSON")
    evaluate.add_argument("--csv", default=None,
                          help="write per-sample metrics as CSV")
    evaluate.add_argument("--seed", type=int, default=0)

    match = commands.add_parser("match", help="match one trajectory and render it")
    match.add_argument("--dataset", required=True)
    match.add_argument("--model", required=True)
    match.add_argument("--weights", choices=["raw", "ema"], default="raw",
                       help="artifact weight set to match with")
    match.add_argument("--sample-id", type=int, default=None,
                       help="sample to match (default: first test sample)")
    match.add_argument("--svg", default=None, help="write an SVG map here")
    match.add_argument("--ascii", action="store_true", help="print an ASCII map")
    _add_router_arguments(match)

    golden = commands.add_parser(
        "golden",
        help="check (or --regen) the golden regression corpus of matches",
    )
    golden.add_argument(
        "--regen", action="store_true",
        help="rewrite the corpus from the frozen configuration instead of "
             "checking against it (review the JSON diff before committing)",
    )
    golden.add_argument(
        "--path", default=None,
        help="corpus JSON (default: tests/golden/golden_matches.json)",
    )

    profile = commands.add_parser(
        "profile",
        help="profile end-to-end matching: cProfile hotspots plus "
             "per-stage wall-clock over a smoke city",
    )
    profile.add_argument("--dataset", default=None,
                         help="dataset .json.gz to profile on (default: "
                              "generate a small smoke city in-process)")
    profile.add_argument("--trajectories", type=int, default=30,
                         help="trajectories to match in the profiled loop")
    profile.add_argument("--scale", type=float, default=0.4,
                         help="smoke-city size multiplier when generating")
    profile.add_argument("--pipeline", choices=["batched", "scalar"],
                         default="batched",
                         help="candidate/feature pipeline to profile")
    profile.add_argument("--epochs", type=int, default=1,
                         help="training epochs for the profiled model")
    profile.add_argument("--top", type=int, default=15,
                         help="cProfile rows to print (sorted by tottime)")
    profile.add_argument("--json", default=None,
                         help="write the per-stage summary as JSON here")
    profile.add_argument("--seed", type=int, default=0)

    serve = commands.add_parser(
        "serve", help="run a long-lived map-matching HTTP service"
    )
    serve.add_argument("--dataset", default=None,
                       help="map + towers the model serves (required unless "
                            "every shard comes from --region)")
    serve.add_argument("--model", default=None,
                       help="trained LHMM .npz (required unless every shard "
                            "comes from --region)")
    serve.add_argument("--weights", choices=["raw", "ema"], default="raw",
                       help="artifact weight set to serve (applies to every "
                            "shard with --cluster); challengers started via "
                            "POST /v1/admin/ab can pick their own")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = pick a free port)")
    _add_router_arguments(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="batch-matching processes (1 = in-process serial); "
                            "with --cluster, the matcher worker fleet size "
                            "the gateway starts with")
    serve.add_argument("--min-workers", type=int, default=None,
                       help="(cluster) floor the queue-depth autoscaler drains "
                            "down to when idle (default: --workers)")
    serve.add_argument("--max-workers", type=int, default=None,
                       help="(cluster) ceiling the autoscaler forks up to "
                            "under sustained queueing (default: --workers, "
                            "i.e. autoscaling off)")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="(cluster) append control-plane decisions "
                            "(respawns, scale events, rollouts) as JSONL here; "
                            "also honoured via $REPRO_CLUSTER_JOURNAL")
    serve.add_argument("--cluster", action="store_true",
                       help="run the sharded cluster tier: an asyncio gateway "
                            "in front of --workers forked matcher processes "
                            "attached to shared-memory artifacts")
    serve.add_argument("--region", action="append", default=None,
                       metavar="NAME=DATASET:MODEL",
                       help="(cluster) serve an extra region from its own "
                            "dataset + model artifact; repeatable.  --dataset/"
                            "--model, when given, serve the 'default' region")
    serve.add_argument("--max-inflight", type=int, default=64,
                       help="(cluster) concurrent worker operations running at "
                            "once; arrivals beyond it queue, and queue "
                            "overflow is shed with HTTP 503 + Retry-After")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="(cluster) response-cache entries for /v1/match "
                            "(0 disables caching)")
    serve.add_argument("--batch-window-ms", type=float, default=25.0,
                       help="micro-batch collection window")
    serve.add_argument("--batch-max", type=int, default=16,
                       help="max trajectories per micro-batch")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bounded request queue; beyond it the server sheds "
                            "load with HTTP 503 + Retry-After")
    serve.add_argument("--max-sessions", type=int, default=256,
                       help="concurrent streaming sessions")
    serve.add_argument("--session-ttl", type=float, default=300.0,
                       help="idle seconds before a session is evicted")
    serve.add_argument("--lag", type=int, default=4,
                       help="default fixed-lag commit distance for sessions")
    serve.add_argument("--respawn-limit", type=int, default=3,
                       help="times the worker pool may be rebuilt after a "
                            "crash before remaining work is failed")
    serve.add_argument("--chunk-timeout", type=float, default=None,
                       help="seconds a batch chunk may run without the pool "
                            "making progress before its workers are killed "
                            "and respawned (default: no timeout)")
    serve.add_argument("--log-requests", action="store_true",
                       help="log every HTTP request to stderr")
    serve.add_argument("--transport", choices=["socketpair", "tcp"],
                       default="socketpair",
                       help="(cluster) gateway<->worker transport: inherited "
                            "socketpairs (default) or length-prefixed frames "
                            "over TCP with generation-fenced handshakes")
    serve.add_argument("--node", default=None, metavar="NAME",
                       help="(cluster) federation node name; giving it turns "
                            "this gateway into a federation member that "
                            "routes, proxies, and replicates across --peer "
                            "gateways")
    serve.add_argument("--fed-host", default="127.0.0.1", metavar="HOST",
                       help="(cluster) interface the federation frame "
                            "listener binds")
    serve.add_argument("--fed-port", type=int, default=0, metavar="N",
                       help="(cluster) federation listener port "
                            "(0 = pick a free port)")
    serve.add_argument("--peer", action="append", default=None,
                       metavar="NAME=HOST:FEDPORT",
                       help="(cluster) a peer gateway's federation endpoint; "
                            "repeatable")
    serve.add_argument("--advertise", default=None, metavar="HOST:PORT",
                       help="(cluster) HTTP address peers should redirect/"
                            "proxy clients to for this node's regions "
                            "(default: the bound --host/--port)")
    serve.add_argument("--route-mode", choices=["proxy", "redirect"],
                       default="proxy",
                       help="(cluster) serve misrouted /v1/match requests by "
                            "proxying to the owner over the federation link, "
                            "or answer HTTP 307 redirects to it")
    serve.add_argument("--fed-heartbeat", type=float, default=1.0,
                       metavar="S",
                       help="(cluster) seconds between federation peer "
                            "heartbeats")
    serve.add_argument("--fed-heartbeat-timeout", type=float, default=3.0,
                       metavar="S",
                       help="(cluster) silent seconds before a peer is "
                            "declared down and its regions answer 503 + "
                            "Retry-After")
    serve.add_argument("--no-replicate", action="store_true",
                       help="(cluster) disable session-journal replication "
                            "to peer gateways (federation keeps routing but "
                            "loses failover)")

    return parser


def _add_router_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--router", choices=["dijkstra", "ubodt"], default="dijkstra",
        help="routing backend: online Dijkstra or a precomputed UBODT table")
    subparser.add_argument(
        "--ubodt-delta", type=float, default=3000.0,
        help="UBODT distance bound Δ in metres (with --router ubodt)")
    subparser.add_argument(
        "--ubodt-table", default=None,
        help="UBODT .npz cache: loaded when present, else built and saved here")


def _resolve_router(args: argparse.Namespace, dataset):
    """The routing backend the command asked for (shared engine by default)."""
    if args.router != "ubodt":
        return dataset.engine
    from repro.network import Ubodt, UbodtRouter

    table = None
    if args.ubodt_table and Path(args.ubodt_table).exists():
        table = Ubodt.load(args.ubodt_table)
        if table.delta_m != args.ubodt_delta:
            print(
                f"note: {args.ubodt_table} has delta={table.delta_m:.0f}m, "
                f"ignoring --ubodt-delta {args.ubodt_delta:.0f}m"
            )
    if table is None:
        table = Ubodt.build(dataset.network, args.ubodt_delta)
        if args.ubodt_table:
            table.save(args.ubodt_table)
            print(f"wrote {args.ubodt_table} ({len(table)} rows)")
    return UbodtRouter(dataset.network, table, fallback=dataset.engine)


# ---------------------------------------------------------------- commands
def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import make_city_dataset, preset_config, save_dataset

    config = preset_config(args.preset, num_trajectories=args.trajectories,
                           scale=args.scale)
    dataset = make_city_dataset(config, rng=args.seed)
    save_dataset(dataset, args.output)
    print(
        f"wrote {args.output}: {len(dataset)} samples, "
        f"{dataset.network.num_segments} segments, {len(dataset.towers)} towers"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.datasets import compute_statistics, load_dataset

    dataset = load_dataset(args.dataset)
    stats = compute_statistics(dataset)
    width = max(len(label) for label, _ in stats.rows())
    print(f"dataset {dataset.name!r} ({len(dataset)} samples)")
    for label, value in stats.rows():
        print(f"  {label.ljust(width)}  {value}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core import LHMM, LHMMConfig
    from repro.datasets import load_dataset

    if args.resume and not args.checkpoint_dir:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset)
    overrides = {} if args.ema_decay is None else {"ema_decay": args.ema_decay}
    config = LHMMConfig(
        embedding_dim=args.dim,
        mlp_hidden=args.dim,
        candidate_k=args.candidates,
        epochs=args.epochs,
        **overrides,
    ).ablated(args.variant)
    matcher = LHMM(config, rng=args.seed).fit(
        dataset,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        keep_checkpoints=args.keep_checkpoints,
    )
    matcher.save(args.output)
    report = matcher.report
    print(
        f"trained {args.variant} on {len(dataset.train)} trajectories; "
        f"final losses: obs_pre={report.observation_pretrain[-1]:.3f} "
        f"obs_fin={report.observation_finetune[-1]:.3f} "
        f"trans_pre={(report.transition_pretrain or [float('nan')])[-1]:.3f} "
        f"trans_fin={report.transition_finetune[-1]:.3f}"
    )
    print(f"wrote {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.baselines import make_baseline
    from repro.core import LHMM
    from repro.datasets import load_dataset
    from repro.eval import evaluate_matcher

    dataset = load_dataset(args.dataset)
    if args.model:
        matcher = LHMM.load(args.model, dataset, weights=args.weights)
        suffix = "" if args.weights == "raw" else f":{args.weights}"
        name = f"LHMM[{Path(args.model).name}{suffix}]"
    else:
        matcher = make_baseline(args.baseline, dataset, rng=args.seed)
        name = args.baseline
    router = _resolve_router(args, dataset)
    if isinstance(matcher, LHMM):
        matcher.use_router(router)
    elif hasattr(matcher, "engine"):
        matcher.engine = router
    samples = dataset.test if args.limit is None else dataset.test[: args.limit]
    result = evaluate_matcher(
        matcher, dataset, samples, method_name=name, workers=args.workers
    )
    row = result.row()
    print(f"{name} on {len(samples)} test trajectories of {dataset.name!r}:")
    print(
        "  precision={precision:.3f} recall={recall:.3f} RMF={rmf:.3f} "
        "CMF50={cmf50:.3f} HR={hr:.3f} avg_time={avg_time:.3f}s".format(**row)
    )
    if args.router == "ubodt" and args.workers <= 1:
        print(
            f"  ubodt: {router.table_hits} table hits, "
            f"{router.fallback_hits} fallback hits"
        )
    if args.json:
        result.save_json(args.json)
        print(f"wrote {args.json}")
    if args.csv:
        result.save_csv(args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from repro.core import LHMM
    from repro.datasets import load_dataset
    from repro.eval.metrics import corridor_mismatch_fraction, precision_recall
    from repro.viz import render_match_ascii, render_match_svg

    dataset = load_dataset(args.dataset)
    matcher = LHMM.load(args.model, dataset, weights=args.weights)
    matcher.use_router(_resolve_router(args, dataset))
    if args.sample_id is None:
        if not dataset.test:
            print(
                f"error: dataset {args.dataset!r} has no test samples; "
                "pass --sample-id to match a specific sample",
                file=sys.stderr,
            )
            return 2
        sample = dataset.test[0]
    else:
        matching = [s for s in dataset.samples if s.sample_id == args.sample_id]
        if not matching:
            known = sorted(s.sample_id for s in dataset.samples)
            hint = f"valid ids: {known[0]}..{known[-1]}" if known else "dataset is empty"
            print(
                f"error: no sample with id {args.sample_id} ({hint})",
                file=sys.stderr,
            )
            return 2
        sample = matching[0]
    result = matcher.match(sample.cellular)
    precision, recall = precision_recall(dataset.network, sample.truth_path, result.path)
    cmf = corridor_mismatch_fraction(dataset.network, sample.truth_path, result.path)
    print(
        f"sample {sample.sample_id}: {len(sample.cellular)} points -> "
        f"{len(result.path)} segments; precision={precision:.3f} "
        f"recall={recall:.3f} CMF50={cmf:.3f}"
    )
    if args.ascii:
        print(
            render_match_ascii(
                dataset.network, sample.truth_path, {"L": result.path}, sample.cellular
            )
        )
    if args.svg:
        Path(args.svg).write_text(
            render_match_svg(
                dataset.network,
                sample.truth_path,
                {"LHMM": result.path},
                trajectory=sample.cellular,
                towers=dataset.towers,
            )
        )
        print(f"wrote {args.svg}")
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    from repro.testing import golden

    path = Path(args.path) if args.path else golden.default_corpus_path()
    dataset = golden.build_golden_dataset()
    matcher = golden.build_golden_matcher(dataset)
    records = golden.compute_golden_records(matcher, dataset)
    if args.regen:
        golden.write_corpus(path, records)
        print(f"wrote {path} ({len(records)} pinned trajectories)")
        return 0
    if not path.exists():
        print(f"no corpus at {path}; run `python -m repro golden --regen` first")
        return 1
    expected = golden.load_corpus(path)
    problems = golden.diff_records(records, expected["records"])
    if problems:
        print(f"golden corpus mismatch ({len(problems)} problems):")
        for problem in problems:
            print(f"  {problem}")
        print("if the change is intentional, regenerate with --regen and "
              "review the diff")
        return 1
    print(f"golden corpus ok ({len(records)} trajectories match {path})")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile end-to-end matching: per-stage wall-clock + cProfile.

    The per-stage table wraps the pipeline's own entry points, so the
    times are *cumulative per stage* and nest: ``trellis.run`` contains
    the transition scoring, which contains routing.  The cProfile listing
    underneath is the flat-hotspot view of the same loop.  All matching
    caches are cleared first so the run reflects cold-cache behaviour —
    the same convention as the perf smoke benchmarks.
    """
    import cProfile
    import functools
    import io
    import json
    import pstats
    import time

    from repro.core import LHMM, LHMMConfig
    from repro.core.matcher import _LHMMScorer
    from repro.core.trellis import Trellis, VectorizedTrellis
    from repro.datasets import load_dataset, make_city_dataset, preset_config

    if args.dataset:
        dataset = load_dataset(args.dataset)
    else:
        config = preset_config(
            "xiamen", num_trajectories=args.trajectories, scale=args.scale
        )
        dataset = make_city_dataset(config, rng=args.seed)
        print(
            f"generated smoke city: {dataset.network.num_segments} segments, "
            f"{len(dataset)} trajectories"
        )
    matcher = LHMM(
        LHMMConfig(
            embedding_dim=12,
            het_layers=1,
            mlp_hidden=12,
            candidate_k=10,
            candidate_pool=50,
            epochs=args.epochs,
            batch_size=4,
            negatives_per_positive=3,
        ),
        rng=args.seed,
    ).fit(dataset)
    matcher.config.pipeline_impl = args.pipeline
    matcher.config.trellis_impl = (
        "vectorized" if args.pipeline == "batched" else "reference"
    )
    trajectories = [s.cellular for s in dataset.samples][: args.trajectories]

    stage_s: dict[str, float] = {}
    wrapped: list[tuple[type, str, object]] = []

    def instrument(cls: type, attr: str, label: str) -> None:
        original = cls.__dict__.get(attr)
        if original is None:
            return

        @functools.wraps(original)
        def timed(*call_args, **call_kwargs):
            start = time.perf_counter()
            try:
                return original(*call_args, **call_kwargs)
            finally:
                stage_s[label] = (
                    stage_s.get(label, 0.0) + time.perf_counter() - start
                )

        setattr(cls, attr, timed)
        wrapped.append((cls, attr, original))

    instrument(LHMM, "prepare_candidates", "prepare_candidates")
    instrument(LHMM, "_relevance_scope", "relevance_scope")
    instrument(LHMM, "_segment_relevance", "segment_relevance")
    instrument(_LHMMScorer, "transition_batch", "transitions")
    # Instrument only the backend this pipeline actually runs: the
    # vectorized trellis chains into the base class, so wrapping both
    # would double-count the forward pass.
    trellis_cls = VectorizedTrellis if args.pipeline == "batched" else Trellis
    instrument(trellis_cls, "run", "trellis.run")
    instrument(trellis_cls, "_apply_shortcuts", "shortcuts")

    matcher.engine.clear_cache()
    network = matcher.network
    network._near_memo.clear()
    network._route_turns.clear()
    network._index._box_cache.clear()
    matcher._pool_cache_obj = None

    profiler = cProfile.Profile()
    try:
        start = time.perf_counter()
        profiler.enable()
        for trajectory in trajectories:
            matcher.match(trajectory)
        profiler.disable()
        total_s = time.perf_counter() - start
    finally:
        for cls, attr, original in wrapped:
            setattr(cls, attr, original)

    print(
        f"\nmatched {len(trajectories)} trajectories with the "
        f"{args.pipeline!r} pipeline in {total_s:.3f} s (cold caches)"
    )
    print("\nper-stage wall-clock (cumulative; stages nest, see --help):")
    for label, seconds in sorted(stage_s.items(), key=lambda kv: -kv[1]):
        print(f"  {label.ljust(20)} {seconds:7.3f} s  ({seconds / total_s:5.1%})")

    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("tottime").print_stats(
        args.top
    )
    print("\ncProfile hotspots (tottime):")
    print(stream.getvalue())

    if args.json:
        payload = {
            "pipeline": args.pipeline,
            "trajectories": len(trajectories),
            "total_s": total_s,
            "stages_s": stage_s,
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


def _install_reload_signal(server) -> None:
    """SIGHUP → hot-reload the model, off the signal handler's thread.

    The reload itself (artifact load + canary) runs on a worker thread so
    the handler returns immediately; a failed reload logs and leaves the
    old model serving — exactly like the HTTP endpoint.
    """
    import signal
    import threading

    def _reload_async(*_signal_args) -> None:
        def _run() -> None:
            try:
                info = server.reload_model()
                print(f"SIGHUP: reloaded model (generation {info['generation']})")
            except Exception as error:  # noqa: BLE001 - keep serving
                print(f"SIGHUP: model reload failed, keeping old model: {error}",
                      file=sys.stderr)

        threading.Thread(target=_run, name="repro-serve-reload", daemon=True).start()

    try:
        signal.signal(signal.SIGHUP, _reload_async)
    except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
        pass


def _install_rollout_signal(server) -> None:
    """SIGHUP → zero-downtime cluster rollout, off the signal handler's thread.

    The rollout (stage + canary + one-worker-at-a-time swap) runs on a
    worker thread; a rejected canary logs and leaves the old generation
    serving — exactly like ``POST /v1/admin/rollout``.
    """
    import signal
    import threading

    def _rollout_async(*_signal_args) -> None:
        def _run() -> None:
            try:
                info = server.rollout()
                print(
                    f"SIGHUP: rolled out generation {info['generation']} "
                    f"({info['workers_swapped']} workers swapped)"
                )
            except Exception as error:  # noqa: BLE001 - keep serving
                print(f"SIGHUP: rollout failed, old generation keeps serving: "
                      f"{error}", file=sys.stderr)

        threading.Thread(target=_run, name="repro-cluster-rollout", daemon=True).start()

    try:
        signal.signal(signal.SIGHUP, _rollout_async)
    except (AttributeError, ValueError):  # pragma: no cover - non-POSIX
        pass


def _parse_region_specs(args: argparse.Namespace) -> list:
    """Shard specs from ``--dataset/--model`` + repeated ``--region``."""
    from repro.serve import DEFAULT_REGION, ShardSpec

    specs = []
    if args.dataset or args.model:
        if not (args.dataset and args.model):
            raise ValueError("--dataset and --model must be given together")
        specs.append(ShardSpec(
            region=DEFAULT_REGION,
            dataset=args.dataset,
            model=args.model,
            router=args.router,
            ubodt_delta_m=args.ubodt_delta,
            ubodt_table=args.ubodt_table,
            weights=args.weights,
        ))
    for item in args.region or []:
        name, eq, rest = item.partition("=")
        dataset_path, colon, model_path = rest.partition(":")
        if not eq or not colon or not name or not dataset_path or not model_path:
            raise ValueError(
                f"--region {item!r}: expected NAME=DATASET:MODEL"
            )
        specs.append(ShardSpec(
            region=name,
            dataset=dataset_path,
            model=model_path,
            router=args.router,
            ubodt_delta_m=args.ubodt_delta,
            ubodt_table=None,
            weights=args.weights,
        ))
    if not specs:
        raise ValueError(
            "nothing to serve: give --dataset/--model, or at least one "
            "--region NAME=DATASET:MODEL"
        )
    return specs


def _parse_federation(args: argparse.Namespace):
    """Build a FederationConfig from --node/--peer/... (None without --node)."""
    if args.node is None:
        if args.peer:
            raise ValueError("--peer requires --node (a name for this gateway)")
        return None
    from repro.serve import FederationConfig, PeerSpec

    peers = tuple(PeerSpec.parse(item) for item in args.peer or [])
    advertise_host = advertise_port = None
    if args.advertise is not None:
        host, colon, port = args.advertise.rpartition(":")
        if not colon or not host or not port.isdigit():
            raise ValueError(f"--advertise {args.advertise!r}: expected HOST:PORT")
        advertise_host, advertise_port = host, int(port)
    return FederationConfig(
        node=args.node,
        listen_host=args.fed_host,
        listen_port=args.fed_port,
        peers=peers,
        advertise_host=advertise_host,
        advertise_port=advertise_port,
        heartbeat_interval_s=args.fed_heartbeat,
        heartbeat_timeout_s=args.fed_heartbeat_timeout,
        replicate=not args.no_replicate,
        route_mode=args.route_mode,
    )


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    from repro.serve import ClusterConfig, ClusterServer, ShardRegistry

    try:
        specs = _parse_region_specs(args)
        federation = _parse_federation(args)
    except ValueError as error:
        print(f"error [usage]: {error}", file=sys.stderr)
        return 2
    registry = ShardRegistry.publish(specs)
    total_kb = registry.total_bytes() / 1024
    print(
        f"published {len(specs)} shard(s), {total_kb:.0f} KiB of shared "
        f"artifacts: {', '.join(registry.regions)}"
    )
    config = ClusterConfig(
        host=args.host,
        port=args.port,
        num_workers=max(1, args.workers),
        default_lag=args.lag,
        max_sessions=args.max_sessions,
        session_ttl_s=args.session_ttl,
        max_inflight=args.max_inflight,
        cache_size=args.cache_size,
        respawn_limit=args.respawn_limit,
        min_workers=args.min_workers,
        max_workers=args.max_workers,
        journal_path=args.journal,
        worker_transport=args.transport,
        federation=federation,
    )
    server = ClusterServer(registry, config).start()
    _install_rollout_signal(server)
    workers_note = f"{config.num_workers} workers"
    if server.min_workers != server.max_workers:
        workers_note += f" (autoscaling {server.min_workers}..{server.max_workers})"
    print(f"cluster gateway at {server.address} ({workers_note}, "
          f"router={args.router}, transport={args.transport})")
    if federation is not None and server._fed is not None:
        fed = server._fed
        peer_names = ", ".join(sorted(p.name for p in federation.peers)) or "none"
        print(f"federation node {federation.node!r} listening on "
              f"{federation.listen_host}:{fed.fed_port} (peers: {peer_names}, "
              f"route-mode={federation.route_mode})")
    print("endpoints: POST /v1/sessions, POST /v1/sessions/<id>/points, "
          "DELETE /v1/sessions/<id>, POST /v1/match, "
          "POST /v1/admin/rollout, POST /v1/admin/ab[/promote|/abort], "
          "GET /healthz, GET /metrics "
          "(add \"region\" to request bodies on multi-shard deployments)")
    print("zero-downtime rollout: POST /v1/admin/rollout or send SIGHUP "
          "after replacing a model artifact; live A/B: POST /v1/admin/ab")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining cluster ...")
    finally:
        summary = server.shutdown()
        print(f"drained; committed {len(summary['sessions'])} open sessions")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core import LHMM
    from repro.datasets import load_dataset
    from repro.serve import MatchingServer, ServeConfig

    if args.cluster:
        return _cmd_serve_cluster(args)
    if not (args.dataset and args.model):
        # Mirrors the argparse required-argument behaviour these flags had
        # before --cluster/--region made them conditionally optional.
        print("error [usage]: serve needs --dataset and --model "
              "(or --cluster with --region shards)", file=sys.stderr)
        raise SystemExit(2)
    dataset = load_dataset(args.dataset)
    matcher = LHMM.load(args.model, dataset, weights=args.weights)
    matcher.use_router(_resolve_router(args, dataset))

    pool = None
    if args.workers > 1:
        from repro.core.parallel import ParallelMatcher

        pool = ParallelMatcher(
            args.model,
            args.dataset,
            workers=args.workers,
            router=args.router,
            ubodt_delta_m=args.ubodt_delta,
            respawn_limit=args.respawn_limit,
            chunk_timeout_s=args.chunk_timeout,
        )
        ready = pool.warmup()
        print(f"warmed {ready} batch workers")

    config = ServeConfig(
        host=args.host,
        port=args.port,
        default_lag=args.lag,
        max_sessions=args.max_sessions,
        session_ttl_s=args.session_ttl,
        batch_window_ms=args.batch_window_ms,
        batch_max=args.batch_max,
        queue_limit=args.queue_limit,
        log_requests=args.log_requests,
    )
    server = MatchingServer(
        matcher, config, pool=pool, model_path=args.model, dataset=dataset
    )
    _install_reload_signal(server)
    print(
        f"serving {Path(args.model).name} over {dataset.name!r} at "
        f"{server.address} (router={args.router}, workers={args.workers})"
    )
    print("endpoints: POST /v1/sessions, POST /v1/sessions/<id>/points, "
          "DELETE /v1/sessions/<id>, POST /v1/match, "
          "POST /v1/admin/reload-model, POST /v1/admin/ab[/promote|/abort], "
          "GET /healthz, GET /metrics")
    print("hot reload: POST /v1/admin/reload-model or send SIGHUP after "
          "replacing the model file; live A/B: POST /v1/admin/ab")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining ...")
    finally:
        summary = server.shutdown()
        if pool is not None:
            pool.close()
        print(
            f"drained; committed {len(summary['sessions'])} open sessions, "
            f"served {server.metrics.snapshot()['counters']} events"
        )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "match": _cmd_match,
    "golden": _cmd_golden,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Operator-facing failures — a missing, corrupt, or incompatible model
    artifact, a diverged training run — exit with code 2 and a one-line
    structured error (``error [<code>]: ...`` plus a remediation hint),
    never a traceback.  Genuine bugs still traceback.
    """
    from repro.errors import ReproError

    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as error:
        filename = getattr(error, "filename", None) or error
        print(f"error [not_found]: {filename}", file=sys.stderr)
        print("hint: check the path; train a model with `python -m repro train` "
              "or generate a dataset with `python -m repro generate`",
              file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error [{error.code}]: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
