"""Cellular-trajectory pre-filters (SnapNet [12], as used in §V-A1).

Before matching, the paper removes noise and smooths cellular trajectories
with three filters: a speed filter (drop points implying impossible speeds),
an alpha-trimmed mean filter (robust positional smoothing), and a direction
filter (drop ping-pong handoff oscillations).  :func:`apply_standard_filters`
composes them in that order.
"""

from __future__ import annotations

from repro.cellular.trajectory import Trajectory, TrajectoryPoint
from repro.geometry import Point, bearing_deg, heading_difference_deg

MAX_REASONABLE_SPEED_MPS = 42.0  # ~150 km/h: nothing in the city drives faster


def speed_filter(
    trajectory: Trajectory, max_speed_mps: float = MAX_REASONABLE_SPEED_MPS
) -> Trajectory:
    """Drop points that imply a speed above ``max_speed_mps`` from the last kept point.

    Implied speed uses straight-line distance, which lower-bounds travelled
    distance, so only physically impossible samples are removed.  The first
    point is always kept.
    """
    if len(trajectory) <= 1:
        return trajectory
    kept = [trajectory.points[0]]
    for point in trajectory.points[1:]:
        dt = point.timestamp - kept[-1].timestamp
        if dt <= 0:
            continue
        speed = point.position.distance_to(kept[-1].position) / dt
        if speed <= max_speed_mps:
            kept.append(point)
    return Trajectory(points=kept, trajectory_id=trajectory.trajectory_id, _validated=True)


def alpha_trimmed_mean_filter(
    trajectory: Trajectory, window: int = 5, alpha: int = 1
) -> Trajectory:
    """Smooth positions with an alpha-trimmed mean over a sliding window.

    For each point, the ``window`` nearest-in-sequence samples are gathered,
    the ``alpha`` most extreme values *per coordinate* are trimmed from each
    end, and the mean of the rest replaces the position.  Timestamps and
    tower ids are preserved — smoothing affects geometry only.
    """
    if window < 3 or len(trajectory) < window:
        return trajectory
    if 2 * alpha >= window:
        raise ValueError("alpha too large for window")
    half = window // 2
    points = trajectory.points
    smoothed: list[TrajectoryPoint] = []
    for i, point in enumerate(points):
        lo = max(0, i - half)
        hi = min(len(points), i + half + 1)
        xs = sorted(p.position.x for p in points[lo:hi])
        ys = sorted(p.position.y for p in points[lo:hi])
        trim = alpha if len(xs) > 2 * alpha else 0
        xs = xs[trim : len(xs) - trim] if trim else xs
        ys = ys[trim : len(ys) - trim] if trim else ys
        smoothed.append(
            point.with_position(Point(sum(xs) / len(xs), sum(ys) / len(ys)))
        )
    return Trajectory(points=smoothed, trajectory_id=trajectory.trajectory_id, _validated=True)


def direction_filter(trajectory: Trajectory, reversal_deg: float = 150.0) -> Trajectory:
    """Drop points that create a sharp out-and-back (ping-pong handoff).

    A point ``p_i`` is removed when the heading into it and the heading out
    of it differ by more than ``reversal_deg`` — i.e. the trajectory doubles
    back on itself at ``p_i``, the signature of oscillating between two
    towers rather than actual vehicle motion.
    """
    if len(trajectory) < 3:
        return trajectory
    points = trajectory.points
    kept = [points[0]]
    for i in range(1, len(points) - 1):
        incoming = bearing_deg(kept[-1].position, points[i].position)
        outgoing = bearing_deg(points[i].position, points[i + 1].position)
        if points[i].position.distance_to(kept[-1].position) == 0.0:
            kept.append(points[i])
            continue
        if heading_difference_deg(incoming, outgoing) <= reversal_deg:
            kept.append(points[i])
    kept.append(points[-1])
    return Trajectory(points=kept, trajectory_id=trajectory.trajectory_id, _validated=True)


def apply_standard_filters(trajectory: Trajectory) -> Trajectory:
    """Speed filter, then alpha-trimmed mean, then direction filter.

    This is the pre-processing pipeline the paper applies to every cellular
    trajectory before matching (§V-A1).  Smoothing runs on *positions*; the
    original tower ids survive, which the learned components rely on.
    """
    filtered = speed_filter(trajectory)
    filtered = alpha_trimmed_mean_filter(filtered)
    return direction_filter(filtered)
